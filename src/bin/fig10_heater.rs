//! Regenerates paper Figure 10: average and gradient temperature with and
//! without the MR heater (P_heater = 0.3 × P_VCSEL), swept over P_VCSEL.
//!
//! Run with `cargo run --release --bin fig10_heater` (full-die
//! `Fidelity::Fast` by default). `--fidelity paper` (or
//! `FIGURE_FIDELITY=paper`) reproduces the paper's 5 µm meshing; paper
//! runs checkpoint the completed figure under `reports/checkpoints/` so a
//! re-run after an interruption skips the solves (`--fresh` recomputes).

use vcsel_arch::{Fidelity, SccConfig};
use vcsel_core::experiments::{figure10, Figure10};
use vcsel_core::{fidelity_label, FigureCli, ThermalStudy};
use vcsel_thermal::Simulator;
use vcsel_units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Root span drops at the end of `run`, then the trace flushes
    // (`finish_global` is a no-op unless VCSEL_TRACE=full).
    let result = run();
    vcsel_telemetry::finish_global("fig10");
    result
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let _root = vcsel_telemetry::global().span("report", "fig10");
    let cli = FigureCli::parse(Fidelity::Fast)?;
    let store = cli.checkpoints("fig10");
    let config = SccConfig { fidelity: cli.fidelity, ..SccConfig::default() };

    let p_vcsel_mw = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let f: Figure10 = match store.as_ref().and_then(|s| s.load("figure10")) {
        Some(f) => {
            eprintln!("loaded figure from checkpoint (--fresh recomputes)");
            f
        }
        None => {
            eprintln!(
                "building thermal study at {} fidelity (FVM response basis) ...",
                fidelity_label(cli.fidelity)
            );
            let study = ThermalStudy::new(config, &Simulator::new())?;
            let f = figure10(&study, &p_vcsel_mw, 0.3, Watts::new(12.5))?;
            if let Some(s) = &store {
                s.store("figure10", &f)?;
            }
            f
        }
    };

    println!("=== Figure 10: w/ and w/o MR heater (P_heater = 0.3 x P_VCSEL) ===");
    println!(
        "{:>13} {:>12} {:>12} {:>13} {:>13}",
        "P_VCSEL (mW)", "avg w/o (°C)", "avg w/ (°C)", "grad w/o (°C)", "grad w/ (°C)"
    );
    for (i, &pv) in f.p_vcsel_mw.iter().enumerate() {
        println!(
            "{:>13.1} {:>12.2} {:>12.2} {:>13.3} {:>13.3}",
            pv,
            f.average_without_c[i],
            f.average_with_c[i],
            f.gradient_without_c[i],
            f.gradient_with_c[i]
        );
    }
    let last = f.p_vcsel_mw.len() - 1;
    println!();
    println!(
        "at P_VCSEL = {} mW: gradient {:.2} -> {:.2} °C (paper: 5.8 -> 1.3), \
         average +{:.2} °C (paper: +0.8)",
        f.p_vcsel_mw[last],
        f.gradient_without_c[last],
        f.gradient_with_c[last],
        f.average_with_c[last] - f.average_without_c[last]
    );

    let suffix = if cli.fidelity == Fidelity::Fast {
        String::new()
    } else {
        format!("_{}", fidelity_label(cli.fidelity))
    };
    std::fs::create_dir_all("reports")?;
    let path = format!("reports/figure10{suffix}.json");
    std::fs::write(&path, serde_json::to_string_pretty(&f)?)?;
    println!("wrote {path}");
    eprintln!("{}", vcsel_core::EngineCache::summary_line());
    Ok(())
}
