//! Regenerates paper Figure 8-b (VCSEL wall-plug efficiency vs modulation
//! current for 10…70 °C) and Figure 8-c (emitted optical power vs dissipated
//! power) from the VCSEL library model.
//!
//! Run with `cargo run --release --bin fig8_vcsel`.

use vcsel_core::experiments::figure8;
use vcsel_photonics::Vcsel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vcsel = Vcsel::paper_default();
    let fig = figure8(&vcsel)?;

    println!("=== Figure 8-b: wall-plug efficiency vs I_VCSEL ===");
    print!("{:>8}", "I (mA)");
    for t in &fig.temperatures_c {
        print!("{:>9}", format!("{t} °C"));
    }
    println!();
    for (i, &current) in fig.currents_ma.iter().enumerate() {
        if !((current * 4.0) as usize).is_multiple_of(8) {
            continue; // print every 2 mA
        }
        print!("{current:>8.1}");
        for row in &fig.efficiency {
            print!("{:>8.1}%", row[i] * 100.0);
        }
        println!();
    }

    println!();
    println!("=== Figure 8-c: OP_VCSEL vs P_VCSEL (dissipated) ===");
    print!("{:>14}", "P_VCSEL (mW)");
    for t in &fig.temperatures_c {
        print!("{:>9}", format!("{t} °C"));
    }
    println!();
    // Tabulate at common dissipated-power points via nearest sample.
    for target in [2.0, 5.0, 10.0, 15.0, 20.0] {
        print!("{target:>14.1}");
        for curve in &fig.output_vs_dissipated {
            let op = curve
                .iter()
                .min_by(|a, b| {
                    (a.0 - target).abs().partial_cmp(&(b.0 - target).abs()).expect("finite")
                })
                .map(|&(_, op)| op)
                .unwrap_or(0.0);
            print!("{op:>9.2}");
        }
        println!();
    }

    println!();
    println!(
        "paper anchors: peak efficiency ~15% at 40 °C, ~4% at 60 °C; \
         output saturates with dissipated power"
    );

    std::fs::create_dir_all("reports")?;
    std::fs::write("reports/figure8.json", serde_json::to_string_pretty(&fig)?)?;
    println!("wrote reports/figure8.json");
    Ok(())
}
