//! `onoc-dse` — run the thermal-aware design methodology from a JSON spec.
//!
//! ```text
//! Usage: onoc_dse [SPEC.json] [--json] [--out FILE]
//!
//!   SPEC.json   system specification (see specs/ for samples);
//!               omitted = the paper's Section V-C operating point
//!   --json      emit the report as JSON instead of markdown
//!   --out FILE  write the report to FILE instead of stdout
//! ```
//!
//! Exit code 0 when the run succeeds and all declared constraints pass,
//! 1 on constraint failure, 2 on usage/IO/analysis errors.

use std::fs;
use std::process::ExitCode;

use vcsel_core::spec::{run_spec, DseReport, SystemSpec};

struct Args {
    spec_path: Option<String>,
    json: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut spec_path = None;
    let mut json = false;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => {
                out = Some(it.next().ok_or("--out needs a file argument")?);
            }
            "--help" | "-h" => {
                return Err("usage: onoc_dse [SPEC.json] [--json] [--out FILE]".into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    return Err("at most one spec file".into());
                }
            }
        }
    }
    Ok(Args { spec_path, json, out })
}

fn load_spec(path: Option<&str>) -> Result<SystemSpec, String> {
    match path {
        None => Ok(SystemSpec::paper_operating_point()),
        Some(p) => {
            let text = fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {p}: {e}"))
        }
    }
}

fn render(report: &DseReport, json: bool) -> String {
    if json {
        serde_json::to_string_pretty(report).expect("report serializes")
    } else {
        report.to_markdown()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let spec = match load_spec(args.spec_path.as_deref()) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    eprintln!("running spec '{}' ...", spec.name);
    let report = match run_spec(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let text = render(&report, args.json);
    match &args.out {
        None => println!("{text}"),
        Some(path) => {
            if let Err(e) = fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("report written to {path}");
        }
    }
    let constraints_ok =
        report.meets_gradient_constraint && report.meets_snr_target.unwrap_or(true);
    if constraints_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("one or more declared constraints FAILED");
        ExitCode::from(1)
    }
}
