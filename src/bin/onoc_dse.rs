//! `onoc-dse` — run the thermal-aware design methodology from a JSON spec.
//!
//! ```text
//! Usage: onoc_dse [SPEC.json] [--json] [--out FILE]
//!        onoc_dse --sweep SWEEP.json [--json] [--out FILE]
//!
//!   SPEC.json     system specification (see specs/ for samples);
//!                 omitted = the paper's Section V-C operating point
//!   --sweep FILE  batched design-space sweep: FILE holds a SweepSpec
//!                 (base spec + per-point overrides); points sharing an
//!                 operator are solved through one shared engine and
//!                 each finished report is checkpointed under
//!                 reports/dse/<sweep-name>/ so a re-run resumes
//!   --json        emit the report as JSON instead of markdown
//!   --out FILE    write the report to FILE instead of stdout
//! ```
//!
//! Exit code 0 when the run succeeds and all declared constraints pass,
//! 1 on constraint failure (or, for sweeps, any failed point), 2 on
//! usage/IO/analysis errors.

use std::fs;
use std::process::ExitCode;

use vcsel_core::spec::{run_spec, DseReport, SystemSpec};
use vcsel_core::{BatchPlan, CheckpointStore, DesignFlow, FlowError, SweepSpec};

struct Args {
    spec_path: Option<String>,
    sweep_path: Option<String>,
    json: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut spec_path = None;
    let mut sweep_path = None;
    let mut json = false;
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => {
                out = Some(it.next().ok_or("--out needs a file argument")?);
            }
            "--sweep" => {
                let path = it.next().ok_or("--sweep needs a file argument")?;
                if sweep_path.replace(path).is_some() {
                    return Err("at most one --sweep file".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: onoc_dse [SPEC.json | --sweep SWEEP.json] [--json] [--out FILE]".into(),
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    return Err("at most one spec file".into());
                }
            }
        }
    }
    if sweep_path.is_some() && spec_path.is_some() {
        return Err("--sweep replaces the positional spec file; pass one or the other".into());
    }
    Ok(Args { spec_path, sweep_path, json, out })
}

fn load_spec(path: Option<&str>) -> Result<SystemSpec, String> {
    match path {
        None => Ok(SystemSpec::paper_operating_point()),
        Some(p) => {
            let text = fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {p}: {e}"))
        }
    }
}

fn render(report: &DseReport, json: bool) -> Result<String, String> {
    if json {
        serde_json::to_string_pretty(report).map_err(|e| format!("cannot serialize report: {e}"))
    } else {
        Ok(report.to_markdown())
    }
}

fn emit(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        None => {
            println!("{text}");
            Ok(())
        }
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report written to {path}");
            Ok(())
        }
    }
}

/// Renders the per-point sweep outcome as a markdown table (or, with
/// `--json`, an array mixing report objects and `{"error": ...}` slots).
fn render_sweep(
    names: &[String],
    results: &[Result<DseReport, FlowError>],
    json: bool,
) -> Result<String, String> {
    if json {
        // The vendored serde_json has no Value type, so the array is
        // assembled from per-slot serializations.
        let slots: Vec<String> = results
            .iter()
            .map(|r| match r {
                Ok(report) => serde_json::to_string_pretty(report)
                    .map_err(|e| format!("cannot serialize report: {e}")),
                Err(e) => {
                    let msg = serde_json::to_string(&e.to_string())
                        .map_err(|e| format!("cannot serialize error: {e}"))?;
                    Ok(format!("{{\"error\": {msg}}}"))
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(format!("[\n{}\n]", slots.join(",\n")))
    } else {
        use core::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "| point | P_vcsel mW | worst grad C | worst SNR dB | status |");
        let _ = writeln!(s, "|---|---|---|---|---|");
        for (name, r) in names.iter().zip(results) {
            match r {
                Ok(rep) => {
                    let ok = rep.meets_gradient_constraint && rep.meets_snr_target.unwrap_or(true);
                    let _ = writeln!(
                        s,
                        "| {name} | {:.2} | {:.3} | {:.2} | {} |",
                        rep.p_vcsel_mw,
                        rep.worst_gradient_c,
                        rep.worst_snr_db,
                        if ok { "ok" } else { "CONSTRAINT" },
                    );
                }
                Err(e) => {
                    let _ = writeln!(s, "| {name} | - | - | - | FAILED: {e} |");
                }
            }
        }
        Ok(s)
    }
}

fn run_sweep(path: &str, json: bool, out: Option<&str>) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let sweep: SweepSpec = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if sweep.points.is_empty() {
        eprintln!("sweep '{}' declares no points", sweep.name);
        return ExitCode::from(2);
    }
    let plan = BatchPlan::for_sweep(&sweep);
    let names: Vec<String> = plan.specs().iter().map(|s| s.name.clone()).collect();
    let store = CheckpointStore::new(format!("reports/dse/{}", sweep.name));
    eprintln!(
        "sweep '{}': {} points in {} operator group(s), checkpoints in reports/dse/{}/",
        sweep.name,
        plan.point_count(),
        plan.group_count(),
        sweep.name,
    );
    let flow = DesignFlow::paper();
    let results = plan.run(&flow, Some(&store));
    let rendered = match render_sweep(&names, &results, json) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Err(msg) = emit(&rendered, out) {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    let failed = results.iter().filter(|r| r.is_err()).count();
    let violated = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .filter(|rep| !(rep.meets_gradient_constraint && rep.meets_snr_target.unwrap_or(true)))
        .count();
    eprintln!("{}", vcsel_core::EngineCache::summary_line());
    if failed > 0 || violated > 0 {
        eprintln!("{failed} point(s) failed, {violated} violated declared constraints");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(sweep) = &args.sweep_path {
        return run_sweep(sweep, args.json, args.out.as_deref());
    }
    let spec = match load_spec(args.spec_path.as_deref()) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    eprintln!("running spec '{}' ...", spec.name);
    let report = match run_spec(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let text = match render(&report, args.json) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Err(msg) = emit(&text, args.out.as_deref()) {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    eprintln!("{}", vcsel_core::EngineCache::summary_line());
    let constraints_ok =
        report.meets_gradient_constraint && report.meets_snr_target.unwrap_or(true);
    if constraints_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("one or more declared constraints FAILED");
        ExitCode::from(1)
    }
}
