//! Regenerates the §III-A crossbar insertion-loss comparison (experiment
//! E9): ORNoC vs Matrix, λ-router and Snake at 4×4 (16-node) scale.
//!
//! Run with `cargo run --bin table_losses`.

use vcsel_core::experiments::baseline_comparison;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for nodes in [8, 16, 32, 64] {
        let b = baseline_comparison(nodes)?;
        println!("=== Crossbar insertion losses at {nodes} nodes ===");
        println!("{:>14} {:>16} {:>14}", "topology", "worst-case (dB)", "average (dB)");
        for (name, worst, avg) in &b.losses_db {
            println!("{name:>14} {worst:>16.2} {avg:>14.2}");
        }
        println!(
            "ORNoC reduction vs baseline mean: worst-case {:.1} %, average {:.1} %",
            b.worst_case_reduction * 100.0,
            b.average_reduction * 100.0
        );
        if nodes == 16 {
            println!("(paper quotes 42.5 % / 38 % at 4x4 scale)");
        }
        println!();
    }
    Ok(())
}
