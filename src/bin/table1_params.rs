//! Prints the paper's Table 1 (technological parameters) as consumed by
//! the toolchain.
//!
//! Run with `cargo run --bin table1_params`.

use vcsel_photonics::TechnologyParams;

fn main() {
    println!("=== Table 1: technological parameters ===");
    println!("{}", TechnologyParams::paper());
}
