//! Runs the fault-injection scenario catalogue: deterministic fault plans
//! (VCSEL death, heater failure, traffic storms, DVFS throttles, sensor
//! dropouts, solver faults) replayed against the 4-ONI transient plant
//! with the closed-loop responses (DVFS capping, channel remapping, the
//! solver ladder) engaged.
//!
//! ```text
//! cargo run --release --bin scenarios             # run all, write reports
//! cargo run --release --bin scenarios -- --list   # list the catalogue
//! cargo run --release --bin scenarios -- --scenario traffic-storm
//! cargo run --release --bin scenarios -- --check  # assert metric pins (CI)
//! ```
//!
//! The fault-plan seed defaults to the pinned seed and can be overridden
//! with `--seed N` or the `SCENARIO_SEED` environment variable; metric
//! pins are only asserted at the default seed (other seeds jitter fault
//! timing and are for robustness exploration). Reports land in
//! `reports/scenarios/<name>.json`.

use std::process::ExitCode;

use vcsel_core::scenarios::{catalogue, find_scenario, run_scenario, Scenario, DEFAULT_SEED};
use vcsel_core::{CheckpointStore, FlowError};

struct Cli {
    scenario: Option<String>,
    seed: u64,
    list: bool,
    check: bool,
}

fn parse_cli() -> Result<Cli, FlowError> {
    let mut cli = Cli { scenario: None, seed: DEFAULT_SEED, list: false, check: false };
    if let Ok(seed) = std::env::var("SCENARIO_SEED") {
        cli.seed = seed.parse().map_err(|_| FlowError::BadConfig {
            reason: format!("SCENARIO_SEED must be an unsigned integer, got '{seed}'"),
        })?;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => cli.list = true,
            "--check" => cli.check = true,
            "--scenario" => {
                let name = args.next().ok_or_else(|| FlowError::BadConfig {
                    reason: "--scenario needs a name (see --list)".into(),
                })?;
                cli.scenario = Some(name);
            }
            "--seed" => {
                let v = args.next().ok_or_else(|| FlowError::BadConfig {
                    reason: "--seed needs an unsigned integer".into(),
                })?;
                cli.seed = v.parse().map_err(|_| FlowError::BadConfig {
                    reason: format!("--seed must be an unsigned integer, got '{v}'"),
                })?;
            }
            other => {
                return Err(FlowError::BadConfig {
                    reason: format!(
                        "unknown argument '{other}' (expected --list, --check, --scenario NAME or --seed N)"
                    ),
                })
            }
        }
    }
    Ok(cli)
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let _root = vcsel_telemetry::global().span("report", "scenarios");
    let cli = parse_cli()?;
    let all = catalogue();

    if cli.list {
        println!("{:<28} {:>6} {:>8}  description", "scenario", "steps", "faults");
        for s in &all {
            println!("{:<28} {:>6} {:>8}  {}", s.name, s.steps, s.events.len(), s.description);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let selected: Vec<Scenario> = match &cli.scenario {
        Some(name) => vec![find_scenario(name)?],
        None => all,
    };
    let store = CheckpointStore::new("reports/scenarios");
    let pinned_seed = cli.seed == DEFAULT_SEED;
    if !pinned_seed {
        eprintln!("seed {} != pinned seed {DEFAULT_SEED}: metric pins are not asserted", cli.seed);
    }

    println!(
        "{:<28} {:>8} {:>8} {:>6} {:>7} {:>6} {:>6} {:>8} {:>8}",
        "scenario", "peak °C", "final °C", "over", "remap", "dvfs", "escal", "CG iter", "SNR dB"
    );
    let mut failures = 0usize;
    for scenario in &selected {
        let report = run_scenario(scenario, cli.seed)?;
        println!(
            "{:<28} {:>8.2} {:>8.2} {:>6} {:>7} {:>6.2} {:>6} {:>8} {:>8.2}",
            report.name,
            report.peak_c,
            report.final_peak_c,
            report.over_limit_steps,
            if report.remap_ran { format!("+{:.2}", report.remap_gain_db) } else { "-".into() },
            report.min_dvfs_scale,
            report.solver_escalations,
            report.cg_iterations,
            report.worst_snr_db,
        );
        store.store(&report.name, &report)?;
        if cli.check && pinned_seed {
            for violation in scenario.pins.check(&report) {
                eprintln!("PIN VIOLATION [{}]: {violation}", scenario.name);
                failures += 1;
            }
        }
    }
    println!("wrote {} report(s) under {}", selected.len(), store.dir().display());

    if failures > 0 {
        eprintln!("{failures} pin violation(s)");
        return Ok(ExitCode::FAILURE);
    }
    if cli.check && pinned_seed {
        println!("all metric pins hold at seed {}", cli.seed);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    // The root span drops inside `run`, so the flush below sees the full
    // timeline (`finish_global` is a no-op unless VCSEL_TRACE=full).
    let outcome = run();
    vcsel_telemetry::finish_global("scenarios");
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
