//! Validates a chrome-trace JSON file written by the telemetry subsystem
//! (`VCSEL_TRACE=full` + any report binary) — the CI gate that keeps the
//! trace output loadable by `chrome://tracing` / Perfetto.
//!
//! Checks, in order:
//!
//! 1. the file parses as JSON and has the Trace Event Format shape:
//!    a top-level object with a `"traceEvents"` array whose entries carry
//!    `name`/`cat`/`ph`/`ts` (and `dur` for `"ph": "X"` spans);
//! 2. every span named with `--expect-span` is present;
//! 3. the expected spans cover at least `--min-coverage` (default 0.95)
//!    of the trace's wall-clock extent — the "no untraced gaps" bar;
//! 4. with `--expect-samples`, at least one `solve_sample` instant with a
//!    non-empty `residuals` history is present.
//!
//! ```text
//! cargo run --release --bin trace_check -- reports/traces/fig9.trace.json \
//!     --expect-span fig9 --expect-samples
//! ```
//!
//! Exits non-zero with a one-line reason on the first failed check.

use std::process::ExitCode;

use serde::{Deserialize, Value};

/// Newtype so the dynamic JSON tree can ride through `serde_json::from_str`
/// (the offline shim's `Value` has no blanket `Deserialize` impl).
struct Json(Value);

impl Deserialize for Json {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(Json(value.clone()))
    }
}

struct Cli {
    path: String,
    expect_spans: Vec<String>,
    min_coverage: f64,
    expect_samples: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut path = None;
    let mut expect_spans = Vec::new();
    let mut min_coverage = 0.95;
    let mut expect_samples = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-span" => {
                expect_spans.push(args.next().ok_or("--expect-span needs a span name")?);
            }
            "--min-coverage" => {
                let v = args.next().ok_or("--min-coverage needs a fraction")?;
                min_coverage = v
                    .parse::<f64>()
                    .ok()
                    .filter(|c| (0.0..=1.0).contains(c))
                    .ok_or_else(|| format!("--min-coverage must be in [0, 1], got '{v}'"))?;
            }
            "--expect-samples" => expect_samples = true,
            other => {
                if path.is_none() && !other.starts_with('-') {
                    path = Some(other.to_string());
                } else {
                    return Err(format!("unknown argument '{other}'"));
                }
            }
        }
    }
    Ok(Cli {
        path: path.ok_or(
            "usage: trace_check <trace.json> [--expect-span NAME]... \
                          [--min-coverage F] [--expect-samples]",
        )?,
        expect_spans,
        min_coverage,
        expect_samples,
    })
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn check(cli: &Cli) -> Result<String, String> {
    let text =
        std::fs::read_to_string(&cli.path).map_err(|e| format!("cannot read {}: {e}", cli.path))?;
    let Json(root) = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;

    let events = root
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    if events.is_empty() {
        return Err("trace has no events".into());
    }

    // Per-event schema + extent accumulation (ts/dur are microseconds).
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut spans: Vec<(&str, f64, f64)> = Vec::new();
    let mut sampled_residuals = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        ev.get("cat")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing \"cat\""))?;
        let ph = ev
            .get("ph")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing \"ph\""))?;
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric \"ts\""))?;
        let end = match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("span {i} ({name}): missing numeric \"dur\""))?;
                spans.push((name, ts, ts + dur));
                ts + dur
            }
            "i" | "C" => ts,
            other => return Err(format!("event {i} ({name}): unknown ph \"{other}\"")),
        };
        lo = lo.min(ts);
        hi = hi.max(end);
        if name == "solve_sample" {
            let residuals = ev
                .get("args")
                .and_then(|a| a.get("residuals"))
                .and_then(Value::as_array)
                .ok_or_else(|| format!("event {i}: solve_sample without a residuals history"))?;
            sampled_residuals += usize::from(!residuals.is_empty());
        }
    }

    for expected in &cli.expect_spans {
        if !spans.iter().any(|(name, _, _)| name == expected) {
            return Err(format!("expected span \"{expected}\" not found"));
        }
    }

    // Coverage: union of the expected spans' intervals over the extent.
    // (With no --expect-span, all spans count.)
    let mut intervals: Vec<(f64, f64)> = spans
        .iter()
        .filter(|(name, _, _)| {
            cli.expect_spans.is_empty() || cli.expect_spans.iter().any(|e| e == name)
        })
        .map(|&(_, a, b)| (a, b))
        .collect();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut covered = 0.0;
    let mut cursor = f64::NEG_INFINITY;
    for (a, b) in intervals {
        let a = a.max(cursor);
        if b > a {
            covered += b - a;
            cursor = b;
        }
    }
    let extent = hi - lo;
    let coverage = if extent > 0.0 { covered / extent } else { 1.0 };
    if coverage < cli.min_coverage {
        return Err(format!(
            "span coverage {:.1}% of the {:.1} ms extent is below the {:.1}% bar",
            coverage * 100.0,
            extent / 1e3,
            cli.min_coverage * 100.0
        ));
    }

    if cli.expect_samples && sampled_residuals == 0 {
        return Err("no solve_sample with a non-empty residual history".into());
    }

    Ok(format!(
        "{}: {} event(s), {} span(s), {} solve sample(s) with residuals, \
         {:.1}% coverage of {:.1} ms",
        cli.path,
        events.len(),
        spans.len(),
        sampled_residuals,
        coverage * 100.0,
        extent / 1e3,
    ))
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("trace_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&cli) {
        Ok(report) => {
            println!("trace_check OK — {report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check FAILED [{}]: {e}", cli.path);
            ExitCode::FAILURE
        }
    }
}
