//! Regenerates paper Figures 11 & 12: worst-case SNR plus signal/crosstalk
//! power for the three ONI placements (18 / 32.4 / 46.8 mm rings) under
//! uniform, diagonal and random chip activities, at the paper's operating
//! point (P_VCSEL = 3.6 mW, P_heater = 1.08 mW).
//!
//! Run with `cargo run --release --bin fig12_snr` (full-die
//! `Fidelity::Fast` by default). `--fidelity paper` (or
//! `FIGURE_FIDELITY=paper`) reproduces the paper's 5 µm meshing — nine
//! paper-scale thermal studies, a multi-hour campaign. Paper runs
//! checkpoint every completed (activity, placement) row under
//! `reports/checkpoints/`, so an interrupted sweep resumes at the first
//! missing point instead of restarting (`--fresh` discards checkpoints).
//! Each placement builds one solve engine and re-targets it across the
//! three activity patterns (`ThermalStudy::reconfigured`), so assembly and
//! multigrid-hierarchy setup are paid three times, not nine.

use vcsel_arch::Fidelity;
use vcsel_core::experiments::figure12_resumable;
use vcsel_core::{fidelity_label, DesignFlow, FigureCli};
use vcsel_numerics::solver::SolveOptions;
use vcsel_thermal::Simulator;
use vcsel_units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Root span drops at the end of `run`, then the trace flushes
    // (`finish_global` is a no-op unless VCSEL_TRACE=full).
    let result = run();
    vcsel_telemetry::finish_global("fig12");
    result
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let _root = vcsel_telemetry::global().span("report", "fig12");
    let cli = FigureCli::parse(Fidelity::Fast)?;
    let store = cli.checkpoints("fig12");

    // 1e-6 relative residual = micro-kelvin error; saves ~25 % of the CG
    // iterations over this 45-solve campaign.
    let simulator = Simulator::new().with_options(SolveOptions {
        tolerance: 1e-6,
        max_iterations: 50_000,
        relaxation: 1.6,
    });
    let flow = DesignFlow::paper().with_simulator(simulator);
    eprintln!(
        "running 9 thermal studies (3 activities x 3 placements) at {} fidelity ...",
        fidelity_label(cli.fidelity)
    );
    if let Some(s) = &store {
        eprintln!("checkpointing per-point rows under {} ...", s.dir().display());
    }
    let rows = figure12_resumable(&flow, cli.fidelity, Watts::new(12.5), store.as_ref())?;

    println!("=== Figure 12: worst-case SNR under activities x placements ===");
    println!(
        "{:>9} {:>11} {:>10} {:>13} {:>15} {:>11} {:>9}",
        "activity",
        "ring (mm)",
        "SNR (dB)",
        "signal (mW)",
        "crosstalk (mW)",
        "ΔT ONI (°C)",
        "detected"
    );
    for r in &rows {
        println!(
            "{:>9} {:>11.1} {:>10.1} {:>13.4} {:>15.6} {:>11.2} {:>9}",
            r.activity,
            r.ring_length_mm,
            r.worst_snr_db,
            r.signal_mw,
            r.crosstalk_mw,
            r.oni_spread_c,
            r.all_detected
        );
    }
    println!();
    println!(
        "paper shape: SNR falls with ring length; uniform > random > diagonal \
         (paper values: uniform 38/25/13 dB, diagonal 19/13/10 dB, random 20/17/12 dB)"
    );

    let suffix = if cli.fidelity == Fidelity::Fast {
        String::new()
    } else {
        format!("_{}", fidelity_label(cli.fidelity))
    };
    std::fs::create_dir_all("reports")?;
    let path = format!("reports/figure12{suffix}.json");
    std::fs::write(&path, serde_json::to_string_pretty(&rows)?)?;
    println!("wrote {path}");
    eprintln!("{}", vcsel_core::EngineCache::summary_line());
    Ok(())
}
