//! Regenerates paper Figure 9-a (ONI average temperature vs P_VCSEL for
//! four chip powers) and Figure 9-b (intra-ONI gradient vs P_heater for
//! four P_VCSEL values) on the SCC case study.
//!
//! Run with `cargo run --release --bin fig9_temperature`.

use vcsel_arch::SccConfig;
use vcsel_core::experiments::{figure9a, figure9b};
use vcsel_core::ThermalStudy;
use vcsel_thermal::Simulator;
use vcsel_units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("building thermal study (FVM response basis) ...");
    let simulator = Simulator::new();
    let study = ThermalStudy::new(SccConfig::default(), &simulator)?;

    // --- Figure 9-a -----------------------------------------------------
    let p_vcsel_mw = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let p_chip_w = [12.5, 18.75, 25.0, 31.25];
    let a = figure9a(&study, &p_vcsel_mw, &p_chip_w)?;

    println!("=== Figure 9-a: ONI average temperature (°C) vs P_VCSEL ===");
    print!("{:>14}", "P_VCSEL (mW)");
    for chip in &p_chip_w {
        print!("{:>12}", format!("{chip} W"));
    }
    println!();
    for (i, &pv) in p_vcsel_mw.iter().enumerate() {
        print!("{pv:>14.1}");
        for row in &a.average_c {
            print!("{:>12.2}", row[i]);
        }
        println!();
    }
    println!(
        "slopes: {:.2} °C/W of chip power (paper ~0.53), {:.2} °C/mW of P_VCSEL (paper ~1.8)",
        a.chip_power_slope(),
        a.vcsel_power_slope()
    );

    // --- Figure 9-b -----------------------------------------------------
    let pv_family = [1.0, 2.0, 4.0, 6.0];
    let ph_axis = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0];
    let b = figure9b(&study, &pv_family, &ph_axis, Watts::new(12.5))?;

    println!();
    println!("=== Figure 9-b: intra-ONI gradient (°C) vs P_heater ===");
    print!("{:>15}", "P_heater (mW)");
    for pv in &pv_family {
        print!("{:>14}", format!("Pv={pv} mW"));
    }
    println!();
    for (j, &ph) in ph_axis.iter().enumerate() {
        print!("{ph:>15.2}");
        for row in &b.gradient_c {
            print!("{:>14.3}", row[j]);
        }
        println!();
    }
    print!("optimal P_heater/P_VCSEL ratio: ");
    for r in &b.optimal_ratio {
        print!("{r:.2}  ");
    }
    println!("(paper: ~0.3)");

    std::fs::create_dir_all("reports")?;
    std::fs::write("reports/figure9a.json", serde_json::to_string_pretty(&a)?)?;
    std::fs::write("reports/figure9b.json", serde_json::to_string_pretty(&b)?)?;
    println!("wrote reports/figure9a.json, reports/figure9b.json");
    Ok(())
}
