//! Regenerates paper Figure 9-a (ONI average temperature vs P_VCSEL for
//! four chip powers) and Figure 9-b (intra-ONI gradient vs P_heater for
//! four P_VCSEL values) on the SCC case study.
//!
//! Run with `cargo run --release --bin fig9_temperature` (full-die
//! `Fidelity::Fast` by default). `--fidelity paper` (or
//! `FIGURE_FIDELITY=paper`) reproduces the paper's 5 µm meshing
//! (~2.6 M unknowns, minutes of multigrid solves); paper runs checkpoint
//! each completed figure under `reports/checkpoints/` so an interrupted
//! run resumes instead of re-solving (`--fresh` discards checkpoints).

use vcsel_arch::{Fidelity, SccConfig};
use vcsel_core::experiments::{figure9a, figure9b, Figure9a, Figure9b};
use vcsel_core::{fidelity_label, FigureCli, ThermalStudy};
use vcsel_thermal::Simulator;
use vcsel_units::Watts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The root span must drop before the trace is flushed, hence the
    // inner function; `finish_global` is a no-op unless VCSEL_TRACE=full.
    let result = run();
    vcsel_telemetry::finish_global("fig9");
    result
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let _root = vcsel_telemetry::global().span("report", "fig9");
    let cli = FigureCli::parse(Fidelity::Fast)?;
    let store = cli.checkpoints("fig9");
    let config = SccConfig { fidelity: cli.fidelity, ..SccConfig::default() };

    let p_vcsel_mw = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let p_chip_w = [12.5, 18.75, 25.0, 31.25];
    let pv_family = [1.0, 2.0, 4.0, 6.0];
    let ph_axis = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0];

    let cached_a: Option<Figure9a> = store.as_ref().and_then(|s| s.load("figure9a"));
    let cached_b: Option<Figure9b> = store.as_ref().and_then(|s| s.load("figure9b"));
    let (a, b) = match (cached_a, cached_b) {
        (Some(a), Some(b)) => {
            eprintln!("loaded both figures from checkpoints (--fresh recomputes)");
            (a, b)
        }
        (cached_a, cached_b) => {
            // One engine serves both figures: the response basis is solved
            // once and every sweep point is vector arithmetic.
            eprintln!(
                "building thermal study at {} fidelity (FVM response basis) ...",
                fidelity_label(cli.fidelity)
            );
            let study = ThermalStudy::new(config, &Simulator::new())?;
            let a = match cached_a {
                Some(a) => a,
                None => {
                    let a = figure9a(&study, &p_vcsel_mw, &p_chip_w)?;
                    if let Some(s) = &store {
                        s.store("figure9a", &a)?;
                    }
                    a
                }
            };
            let b = match cached_b {
                Some(b) => b,
                None => {
                    let b = figure9b(&study, &pv_family, &ph_axis, Watts::new(12.5))?;
                    if let Some(s) = &store {
                        s.store("figure9b", &b)?;
                    }
                    b
                }
            };
            (a, b)
        }
    };

    // --- Figure 9-a -----------------------------------------------------
    println!("=== Figure 9-a: ONI average temperature (°C) vs P_VCSEL ===");
    print!("{:>14}", "P_VCSEL (mW)");
    for chip in &a.p_chip_w {
        print!("{:>12}", format!("{chip} W"));
    }
    println!();
    for (i, &pv) in a.p_vcsel_mw.iter().enumerate() {
        print!("{pv:>14.1}");
        for row in &a.average_c {
            print!("{:>12.2}", row[i]);
        }
        println!();
    }
    println!(
        "slopes: {:.2} °C/W of chip power (paper ~0.53), {:.2} °C/mW of P_VCSEL (paper ~1.8)",
        a.chip_power_slope()?,
        a.vcsel_power_slope()?
    );

    // --- Figure 9-b -----------------------------------------------------
    println!();
    println!("=== Figure 9-b: intra-ONI gradient (°C) vs P_heater ===");
    print!("{:>15}", "P_heater (mW)");
    for pv in &b.p_vcsel_mw {
        print!("{:>14}", format!("Pv={pv} mW"));
    }
    println!();
    for (j, &ph) in b.p_heater_mw.iter().enumerate() {
        print!("{ph:>15.2}");
        for row in &b.gradient_c {
            print!("{:>14.3}", row[j]);
        }
        println!();
    }
    print!("optimal P_heater/P_VCSEL ratio: ");
    for r in &b.optimal_ratio {
        print!("{r:.2}  ");
    }
    println!("(paper: ~0.3)");

    let suffix = if cli.fidelity == Fidelity::Fast {
        String::new()
    } else {
        format!("_{}", fidelity_label(cli.fidelity))
    };
    std::fs::create_dir_all("reports")?;
    let path_a = format!("reports/figure9a{suffix}.json");
    let path_b = format!("reports/figure9b{suffix}.json");
    std::fs::write(&path_a, serde_json::to_string_pretty(&a)?)?;
    std::fs::write(&path_b, serde_json::to_string_pretty(&b)?)?;
    println!("wrote {path_a}, {path_b}");
    eprintln!("{}", vcsel_core::EngineCache::summary_line());
    Ok(())
}
