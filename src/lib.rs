//! # vcsel-onoc
//!
//! A from-scratch Rust reproduction of *"Thermal Aware Design Method for
//! VCSEL-based On-Chip Optical Interconnect"* (Li et al., DATE 2015):
//! a 3D finite-volume thermal simulator, CMOS-compatible VCSEL / microring
//! device models, the ORNoC ring interconnect with its worst-case SNR
//! analysis, the Intel-SCC case-study architecture, and the thermal-aware
//! design methodology tying them together.
//!
//! This crate is a facade: it re-exports the member crates under stable
//! module names. See the README for the architecture overview and the
//! `examples/` directory for runnable entry points.
//!
//! ```no_run
//! use vcsel_onoc::prelude::*;
//!
//! let flow = DesignFlow::paper();
//! let study = ThermalStudy::new(SccConfig::default(), flow.simulator())?;
//! let outcome = study.evaluate(
//!     Watts::from_milliwatts(3.6),
//!     Watts::from_milliwatts(1.08),
//!     Watts::new(25.0),
//! )?;
//! println!("worst gradient: {}", outcome.worst_gradient());
//! # Ok::<(), vcsel_onoc::core::FlowError>(())
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

/// Physical-quantity newtypes.
pub use vcsel_units as units;

/// Sparse linear algebra, solvers, interpolation, optimization.
pub use vcsel_numerics as numerics;

/// The finite-volume thermal simulator (IcTherm-equivalent).
pub use vcsel_thermal as thermal;

/// VCSEL / microring / photodetector / waveguide device models.
pub use vcsel_photonics as photonics;

/// ORNoC topology, wavelength assignment, SNR analysis, baselines.
pub use vcsel_network as network;

/// SCC case-study architecture, package stack, activities.
pub use vcsel_arch as arch;

/// The thermal-aware design methodology (the paper's contribution).
pub use vcsel_core as core;

/// Run-time thermal management: feedback calibration \[12\], channel
/// remapping \[15\], DVFS/migration \[16\], job allocation \[14\].
pub use vcsel_control as control;

/// The most common imports, bundled.
pub mod prelude {
    pub use vcsel_arch::{Activity, Fidelity, OniLayout, PlacementCase, SccConfig, SccSystem};
    pub use vcsel_control::{CalibrationLoop, InfluenceModel, LumpedPlant, ThermalPlant};
    pub use vcsel_core::{DesignFlow, HeaterExploration, SnrSummary, ThermalOutcome, ThermalStudy};
    pub use vcsel_network::{RingTopology, SnrAnalyzer, WavelengthGrid};
    pub use vcsel_photonics::{
        BerModel, LinkReliability, MicroringResonator, Photodetector, TechnologyParams, Vcsel,
    };
    pub use vcsel_thermal::{
        Block, Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, Simulator,
        ThermalMap,
    };
    pub use vcsel_units::{
        Amperes, Celsius, Dbm, Decibels, Meters, Nanometers, TemperatureDelta, Watts,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Vcsel::paper_default();
        let _ = TechnologyParams::paper();
        let _ = Watts::from_milliwatts(3.6);
        let _ = SccConfig::default();
    }
}
