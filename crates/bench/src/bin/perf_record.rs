//! Records the solve-engine benchmarks in reduced form and emits
//! `BENCH_solvers.json` — the machine-readable bench trajectory the
//! ROADMAP's "as fast as the hardware allows" north star is tracked
//! against.
//!
//! Three workloads on the SCC case-study system:
//!
//! 1. **Tiny steady solves** — one cold and one warm solve per
//!    preconditioner (Jacobi / IC(0) / SSOR / multigrid) on the
//!    tiny-fidelity mesh, recording setup and solve wall time plus CG
//!    iterations.
//! 2. **Fast steady solves** — the full-die `Fidelity::Fast` system
//!    (~400 k unknowns), IC(0) vs the smoothed-aggregation multigrid
//!    hierarchy. This is the acceptance workload for the multigrid
//!    subsystem: its cold-solve iteration count must be at most **half**
//!    of IC(0)'s. Control with `PERF_RECORD_FAST=all|mg|off` (CI's smoke
//!    job runs `mg` to exercise hierarchy construction on every push).
//! 3. **V-cycle threading A/B** — on the fast-fidelity operator, one
//!    multigrid V-cycle with `parallel_sweeps` off (serial smoothers and
//!    transfers) vs on (banded block-SSOR + threaded SpMV), recording the
//!    wall-clock per cycle and the speedup. On machines with at least two
//!    hardware threads the parallel cycle must be ≥ 1.3× faster.
//! 4. **Triangular-solve threading A/B** — on the same fast-fidelity
//!    operator, one IC(0) application (both triangular solves) with
//!    `parallel_apply` off (exact serial sweeps) vs on (level-scheduled
//!    wavefront execution), recording ms/apply, the level-schedule shape
//!    (level count, mean/max level width) and the speedup. With at least
//!    two hardware threads the level-scheduled apply must be ≥ 1.3×
//!    faster — this is the inner loop of the transient workload below.
//! 5. **200-step transient** — the paper's runtime-management shape — run
//!    on the seed-era path (cold-start Jacobi-CG every step) and twice on
//!    the engine path (IC(0) factored once + warm starts): once with the
//!    serial triangular solves and once with the level-scheduled parallel
//!    apply, recording steps/second and the wall-clock speedups.
//! 6. **Engine-cache cold/warm** — on the same fast-fidelity system, one
//!    cold engine construction through the persistent cache (fresh build
//!    plus artifact store under `reports/cache/`) and one warm
//!    construction (artifact restore with zero factorizations), recording
//!    both setup times and the restore speedup. The warm probe must hit,
//!    and with at least two hardware threads the restore must be ≥ 2×
//!    faster than the fresh build.
//! 7. **Batched DSE sweep** — a 100-point power sweep on the tiny system
//!    evaluated two ways: the sequential path (one warm-started
//!    `solve_scaled` per point) vs the batched path (a
//!    `ResponseBasis::build_on_batched` block solve, then one `compose`
//!    per point). Records both wall clocks and the throughput ratio; on
//!    machines with at least two hardware threads the batched path must
//!    be ≥ 3× faster. `PERF_RECORD_DSE=smoke` shrinks the sweep to 20
//!    points for CI.
//!
//! Every threaded section stamps the worker count it ran with (`threads`,
//! respecting the `VCSEL_THREADS` override); on a single-core machine the
//! wall-clock speedup bars are skipped with an explicit note, so a 1-core
//! record can never read as a threading regression.
//!
//! Setting `PERF_RECORD_PAPER=1` additionally runs one full-die
//! `Fidelity::Paper` steady solve (~2.6 M unknowns) through the multigrid
//! engine — the workload that is intractable with one-level
//! preconditioners — and records it in the output, together with the
//! memory story of the shared-operator engine (the fine operator's size,
//! a pointer-identity check that the hierarchy aliases (rather than
//! clones) it, the process peak RSS) and the paper-scale engine-artifact
//! restore time (the factored hierarchy deserialized with zero
//! factorizations).
//!
//! Usage: `cargo run --release -p vcsel_bench --bin perf_record [out.json]`
//! (default output `BENCH_solvers.json` in the working directory). The
//! default sections run in minutes; CI shrinks the transient via
//! `PERF_RECORD_STEPS`. With `VCSEL_TRACE=full` the run also writes a
//! chrome-trace JSON under `reports/traces/perf_record.trace.json` whose
//! top-level spans mirror the record's `phases` array.

use std::sync::Arc;
use std::time::Instant;

use vcsel_arch::{Fidelity, SccConfig, SccSystem};
use vcsel_core::{CacheMode, CacheStore, EngineCache};
use vcsel_numerics::{
    hardware_threads, CsrMatrix, CycleKind, IncompleteCholesky, MgWorkspace, MultigridHierarchy,
    Preconditioner,
};
use vcsel_thermal::{
    Design, EngineBlueprint, MeshSpec, MultigridConfig, PreconditionerKind, ResponseBasis,
    SolveContext, TransientStepper,
};
use vcsel_units::{Celsius, Watts};

const TRANSIENT_DT_S: f64 = 1e-2;
const STEADY_REPS: usize = 5;
const TRISOLVE_REPS: usize = 10;

/// Transient step count: 200 by default (the acceptance workload); CI's
/// smoke job shrinks it via `PERF_RECORD_STEPS` to stay within its budget.
fn transient_steps() -> usize {
    std::env::var("PERF_RECORD_STEPS").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

/// Fast-fidelity section selector: `all` (default), `mg`, or `off`.
fn fast_mode() -> String {
    std::env::var("PERF_RECORD_FAST").unwrap_or_else(|_| "all".to_string())
}

fn paper_enabled() -> bool {
    matches!(std::env::var("PERF_RECORD_PAPER").as_deref(), Ok("1") | Ok("true"))
}

/// DSE sweep size: 100 by default; `PERF_RECORD_DSE=smoke` is CI's
/// 20-point budget, any integer picks an explicit size.
fn dse_points() -> usize {
    match std::env::var("PERF_RECORD_DSE").as_deref() {
        Ok("smoke") => 20,
        Ok(v) => v.parse().unwrap_or(100),
        Err(_) => 100,
    }
}

struct DseBatchRecord {
    points: usize,
    unknowns: usize,
    threads: usize,
    sequential_s: f64,
    batched_s: f64,
    throughput_ratio: f64,
}

struct SteadyRecord {
    name: &'static str,
    setup_ms: f64,
    cold_ms: f64,
    cold_iterations: usize,
    warm_ms: f64,
    warm_iterations: usize,
}

struct TransientRecord {
    label: &'static str,
    wall_s: f64,
    steps_per_s: f64,
    total_iterations: usize,
    final_hottest_c: f64,
}

struct TrisolveRecord {
    unknowns: usize,
    /// Worker count of the level-scheduled candidate (1 when the machine
    /// or the size gate keeps it serial).
    threads: usize,
    levels: usize,
    mean_level_rows: f64,
    max_level_rows: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

struct EngineCacheRecord {
    unknowns: usize,
    threads: usize,
    /// Fresh-path engine setup (assembly + factorization + artifact
    /// store), the cost a cache hit erases.
    cold_setup_ms: f64,
    /// Warm-path engine setup (artifact load + revalidating restore, zero
    /// factorizations).
    warm_setup_ms: f64,
    restore_speedup: f64,
    warm_hit: bool,
}

struct PaperRecord {
    unknowns: usize,
    setup_s: f64,
    solve_s: f64,
    iterations: usize,
    hottest_c: f64,
    /// Wall time to restore the factored paper-scale engine from its
    /// artifact (zero factorizations).
    restore_s: f64,
    /// One copy of the fine conduction operator, in MB — the allocation
    /// the engine and the multigrid hierarchy now *share* (pre-sharing,
    /// it was held three times: context, fine level, SSOR smoother).
    fine_operator_mb: f64,
    /// Process peak RSS (VmHWM) after the solve, when the OS exposes it.
    peak_rss_mb: Option<f64>,
}

struct VcycleRecord {
    unknowns: usize,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

/// Peak resident set size of this process in MB (Linux `/proc` only).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Times one multigrid V-cycle on the assembled operator with the serial
/// and the threaded sweep configuration (same hierarchy parameters
/// otherwise, both sharing the same operator allocation).
fn vcycle_section(op: &Arc<CsrMatrix>) -> VcycleRecord {
    let n = op.rows();
    let b = vec![1.0; n];
    let mut times = [0.0f64; 2];
    for (slot, parallel_sweeps) in [(0, false), (1, true)] {
        let config = MultigridConfig { parallel_sweeps, ..Default::default() };
        let mut h =
            MultigridHierarchy::build_shared(Arc::clone(op), &config).expect("hierarchy builds");
        let mut ws = MgWorkspace::for_hierarchy(&h);
        let mut x = vec![0.0; n];
        h.cycle(CycleKind::V, &b, &mut x, &mut ws); // warm-up (page in buffers)
        let (best, _) = time_best(5, || h.cycle(CycleKind::V, &b, &mut x, &mut ws));
        times[slot] = best * 1e3;
    }
    let record = VcycleRecord {
        unknowns: n,
        threads: hardware_threads(),
        serial_ms: times[0],
        parallel_ms: times[1],
        speedup: times[0] / times[1],
    };
    println!(
        "[vcycle/fast] {} unknowns, {} threads: serial {:.1} ms, parallel {:.1} ms ({:.2}x)",
        record.unknowns, record.threads, record.serial_ms, record.parallel_ms, record.speedup
    );
    record
}

/// Times one IC(0) application (forward + backward triangular solve) on
/// the assembled operator with the exact serial sweeps vs the
/// level-scheduled wavefront execution — the inner loop of the transient
/// workload, two of these per CG iteration.
fn trisolve_section(op: &Arc<CsrMatrix>) -> TrisolveRecord {
    let n = op.rows();
    let r: Vec<f64> = (0..n).map(|i| 1.5 + (i as f64 * 0.37).sin()).collect();
    let mut z = vec![0.0; n];

    let mut serial = IncompleteCholesky::new(op).expect("IC(0) factors").with_parallel_apply(false);
    serial.apply(&r, &mut z); // warm-up (page in the factor)
    let (serial_s, _) = time_best(TRISOLVE_REPS, || serial.apply(&r, &mut z));

    let mut scheduled = IncompleteCholesky::new(op).expect("IC(0) factors");
    let threads = scheduled.apply_threads();
    scheduled.apply(&r, &mut z);
    let (parallel_s, _) = time_best(TRISOLVE_REPS, || scheduled.apply(&r, &mut z));

    let stats = scheduled.level_stats();
    let record = TrisolveRecord {
        unknowns: n,
        threads,
        levels: stats.levels,
        mean_level_rows: stats.mean_level_rows,
        max_level_rows: stats.max_level_rows,
        serial_ms: serial_s * 1e3,
        parallel_ms: parallel_s * 1e3,
        speedup: serial_s / parallel_s,
    };
    println!(
        "[trisolve/fast] {} unknowns, {} threads, {} levels (mean {:.0} / max {} rows): \
         serial {:.2} ms, level-scheduled {:.2} ms ({:.2}x)",
        record.unknowns,
        record.threads,
        record.levels,
        record.mean_level_rows,
        record.max_level_rows,
        record.serial_ms,
        record.parallel_ms,
        record.speedup
    );
    record
}

/// Cold-then-warm engine construction through the real persistent cache
/// (`reports/cache/`): the cold probe builds fresh and stores the
/// artifact, the warm probe must restore it with zero factorizations.
/// The key's entry is removed first so the cold timing is honest even
/// when a previous run left the cache populated.
fn engine_cache_section(
    config: &SccConfig,
    system: &SccSystem,
    spec: &MeshSpec,
) -> EngineCacheRecord {
    let blueprint = EngineBlueprint::new(system.design(), spec).expect("fast blueprint meshes");
    let cache = EngineCache::new(
        CacheMode::ReadWrite,
        CacheStore::new(vcsel_core::cache::DEFAULT_CACHE_DIR),
    );
    let key = EngineCache::key(config, blueprint.content_hash());
    let _ = std::fs::remove_file(cache.store().path(&key));

    let cold_t = Instant::now();
    let (cold_ctx, cold_outcome) = cache.obtain(config, &blueprint).expect("cold engine builds");
    let cold_setup_ms = cold_t.elapsed().as_secs_f64() * 1e3;
    assert!(!cold_outcome.is_hit(), "cold probe hit a key that was just removed");
    let unknowns = cold_ctx.unknowns();
    drop(cold_ctx);

    let warm_t = Instant::now();
    let (warm_ctx, warm_outcome) = cache.obtain(config, &blueprint).expect("warm engine obtains");
    let warm_setup_ms = warm_t.elapsed().as_secs_f64() * 1e3;
    drop(warm_ctx);

    let record = EngineCacheRecord {
        unknowns,
        threads: hardware_threads(),
        cold_setup_ms,
        warm_setup_ms,
        restore_speedup: cold_setup_ms / warm_setup_ms,
        warm_hit: warm_outcome.is_hit(),
    };
    println!(
        "[engine_cache/fast] {} unknowns: cold build {:.0} ms, warm restore {:.0} ms \
         ({:.1}x, hit: {})",
        record.unknowns,
        record.cold_setup_ms,
        record.warm_setup_ms,
        record.restore_speedup,
        record.warm_hit
    );
    record
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one rep"))
}

/// Runs the cold/warm steady workload for each preconditioner on one
/// system; returns the unknown count and the per-preconditioner records.
fn steady_section(
    label: &str,
    design: &Design,
    spec: &MeshSpec,
    kinds: &[(&'static str, PreconditionerKind)],
    reps: usize,
) -> (usize, Vec<SteadyRecord>) {
    let mut unknowns = 0;
    let mut records = Vec::new();
    for &(name, kind) in kinds {
        let setup = Instant::now();
        let mut ctx = SolveContext::new_preconditioned(design, spec, kind).expect("context builds");
        let setup_ms = setup.elapsed().as_secs_f64() * 1e3;
        unknowns = ctx.unknowns();
        let (cold_ms, _) = time_best(reps, || {
            ctx.reset_guess();
            ctx.solve().expect("steady solve")
        });
        let cold_iterations = ctx.last_iterations();
        // Warm variant: hop between two nearby VCSEL operating points from
        // an already-converged field — the design-sweep / calibration
        // access pattern. Alternating keeps every rep doing real work
        // instead of re-solving an identical RHS for free.
        let mut flip = false;
        let (warm_ms, _) = time_best(reps, || {
            flip = !flip;
            let s = if flip { 1.02 } else { 1.01 };
            ctx.solve_scaled(&[("chip", 1.0), ("vcsel", s), ("driver", 1.0)]).expect("warm solve")
        });
        let warm_iterations = ctx.last_iterations();
        println!(
            "[steady/{label}] {name:>9}: setup {setup_ms:>8.1} ms, \
             cold {:>8.1} ms / {cold_iterations:>4} iters, \
             warm {:>8.1} ms / {warm_iterations:>4} iters",
            cold_ms * 1e3,
            warm_ms * 1e3,
        );
        records.push(SteadyRecord {
            name,
            setup_ms,
            cold_ms: cold_ms * 1e3,
            cold_iterations,
            warm_ms: warm_ms * 1e3,
            warm_iterations,
        });
    }
    (unknowns, records)
}

fn run_transient(
    stepper: &mut TransientStepper,
    scales: &[(&str, f64)],
    steps: usize,
) -> (f64, usize, f64) {
    let t = Instant::now();
    for _ in 0..steps {
        stepper.step(scales).expect("step solves");
    }
    let wall = t.elapsed().as_secs_f64();
    let hottest = stepper.snapshot().hottest().1.value();
    (wall, stepper.total_iterations(), hottest)
}

fn steady_json(records: &[SteadyRecord], indent: &str) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|s| {
            format!(
                "{indent}{{ \"preconditioner\": \"{}\", \"setup_ms\": {:.3}, \"cold_ms\": {:.3}, \
                 \"cold_iterations\": {}, \"warm_ms\": {:.3}, \"warm_iterations\": {} }}",
                s.name, s.setup_ms, s.cold_ms, s.cold_iterations, s.warm_ms, s.warm_iterations
            )
        })
        .collect();
    rows.join(",\n")
}

fn main() {
    // The root span must drop before the trace flushes, hence the inner
    // function; `finish_global` is a no-op unless VCSEL_TRACE=full.
    run();
    vcsel_telemetry::finish_global("perf_record");
}

fn run() {
    let sink = vcsel_telemetry::global();
    let _root = sink.span("report", "perf_record");
    // Per-phase wall clock for the JSON record — coarser than the trace
    // spans but present even when tracing is off.
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_solvers.json".to_string());
    let multigrid = PreconditionerKind::Multigrid { config: MultigridConfig::default() };

    // ---- Tiny steady solves per preconditioner -------------------------
    let phase_t = Instant::now();
    let phase_span = sink.span("perf", "steady_tiny");
    let config = SccConfig { p_vcsel: Watts::from_milliwatts(4.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("tiny SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    let design = system.design();
    let kinds = [
        ("jacobi", PreconditionerKind::Jacobi),
        ("ic0", PreconditionerKind::IncompleteCholesky),
        ("ssor", PreconditionerKind::Ssor { omega: 1.2 }),
        ("multigrid", multigrid),
    ];
    let (unknowns, steady) = steady_section("tiny", design, &spec, &kinds, STEADY_REPS);
    drop(phase_span);
    phases.push(("steady_tiny", phase_t.elapsed().as_secs_f64() * 1e3));

    // ---- Fast steady solves: IC(0) vs multigrid at full-die scale ------
    let fast = fast_mode();
    let fast_kinds: &[(&'static str, PreconditionerKind)] = match fast.as_str() {
        "off" => &[],
        "mg" => &[("multigrid", multigrid)],
        "all" => &[("ic0", PreconditionerKind::IncompleteCholesky), ("multigrid", multigrid)],
        other => panic!("PERF_RECORD_FAST must be all|mg|off, got '{other}'"),
    };
    let (fast_unknowns, fast_steady, vcycle, trisolve, engine_cache) = if fast_kinds.is_empty() {
        (0, Vec::new(), None, None, None)
    } else {
        let phase_t = Instant::now();
        let phase_span = sink.span("perf", "steady_fast");
        let config = SccConfig {
            p_vcsel: Watts::from_milliwatts(4.0),
            fidelity: Fidelity::Fast,
            ..SccConfig::default()
        };
        let system = SccSystem::build(&config).expect("fast SCC builds");
        let spec = system.mesh_spec().expect("mesh spec");
        let (unknowns, records) = steady_section("fast", system.design(), &spec, fast_kinds, 1);
        // ---- Threading A/Bs on the same operator -----------------------
        // A throwaway Jacobi engine is the cheapest way to assemble once
        // and share the operator with both hierarchies and both factors.
        let ctx =
            SolveContext::new_preconditioned(system.design(), &spec, PreconditionerKind::Jacobi)
                .expect("fast context assembles");
        let op = Arc::clone(ctx.shared_operator());
        drop(ctx);
        drop(phase_span);
        phases.push(("steady_fast", phase_t.elapsed().as_secs_f64() * 1e3));

        let phase_t = Instant::now();
        let phase_span = sink.span("perf", "vcycle_ab");
        let vcycle = vcycle_section(&op);
        drop(phase_span);
        phases.push(("vcycle_ab", phase_t.elapsed().as_secs_f64() * 1e3));

        let phase_t = Instant::now();
        let phase_span = sink.span("perf", "trisolve_ab");
        let trisolve = trisolve_section(&op);
        drop(phase_span);
        phases.push(("trisolve_ab", phase_t.elapsed().as_secs_f64() * 1e3));

        let phase_t = Instant::now();
        let phase_span = sink.span("perf", "engine_cache");
        let engine_cache = engine_cache_section(&config, &system, &spec);
        drop(phase_span);
        phases.push(("engine_cache", phase_t.elapsed().as_secs_f64() * 1e3));
        (unknowns, records, Some(vcycle), Some(trisolve), Some(engine_cache))
    };

    // ---- Optional full-paper-fidelity multigrid solve ------------------
    let paper = if paper_enabled() {
        let phase_t = Instant::now();
        let phase_span = sink.span("perf", "paper");
        let config = SccConfig {
            p_vcsel: Watts::from_milliwatts(4.0),
            fidelity: Fidelity::Paper,
            ..SccConfig::default()
        };
        let system = SccSystem::build(&config).expect("paper SCC builds");
        let spec = system.mesh_spec().expect("mesh spec");
        let setup = Instant::now();
        let mut ctx =
            SolveContext::new(system.design(), &spec).expect("paper-scale context builds");
        let setup_s = setup.elapsed().as_secs_f64();
        assert_eq!(ctx.preconditioner_name(), "multigrid", "paper scale must default to multigrid");
        // The shared-operator contract at the scale where it matters: the
        // hierarchy's finest level must alias the engine's ~215 MB
        // operator, not hold a second copy of it.
        let mg = ctx.preconditioner().as_multigrid().expect("multigrid engine");
        assert!(
            Arc::ptr_eq(ctx.shared_operator(), mg.hierarchy().fine_operator()),
            "paper-scale hierarchy must share the fine operator"
        );
        let fine_operator_mb = ctx.shared_operator().storage_bytes() as f64 / 1e6;
        let solve = Instant::now();
        let map = ctx.solve().expect("paper-scale steady solve");
        let solve_s = solve.elapsed().as_secs_f64();
        let iterations = ctx.last_iterations();
        let unknowns = ctx.unknowns();
        // The engine-cache story at the scale where it pays most: restore
        // the factored hierarchy from its artifact with zero
        // factorizations. The live engine is dropped first so the peak
        // memory stays one engine + one artifact.
        let blueprint =
            EngineBlueprint::new(system.design(), &spec).expect("paper blueprint meshes");
        let artifact = blueprint.engine_artifact(&ctx).expect("paper engine is cacheable");
        drop(ctx);
        let restore = Instant::now();
        let restored = blueprint.restore(&artifact).expect("paper engine restores");
        let restore_s = restore.elapsed().as_secs_f64();
        drop(restored);
        let record = PaperRecord {
            unknowns,
            setup_s,
            solve_s,
            iterations,
            hottest_c: map.hottest().1.value(),
            restore_s,
            fine_operator_mb,
            peak_rss_mb: peak_rss_mb(),
        };
        println!(
            "[paper] multigrid: {} unknowns, setup {:.1} s, cold solve {:.1} s / {} iters, \
             hottest {:.2} C, artifact restore {:.1} s ({:.1}x vs setup), \
             operator {:.0} MB shared (1 copy), peak RSS {}",
            record.unknowns,
            record.setup_s,
            record.solve_s,
            record.iterations,
            record.hottest_c,
            record.restore_s,
            record.setup_s / record.restore_s,
            record.fine_operator_mb,
            record.peak_rss_mb.map_or_else(|| "n/a".to_string(), |mb| format!("{mb:.0} MB")),
        );
        sink.rss_snapshot("perf", "paper_peak_rss");
        drop(phase_span);
        phases.push(("paper", phase_t.elapsed().as_secs_f64() * 1e3));
        Some(record)
    } else {
        None
    };

    // ---- 200-step transient: seed path vs engine path ------------------
    let phase_t = Instant::now();
    let phase_span = sink.span("perf", "transient");
    let group_names: Vec<String> = design.group_names().iter().map(|g| g.to_string()).collect();
    let scales: Vec<(&str, f64)> = group_names.iter().map(|g| (g.as_str(), 1.0)).collect();
    let initial = Celsius::new(40.0);

    let mut seed_stepper = TransientStepper::new(design, &spec, initial, TRANSIENT_DT_S)
        .expect("stepper builds")
        .with_preconditioner(PreconditionerKind::Jacobi)
        .expect("jacobi factors")
        .with_warm_start(false);
    let steps = transient_steps();
    let (seed_wall, seed_iters, seed_hot) = run_transient(&mut seed_stepper, &scales, steps);

    // Engine path A/B on the per-iteration IC(0) apply: exact serial
    // triangular solves vs the level-scheduled wavefront execution.
    let mut serial_apply_stepper = TransientStepper::new(design, &spec, initial, TRANSIENT_DT_S)
        .expect("stepper builds")
        .with_parallel_apply(false);
    let (serial_apply_wall, serial_apply_iters, serial_apply_hot) =
        run_transient(&mut serial_apply_stepper, &scales, steps);

    let mut engine_stepper =
        TransientStepper::new(design, &spec, initial, TRANSIENT_DT_S).expect("stepper builds");
    let transient_threads = engine_stepper
        .preconditioner()
        .as_incomplete_cholesky()
        .expect("engine stepper factors IC(0)")
        .apply_threads();
    let (engine_wall, engine_iters, engine_hot) =
        run_transient(&mut engine_stepper, &scales, steps);
    drop(phase_span);
    phases.push(("transient", phase_t.elapsed().as_secs_f64() * 1e3));
    sink.rss_snapshot("perf", "final_peak_rss");

    assert!(
        (seed_hot - engine_hot).abs() < 1e-6,
        "paths disagree: seed {seed_hot} vs engine {engine_hot}"
    );
    assert!(
        (serial_apply_hot - engine_hot).abs() < 1e-6,
        "apply paths disagree: serial {serial_apply_hot} vs level-scheduled {engine_hot}"
    );
    let speedup = seed_wall / engine_wall;
    let apply_speedup = serial_apply_wall / engine_wall;
    let transient = [
        TransientRecord {
            label: "seed_jacobi_cold",
            wall_s: seed_wall,
            steps_per_s: steps as f64 / seed_wall,
            total_iterations: seed_iters,
            final_hottest_c: seed_hot,
        },
        TransientRecord {
            label: "engine_ic0_warm_serial_apply",
            wall_s: serial_apply_wall,
            steps_per_s: steps as f64 / serial_apply_wall,
            total_iterations: serial_apply_iters,
            final_hottest_c: serial_apply_hot,
        },
        TransientRecord {
            label: "engine_ic0_warm",
            wall_s: engine_wall,
            steps_per_s: steps as f64 / engine_wall,
            total_iterations: engine_iters,
            final_hottest_c: engine_hot,
        },
    ];
    for t in &transient {
        println!(
            "[transient] {:>28}: {:>6.2} s ({:>7.1} steps/s, {} CG iterations)",
            t.label, t.wall_s, t.steps_per_s, t.total_iterations
        );
    }
    println!("[transient] wall-clock speedup engine vs seed: {speedup:.2}x");
    println!(
        "[transient] level-scheduled vs serial apply ({transient_threads} threads): \
         {apply_speedup:.2}x"
    );

    // ---- Batched DSE sweep: shared basis vs per-point solves -----------
    let phase_t = Instant::now();
    let phase_span = sink.span("perf", "dse_batch");
    let dse_n = dse_points();
    // Every point paints all power groups at the same scale; the spread
    // is wide enough that warm starts cannot make the sequential loop
    // trivially cheap.
    let dse_scales: Vec<f64> =
        (0..dse_n).map(|i| 0.25 + 2.75 * i as f64 / (dse_n.max(2) - 1) as f64).collect();
    let dse_paintings: Vec<Vec<(&str, f64)>> =
        dse_scales.iter().map(|&s| group_names.iter().map(|g| (g.as_str(), s)).collect()).collect();

    let mut seq_ctx = SolveContext::new(design, &spec).expect("sequential DSE context");
    let seq_t = Instant::now();
    let seq_hot: Vec<f64> = dse_paintings
        .iter()
        .map(|p| seq_ctx.solve_scaled(p).expect("sequential point solves").hottest().1.value())
        .collect();
    let sequential_s = seq_t.elapsed().as_secs_f64();

    let mut batch_ctx = SolveContext::new(design, &spec).expect("batched DSE context");
    let batch_t = Instant::now();
    let basis = ResponseBasis::build_on_batched(&mut batch_ctx).expect("batched basis builds");
    let batch_hot: Vec<f64> = dse_paintings
        .iter()
        .map(|p| basis.compose(p).expect("point composes").hottest().1.value())
        .collect();
    let batched_s = batch_t.elapsed().as_secs_f64();

    for (i, (a, b)) in seq_hot.iter().zip(&batch_hot).enumerate() {
        assert!((a - b).abs() < 1e-5, "DSE point {i}: sequential hottest {a} vs batched {b}");
    }
    let dse = DseBatchRecord {
        points: dse_n,
        unknowns,
        threads: hardware_threads(),
        sequential_s,
        batched_s,
        throughput_ratio: sequential_s / batched_s,
    };
    println!(
        "[dse_batch] {} points on {} unknowns: sequential {:.3} s, batched {:.3} s \
         ({:.1}x throughput, {} threads)",
        dse.points,
        dse.unknowns,
        dse.sequential_s,
        dse.batched_s,
        dse.throughput_ratio,
        dse.threads,
    );
    drop(phase_span);
    phases.push(("dse_batch", phase_t.elapsed().as_secs_f64() * 1e3));

    // ---- Emit JSON -----------------------------------------------------
    let transient_json: Vec<String> = transient
        .iter()
        .map(|t| {
            format!(
                "      {{ \"path\": \"{}\", \"wall_s\": {:.4}, \"steps_per_s\": {:.2}, \
                 \"total_cg_iterations\": {}, \"final_hottest_c\": {:.4} }}",
                t.label, t.wall_s, t.steps_per_s, t.total_iterations, t.final_hottest_c
            )
        })
        .collect();
    let ic0 = steady.iter().find(|s| s.name == "ic0").expect("ic0 present");
    let jacobi = steady.iter().find(|s| s.name == "jacobi").expect("jacobi present");
    let fast_json = if fast_steady.is_empty() {
        String::new()
    } else {
        format!(
            ",\n  \"steady_fast\": {{\n    \"unknowns\": {fast_unknowns},\n    \
             \"rows\": [\n{}\n    ]\n  }}",
            steady_json(&fast_steady, "      ")
        )
    };
    let fast_ratio = {
        let mg = fast_steady.iter().find(|s| s.name == "multigrid");
        let ic = fast_steady.iter().find(|s| s.name == "ic0");
        match (mg, ic) {
            (Some(mg), Some(ic)) => format!(
                ",\n  \"multigrid_vs_ic0_fast_cold_iteration_ratio\": {:.4}",
                mg.cold_iterations as f64 / ic.cold_iterations.max(1) as f64
            ),
            _ => String::new(),
        }
    };
    // A wall-clock speedup bar only binds where threads exist to win with;
    // a single-core machine correctly records ~1.0x, annotated so the row
    // can never read as a threading regression.
    let speedup_note = |threads: usize| {
        if threads >= 2 {
            "\"enforced\""
        } else {
            "\"skipped: single core\""
        }
    };
    let vcycle_json = vcycle
        .as_ref()
        .map(|v| {
            format!(
                ",\n  \"vcycle_fast\": {{ \"unknowns\": {}, \"threads\": {}, \
                 \"serial_ms_per_cycle\": {:.3}, \"parallel_ms_per_cycle\": {:.3}, \
                 \"speedup\": {:.3}, \"speedup_assertion\": {} }}",
                v.unknowns,
                v.threads,
                v.serial_ms,
                v.parallel_ms,
                v.speedup,
                speedup_note(v.threads)
            )
        })
        .unwrap_or_default();
    let trisolve_json = trisolve
        .as_ref()
        .map(|t| {
            format!(
                ",\n  \"trisolve_fast\": {{ \"unknowns\": {}, \"threads\": {}, \
                 \"levels\": {}, \"mean_level_rows\": {:.1}, \"max_level_rows\": {}, \
                 \"serial_ms_per_apply\": {:.3}, \"scheduled_ms_per_apply\": {:.3}, \
                 \"speedup\": {:.3}, \"speedup_assertion\": {} }}",
                t.unknowns,
                t.threads,
                t.levels,
                t.mean_level_rows,
                t.max_level_rows,
                t.serial_ms,
                t.parallel_ms,
                t.speedup,
                speedup_note(t.threads)
            )
        })
        .unwrap_or_default();
    // Per-phase wall clock (since v5): the same section boundaries the trace
    // spans use, so a record and a Perfetto trace line up by name.
    let phases_json = {
        let rows: Vec<String> = phases
            .iter()
            .map(|(name, ms)| format!("    {{ \"phase\": \"{name}\", \"wall_ms\": {ms:.1} }}"))
            .collect();
        format!(",\n  \"phases\": [\n{}\n  ]", rows.join(",\n"))
    };
    let engine_cache_json = engine_cache
        .as_ref()
        .map(|c| {
            format!(
                ",\n  \"engine_cache\": {{ \"unknowns\": {}, \"threads\": {}, \
                 \"mode\": \"readwrite\", \"cold_setup_ms\": {:.1}, \"warm_setup_ms\": {:.1}, \
                 \"restore_speedup\": {:.3}, \"warm_hit\": {}, \"speedup_assertion\": {} }}",
                c.unknowns,
                c.threads,
                c.cold_setup_ms,
                c.warm_setup_ms,
                c.restore_speedup,
                c.warm_hit,
                speedup_note(c.threads)
            )
        })
        .unwrap_or_default();
    let dse_json = format!(
        ",\n  \"dse_batch\": {{ \"points\": {}, \"unknowns\": {}, \"threads\": {}, \
         \"sequential_s\": {:.4}, \"batched_s\": {:.4}, \"throughput_ratio\": {:.3}, \
         \"ratio_assertion\": {} }}",
        dse.points,
        dse.unknowns,
        dse.threads,
        dse.sequential_s,
        dse.batched_s,
        dse.throughput_ratio,
        speedup_note(dse.threads),
    );
    let paper_json = paper
        .as_ref()
        .map(|p| {
            format!(
                ",\n  \"paper\": {{ \"unknowns\": {}, \"setup_s\": {:.2}, \"solve_s\": {:.2}, \
                 \"iterations\": {}, \"hottest_c\": {:.4}, \"restore_s\": {:.2}, \
                 \"restore_speedup\": {:.3}, \"fine_operator_mb\": {:.1}, \
                 \"fine_operator_copies\": 1, \"shared_operator_savings_mb\": {:.1}, \
                 \"peak_rss_mb\": {} }}",
                p.unknowns,
                p.setup_s,
                p.solve_s,
                p.iterations,
                p.hottest_c,
                p.restore_s,
                p.setup_s / p.restore_s,
                p.fine_operator_mb,
                // Pre-sharing, the operator was held three times (context
                // + fine level + fine-level SSOR): two copies saved.
                2.0 * p.fine_operator_mb,
                p.peak_rss_mb.map_or_else(|| "null".to_string(), |mb| format!("{mb:.1}")),
            )
        })
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"schema\": \"bench_solvers_v7\",\n  \"generated_by\": \"perf_record\",\n  \
         \"workload\": \"SccConfig tiny_test + full-die Fast, p_vcsel = 4 mW\",\n  \
         \"unknowns\": {unknowns},\n  \
         \"steady\": [\n{}\n  ]{fast_json}{fast_ratio}{vcycle_json}{trisolve_json}{engine_cache_json}{dse_json}{paper_json}\
         {phases_json},\n  \
         \"transient\": {{\n    \
         \"steps\": {steps},\n    \"dt_s\": {TRANSIENT_DT_S},\n    \
         \"threads\": {transient_threads},\n    \"paths\": [\n{}\n    ],\n    \
         \"speedup_engine_vs_seed\": {speedup:.3},\n    \
         \"speedup_scheduled_vs_serial_apply\": {apply_speedup:.3}\n  }},\n  \
         \"ic0_vs_jacobi_cold_iteration_ratio\": {:.4}\n}}\n",
        steady_json(&steady, "    "),
        transient_json.join(",\n"),
        ic0.cold_iterations as f64 / jacobi.cold_iterations.max(1) as f64,
    );
    std::fs::write(&out_path, &json).expect("write bench record");
    println!("[perf_record] wrote {out_path}");

    // The acceptance bars: the engine must at least halve the transient
    // wall clock and the IC(0) iteration count vs Jacobi, and at fast
    // fidelity multigrid must need at most half the IC(0) iterations.
    assert!(speedup >= 2.0, "transient speedup {speedup:.2}x < 2x");
    assert!(
        2 * ic0.cold_iterations <= jacobi.cold_iterations,
        "IC(0) iterations {} vs Jacobi {} — expected at most half",
        ic0.cold_iterations,
        jacobi.cold_iterations
    );
    let mg_tiny = steady.iter().find(|s| s.name == "multigrid").expect("multigrid present");
    assert!(
        2 * mg_tiny.cold_iterations <= ic0.cold_iterations,
        "multigrid iterations {} vs IC(0) {} at tiny fidelity — expected at most half",
        mg_tiny.cold_iterations,
        ic0.cold_iterations
    );
    if let (Some(mg), Some(ic)) = (
        fast_steady.iter().find(|s| s.name == "multigrid"),
        fast_steady.iter().find(|s| s.name == "ic0"),
    ) {
        assert!(
            2 * mg.cold_iterations <= ic.cold_iterations,
            "multigrid iterations {} vs IC(0) {} at fast fidelity — expected at most half",
            mg.cold_iterations,
            ic.cold_iterations
        );
    }
    // The V-cycle threading bar only binds where threads exist to win
    // with (a single-core machine records ~1.0x and that is correct) and
    // only on dedicated full record runs: the iteration-count bars above
    // are deterministic, but a wall-clock ratio measured on a contended
    // shared CI runner is not, so the reduced smoke run (identified by
    // its PERF_RECORD_STEPS override) records the ratio without gating
    // the push on it.
    let full_run = std::env::var_os("PERF_RECORD_STEPS").is_none();
    if let Some(v) = &vcycle {
        if v.threads >= 2 && full_run {
            assert!(
                v.speedup >= 1.3,
                "parallel V-cycle speedup {:.2}x < 1.3x on {} threads",
                v.speedup,
                v.threads
            );
        } else if v.threads < 2 {
            println!("[vcycle/fast] single-core: speedup assertion skipped");
        }
    }
    // The triangular-solve bar asserts whenever at least two hardware
    // threads are reported — including CI's reduced smoke run, so the
    // level-scheduled path's win is re-proven on every push of a
    // multicore runner.
    if let Some(t) = &trisolve {
        if t.threads >= 2 {
            assert!(
                t.speedup >= 1.3,
                "level-scheduled IC(0) apply speedup {:.2}x < 1.3x on {} threads \
                 ({} levels, mean width {:.0})",
                t.speedup,
                t.threads,
                t.levels,
                t.mean_level_rows
            );
        } else {
            println!("[trisolve/fast] single-core: speedup assertion skipped");
        }
    }
    if transient_threads < 2 {
        println!("[transient] single-core: threaded-apply speedup assertion skipped");
    }
    // The engine-cache bars: the warm probe must restore (a miss means the
    // artifact pipeline regressed — deterministic, asserted everywhere),
    // and the restore must erase at least half the fresh setup cost (a
    // wall-clock ratio, so it follows the single-core skip convention).
    if let Some(c) = &engine_cache {
        assert!(c.warm_hit, "warm engine-cache probe rebuilt instead of restoring");
        if c.threads >= 2 {
            assert!(
                c.restore_speedup >= 2.0,
                "engine-cache restore speedup {:.2}x < 2x (cold {:.0} ms, warm {:.0} ms)",
                c.restore_speedup,
                c.cold_setup_ms,
                c.warm_setup_ms
            );
        } else {
            println!("[engine_cache/fast] single-core: restore speedup assertion skipped");
        }
    }
    if let Some(p) = &paper {
        if hardware_threads() >= 2 {
            assert!(
                p.setup_s / p.restore_s >= 2.0,
                "paper-scale restore speedup {:.2}x < 2x (setup {:.1} s, restore {:.1} s)",
                p.setup_s / p.restore_s,
                p.setup_s,
                p.restore_s
            );
        } else {
            println!("[paper] single-core: restore speedup assertion skipped");
        }
    }
    // The batched-DSE bar: the shared basis + compose path must deliver at
    // least 3x the sweep throughput of per-point solves. The win is
    // algorithmic, but it is still a wall-clock ratio, so it follows the
    // same single-core skip convention as the threading bars.
    if dse.threads >= 2 {
        assert!(
            dse.throughput_ratio >= 3.0,
            "batched DSE throughput {:.2}x < 3x over {} points",
            dse.throughput_ratio,
            dse.points
        );
    } else {
        println!("[dse_batch] single-core: throughput assertion skipped");
    }
}
