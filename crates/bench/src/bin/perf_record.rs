//! Records the solve-engine benchmarks in reduced form and emits
//! `BENCH_solvers.json` — the machine-readable bench trajectory the
//! ROADMAP's "as fast as the hardware allows" north star is tracked
//! against.
//!
//! Two workloads, both on the tiny-fidelity SCC case-study system:
//!
//! 1. **Steady solves** — one cold and one warm solve per preconditioner
//!    (Jacobi / IC(0) / SSOR), recording wall time and CG iterations.
//! 2. **200-step transient** — the paper's runtime-management shape — run
//!    once on the seed-era path (cold-start Jacobi-CG every step) and once
//!    on the engine path (IC(0) factored once + warm starts), recording
//!    steps/second and the wall-clock speedup.
//!
//! Usage: `cargo run --release -p vcsel_bench --bin perf_record [out.json]`
//! (default output `BENCH_solvers.json` in the working directory). Runs in
//! seconds; wired into CI as a smoke job so the trajectory stays fresh.

use std::time::Instant;

use vcsel_arch::{SccConfig, SccSystem};
use vcsel_thermal::{PreconditionerKind, SolveContext, TransientStepper};
use vcsel_units::{Celsius, Watts};

const TRANSIENT_DT_S: f64 = 1e-2;
const STEADY_REPS: usize = 5;

/// Transient step count: 200 by default (the acceptance workload); CI's
/// smoke job shrinks it via `PERF_RECORD_STEPS` to stay within its budget.
fn transient_steps() -> usize {
    std::env::var("PERF_RECORD_STEPS").ok().and_then(|v| v.parse().ok()).unwrap_or(200)
}

struct SteadyRecord {
    name: &'static str,
    cold_ms: f64,
    cold_iterations: usize,
    warm_ms: f64,
    warm_iterations: usize,
}

struct TransientRecord {
    label: &'static str,
    wall_s: f64,
    steps_per_s: f64,
    total_iterations: usize,
    final_hottest_c: f64,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one rep"))
}

fn run_transient(
    stepper: &mut TransientStepper,
    scales: &[(&str, f64)],
    steps: usize,
) -> (f64, usize, f64) {
    let t = Instant::now();
    for _ in 0..steps {
        stepper.step(scales).expect("step solves");
    }
    let wall = t.elapsed().as_secs_f64();
    let hottest = stepper.snapshot().hottest().1.value();
    (wall, stepper.total_iterations(), hottest)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_solvers.json".to_string());

    let config = SccConfig { p_vcsel: Watts::from_milliwatts(4.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("tiny SCC builds");
    let spec = system.mesh_spec().expect("mesh spec");
    let design = system.design();

    // ---- Steady solves per preconditioner ------------------------------
    let kinds = [
        ("jacobi", PreconditionerKind::Jacobi),
        ("ic0", PreconditionerKind::IncompleteCholesky),
        ("ssor", PreconditionerKind::Ssor { omega: 1.2 }),
    ];
    let mut unknowns = 0;
    let mut steady = Vec::new();
    for (name, kind) in kinds {
        let mut ctx = SolveContext::new(design, &spec)
            .expect("context builds")
            .with_preconditioner(kind)
            .expect("preconditioner factors");
        unknowns = ctx.unknowns();
        let (cold_ms, _) = time_best(STEADY_REPS, || {
            ctx.reset_guess();
            ctx.solve().expect("steady solve")
        });
        let cold_iterations = ctx.last_iterations();
        // Warm variant: hop between two nearby VCSEL operating points from
        // an already-converged field — the design-sweep / calibration
        // access pattern. Alternating keeps every rep doing real work
        // instead of re-solving an identical RHS for free.
        let mut flip = false;
        let (warm_ms, _) = time_best(STEADY_REPS, || {
            flip = !flip;
            let s = if flip { 1.02 } else { 1.01 };
            ctx.solve_scaled(&[("chip", 1.0), ("vcsel", s), ("driver", 1.0)]).expect("warm solve")
        });
        let warm_iterations = ctx.last_iterations();
        println!(
            "[steady] {name:>6}: cold {:>7.2} ms / {cold_iterations:>4} iters, \
             warm {:>7.2} ms / {warm_iterations:>4} iters",
            cold_ms * 1e3,
            warm_ms * 1e3,
        );
        steady.push(SteadyRecord {
            name,
            cold_ms: cold_ms * 1e3,
            cold_iterations,
            warm_ms: warm_ms * 1e3,
            warm_iterations,
        });
    }

    // ---- 200-step transient: seed path vs engine path ------------------
    let group_names: Vec<String> = design.group_names().iter().map(|g| g.to_string()).collect();
    let scales: Vec<(&str, f64)> = group_names.iter().map(|g| (g.as_str(), 1.0)).collect();
    let initial = Celsius::new(40.0);

    let mut seed_stepper = TransientStepper::new(design, &spec, initial, TRANSIENT_DT_S)
        .expect("stepper builds")
        .with_preconditioner(PreconditionerKind::Jacobi)
        .expect("jacobi factors")
        .with_warm_start(false);
    let steps = transient_steps();
    let (seed_wall, seed_iters, seed_hot) = run_transient(&mut seed_stepper, &scales, steps);

    let mut engine_stepper =
        TransientStepper::new(design, &spec, initial, TRANSIENT_DT_S).expect("stepper builds");
    let (engine_wall, engine_iters, engine_hot) =
        run_transient(&mut engine_stepper, &scales, steps);

    assert!(
        (seed_hot - engine_hot).abs() < 1e-6,
        "paths disagree: seed {seed_hot} vs engine {engine_hot}"
    );
    let speedup = seed_wall / engine_wall;
    let transient = [
        TransientRecord {
            label: "seed_jacobi_cold",
            wall_s: seed_wall,
            steps_per_s: steps as f64 / seed_wall,
            total_iterations: seed_iters,
            final_hottest_c: seed_hot,
        },
        TransientRecord {
            label: "engine_ic0_warm",
            wall_s: engine_wall,
            steps_per_s: steps as f64 / engine_wall,
            total_iterations: engine_iters,
            final_hottest_c: engine_hot,
        },
    ];
    for t in &transient {
        println!(
            "[transient] {:>17}: {:>6.2} s ({:>7.1} steps/s, {} CG iterations)",
            t.label, t.wall_s, t.steps_per_s, t.total_iterations
        );
    }
    println!("[transient] wall-clock speedup engine vs seed: {speedup:.2}x");

    // ---- Emit JSON -----------------------------------------------------
    let steady_json: Vec<String> = steady
        .iter()
        .map(|s| {
            format!(
                "    {{ \"preconditioner\": \"{}\", \"cold_ms\": {:.3}, \
                 \"cold_iterations\": {}, \"warm_ms\": {:.3}, \"warm_iterations\": {} }}",
                s.name, s.cold_ms, s.cold_iterations, s.warm_ms, s.warm_iterations
            )
        })
        .collect();
    let transient_json: Vec<String> = transient
        .iter()
        .map(|t| {
            format!(
                "      {{ \"path\": \"{}\", \"wall_s\": {:.4}, \"steps_per_s\": {:.2}, \
                 \"total_cg_iterations\": {}, \"final_hottest_c\": {:.4} }}",
                t.label, t.wall_s, t.steps_per_s, t.total_iterations, t.final_hottest_c
            )
        })
        .collect();
    let ic0 = steady.iter().find(|s| s.name == "ic0").expect("ic0 present");
    let jacobi = steady.iter().find(|s| s.name == "jacobi").expect("jacobi present");
    let json = format!(
        "{{\n  \"schema\": \"bench_solvers_v1\",\n  \"generated_by\": \"perf_record\",\n  \
         \"workload\": \"SccConfig::tiny_test, p_vcsel = 4 mW\",\n  \"unknowns\": {unknowns},\n  \
         \"steady\": [\n{}\n  ],\n  \"transient\": {{\n    \"steps\": {steps},\n    \
         \"dt_s\": {TRANSIENT_DT_S},\n    \"paths\": [\n{}\n    ],\n    \
         \"speedup_engine_vs_seed\": {speedup:.3}\n  }},\n  \
         \"ic0_vs_jacobi_cold_iteration_ratio\": {:.4}\n}}\n",
        steady_json.join(",\n"),
        transient_json.join(",\n"),
        ic0.cold_iterations as f64 / jacobi.cold_iterations.max(1) as f64,
    );
    std::fs::write(&out_path, &json).expect("write bench record");
    println!("[perf_record] wrote {out_path}");

    // The acceptance bar for this bench: the engine must at least halve the
    // transient wall clock and the IC(0) iteration count vs Jacobi.
    assert!(speedup >= 2.0, "transient speedup {speedup:.2}x < 2x");
    assert!(
        2 * ic0.cold_iterations <= jacobi.cold_iterations,
        "IC(0) iterations {} vs Jacobi {} — expected at most half",
        ic0.cold_iterations,
        jacobi.cold_iterations
    );
}
