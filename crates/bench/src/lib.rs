//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables/figures (at
//! reduced fidelity where a full FVM study would dominate the run) and then
//! measures the performance of the underlying kernel. The full-fidelity
//! reproductions live in the `src/bin` report binaries of the root crate.

use std::sync::OnceLock;

use vcsel_arch::SccConfig;
use vcsel_core::{DesignFlow, ThermalStudy};
use vcsel_thermal::Simulator;

/// A shared reduced-scale thermal study (2 ONIs, tiny mesh) so bench
/// targets don't each pay the multi-solve construction.
pub fn tiny_study() -> &'static ThermalStudy {
    static STUDY: OnceLock<ThermalStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        ThermalStudy::new(SccConfig::tiny_test(), &Simulator::new()).expect("study builds")
    })
}

/// A shared reduced-scale study with 4 ONIs (enough for real crosstalk).
pub fn tiny_study_4oni() -> &'static (DesignFlow, ThermalStudy) {
    static STUDY: OnceLock<(DesignFlow, ThermalStudy)> = OnceLock::new();
    STUDY.get_or_init(|| {
        let flow = DesignFlow::paper();
        let study = ThermalStudy::new(
            SccConfig { oni_count: 4, ..SccConfig::tiny_test() },
            flow.simulator(),
        )
        .expect("study builds");
        (flow, study)
    })
}
