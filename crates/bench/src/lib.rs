//! Shared helpers for the benchmark harness — the perf layer of the
//! workspace (see `ARCHITECTURE.md` for where it sits in the crate graph).
//!
//! Two kinds of targets live in this crate:
//!
//! * **Criterion benches** (`benches/*`): each regenerates one of the
//!   paper's tables/figures (at reduced fidelity where a full FVM study
//!   would dominate the run) and then measures the underlying kernel —
//!   solver ablations, mesh/layout sweeps, SNR evaluation. The
//!   full-fidelity reproductions live in the `src/bin` report binaries of
//!   the root crate.
//! * **The `perf_record` binary** (`src/bin/perf_record.rs`): emits
//!   `BENCH_solvers.json` (schema `bench_solvers_v7`), the committed
//!   machine-readable record of the solve-engine trajectory — steady
//!   cold/warm solves per preconditioner, IC(0)-vs-multigrid at full-die
//!   fast fidelity, the V-cycle threading A/B, the engine-cache
//!   cold-build-vs-warm-restore A/B, the batched DSE sweep, the 200-step
//!   transient, and (env-gated) the paper-fidelity solve with its
//!   shared-operator memory story and artifact-restore timing. CI runs it
//!   in reduced form on every push and its assertions are the perf
//!   regression gate.
//!
//! The helpers below share one reduced-scale [`ThermalStudy`] across bench
//! targets so each doesn't pay the multi-solve construction.

use std::sync::OnceLock;

use vcsel_arch::SccConfig;
use vcsel_core::{DesignFlow, ThermalStudy};
use vcsel_thermal::Simulator;

/// A shared reduced-scale thermal study (2 ONIs, tiny mesh) so bench
/// targets don't each pay the multi-solve construction.
pub fn tiny_study() -> &'static ThermalStudy {
    static STUDY: OnceLock<ThermalStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        ThermalStudy::new(SccConfig::tiny_test(), &Simulator::new()).expect("study builds")
    })
}

/// A shared reduced-scale study with 4 ONIs (enough for real crosstalk).
pub fn tiny_study_4oni() -> &'static (DesignFlow, ThermalStudy) {
    static STUDY: OnceLock<(DesignFlow, ThermalStudy)> = OnceLock::new();
    STUDY.get_or_init(|| {
        let flow = DesignFlow::paper();
        let study = ThermalStudy::new(
            SccConfig { oni_count: 4, ..SccConfig::tiny_test() },
            flow.simulator(),
        )
        .expect("study builds");
        (flow, study)
    })
}
