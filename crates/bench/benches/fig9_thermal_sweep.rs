//! Bench + regeneration of Figure 9 (E3/E4): the P_VCSEL / P_chip /
//! P_heater design-space sweeps (reduced scale; see `fig9_temperature` for
//! the full-die numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_bench::tiny_study;
use vcsel_core::experiments::{figure9a, figure9b};
use vcsel_units::Watts;

fn bench_fig9(c: &mut Criterion) {
    let study = tiny_study();

    let a = figure9a(study, &[0.0, 2.0, 4.0, 6.0], &[1.0, 2.0, 3.0]).expect("fig 9-a");
    println!(
        "[fig9a] slopes: {:.2} C/W chip (paper ~0.53), {:.2} C/mW P_VCSEL (paper ~1.8)",
        a.chip_power_slope().expect("slope on a 3x4 figure"),
        a.vcsel_power_slope().expect("slope on a 3x4 figure")
    );
    let b =
        figure9b(study, &[2.0, 6.0], &[0.0, 0.6, 1.2, 1.8, 2.4], Watts::new(2.0)).expect("fig 9-b");
    println!(
        "[fig9b] optimal heater ratios: {:?} (paper ~0.3)",
        b.optimal_ratio.iter().map(|r| (r * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // The kernel behind every sweep point: a superposition compose +
    // metric extraction.
    c.bench_function("thermal_sweep_point", |bench| {
        bench.iter(|| {
            study
                .evaluate(
                    Watts::from_milliwatts(std::hint::black_box(3.6)),
                    Watts::from_milliwatts(1.08),
                    Watts::new(2.0),
                )
                .expect("composes")
        })
    });

    // One full figure-9-b row.
    c.bench_function("fig9b_row", |bench| {
        bench.iter(|| {
            figure9b(
                study,
                std::hint::black_box(&[4.0]),
                &[0.0, 0.6, 1.2, 1.8, 2.4],
                Watts::new(2.0),
            )
            .expect("regenerates")
        })
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
