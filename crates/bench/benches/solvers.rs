//! Ablation: iterative-solver choice (Jacobi-CG vs SOR vs BiCGSTAB) on a
//! real FVM system from the case study.

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_arch::{SccConfig, SccSystem};
use vcsel_numerics::solver::{self, SolveOptions};
use vcsel_thermal::{Mesh, Simulator};
use vcsel_units::Watts;

fn bench_solvers(c: &mut Criterion) {
    let config = SccConfig { p_vcsel: Watts::from_milliwatts(4.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("builds");
    let spec = system.mesh_spec().expect("spec");
    let mesh = Mesh::build(system.design(), &spec).expect("mesh");
    println!("[solvers] FVM system with {} unknowns", mesh.cell_count());

    // Reference solve for agreement checks.
    let reference = Simulator::new().solve(system.design(), &spec).expect("solves");
    let hottest = reference.hottest().1;
    println!("[solvers] CG reference hottest cell: {:.3} C", hottest.value());

    // Extract the raw system once through the public path: re-assembling
    // inside the iteration keeps the comparison honest about symmetric
    // Krylov vs stationary methods on the same matrix.
    let opts = SolveOptions { tolerance: 1e-8, max_iterations: 200_000, relaxation: 1.85 };

    let mut group = c.benchmark_group("solver_choice");
    group.sample_size(10);
    group.bench_function("conjugate_gradient", |b| {
        b.iter(|| {
            Simulator::new()
                .with_options(SolveOptions { tolerance: 1e-8, ..opts })
                .solve(system.design(), std::hint::black_box(&spec))
                .expect("CG solves")
        })
    });
    group.finish();

    // Cross-check SOR and BiCGSTAB agree with CG on a small Laplacian
    // (running them on the full FVM system inside criterion would dominate
    // the bench budget).
    let n = 2_000;
    let mut builder = vcsel_numerics::TripletBuilder::new(n, n);
    for i in 0..n {
        builder.add(i, i, 2.0 + 1e-3);
        if i > 0 {
            builder.add(i, i - 1, -1.0);
        }
        if i + 1 < n {
            builder.add(i, i + 1, -1.0);
        }
    }
    let a = builder.build();
    let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let cg = solver::conjugate_gradient(&a, &rhs, &opts).expect("CG");
    let gs = solver::sor(&a, &rhs, &opts).expect("SOR");
    let bi = solver::bicgstab(&a, &rhs, &opts).expect("BiCGSTAB");
    let diff =
        |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!(
        "[solvers] 1-D Laplacian (n = {n}): CG {} iters, SOR {} iters, BiCGSTAB {} iters; \
         max disagreement CG-SOR {:.2e}, CG-BiCGSTAB {:.2e}",
        cg.iterations,
        gs.iterations,
        bi.iterations,
        diff(&cg.solution, &gs.solution),
        diff(&cg.solution, &bi.solution)
    );

    let mut group = c.benchmark_group("krylov_kernels");
    group.bench_function("cg_laplacian_2k", |b| {
        b.iter(|| solver::conjugate_gradient(std::hint::black_box(&a), &rhs, &opts).unwrap())
    });
    group.bench_function("bicgstab_laplacian_2k", |b| {
        b.iter(|| solver::bicgstab(std::hint::black_box(&a), &rhs, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
