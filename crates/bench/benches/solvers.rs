//! Ablation: solve-engine choice on a real FVM system from the case study.
//!
//! Compares the three CG preconditioners (Jacobi, IC(0), SSOR) in cold- and
//! warm-start variants on the tiny-fidelity SCC system — the same matrix
//! every run-time-management path solves — plus the legacy stationary/
//! non-symmetric solvers on a small Laplacian cross-check.

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_arch::{SccConfig, SccSystem};
use vcsel_numerics::solver::{self, SolveOptions};
use vcsel_thermal::{PreconditionerKind, SolveContext};
use vcsel_units::Watts;

fn bench_solvers(c: &mut Criterion) {
    let config = SccConfig { p_vcsel: Watts::from_milliwatts(4.0), ..SccConfig::tiny_test() };
    let system = SccSystem::build(&config).expect("builds");
    let spec = system.mesh_spec().expect("spec");

    let kinds = [
        ("jacobi", PreconditionerKind::Jacobi),
        ("ic0", PreconditionerKind::IncompleteCholesky),
        ("ssor", PreconditionerKind::Ssor { omega: 1.2 }),
    ];

    // One context per preconditioner, shared across cold and warm variants;
    // construction (assembly + factorization) happens outside the timers.
    let mut contexts: Vec<(&str, SolveContext)> = kinds
        .iter()
        .map(|&(name, kind)| {
            let ctx = SolveContext::new(system.design(), &spec)
                .expect("context")
                .with_preconditioner(kind)
                .expect("factors");
            (name, ctx)
        })
        .collect();
    println!("[solvers] FVM system with {} unknowns", contexts[0].1.unknowns());

    let mut group = c.benchmark_group("fvm_solve_engine");
    group.sample_size(10);
    for (name, ctx) in &mut contexts {
        group.bench_function(format!("{name}_cold"), |b| {
            b.iter(|| {
                ctx.reset_guess();
                std::hint::black_box(ctx.solve().expect("solves"))
            })
        });
        println!("[solvers] {name} cold: {} CG iterations", ctx.last_iterations());
        // Warm start: hop between two nearby VCSEL operating points from a
        // converged field — the influence-calibration / transient-stepping
        // shape. Alternating keeps every timed solve doing real work; a
        // constant RHS would converge in 0 iterations after the first call.
        group.bench_function(format!("{name}_warm"), |b| {
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let s = if flip { 1.02 } else { 1.01 };
                std::hint::black_box(ctx.solve_scaled(&[("vcsel", s)]).expect("solves"))
            })
        });
        println!("[solvers] {name} warm: {} CG iterations", ctx.last_iterations());
    }
    group.finish();

    // Full (mesh + assemble + factor + solve) one-shot path for context.
    let mut group = c.benchmark_group("fvm_one_shot");
    group.sample_size(10);
    group.bench_function("simulator_solve", |b| {
        b.iter(|| {
            vcsel_thermal::Simulator::new()
                .solve(system.design(), std::hint::black_box(&spec))
                .expect("solves")
        })
    });
    group.finish();

    // Cross-check SOR and BiCGSTAB agree with CG on a small Laplacian
    // (running them on the full FVM system inside criterion would dominate
    // the bench budget).
    let opts = SolveOptions { tolerance: 1e-8, max_iterations: 200_000, relaxation: 1.85 };
    let n = 2_000;
    let mut builder = vcsel_numerics::TripletBuilder::with_capacity(n, n, 3 * n);
    for i in 0..n {
        builder.add(i, i, 2.0 + 1e-3);
        if i > 0 {
            builder.add(i, i - 1, -1.0);
        }
        if i + 1 < n {
            builder.add(i, i + 1, -1.0);
        }
    }
    let a = builder.build();
    let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let cg = solver::conjugate_gradient(&a, &rhs, &opts).expect("CG");
    let gs = solver::sor(&a, &rhs, &opts).expect("SOR");
    let bi = solver::bicgstab(&a, &rhs, &opts).expect("BiCGSTAB");
    let diff =
        |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!(
        "[solvers] 1-D Laplacian (n = {n}): CG {} iters, SOR {} iters, BiCGSTAB {} iters; \
         max disagreement CG-SOR {:.2e}, CG-BiCGSTAB {:.2e}",
        cg.iterations,
        gs.iterations,
        bi.iterations,
        diff(&cg.solution, &gs.solution),
        diff(&cg.solution, &bi.solution)
    );

    let mut group = c.benchmark_group("krylov_kernels");
    group.bench_function("cg_laplacian_2k", |b| {
        b.iter(|| solver::conjugate_gradient(std::hint::black_box(&a), &rhs, &opts).unwrap())
    });
    group.bench_function("bicgstab_laplacian_2k", |b| {
        b.iter(|| solver::bicgstab(std::hint::black_box(&a), &rhs, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
