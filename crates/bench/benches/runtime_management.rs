//! Extension bench: the run-time thermal-management techniques of the
//! paper's Section II (feedback calibration [12], channel remapping [15],
//! migration [16], job allocation [14]) — throughput of each inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_control::{
    allocate_jobs, migrate_workload, remap_channels, AllocationPolicy, CalibrationConfig,
    CalibrationLoop, InfluenceModel, Job, LumpedPlant, MigrationConfig, RemapConfig,
};
use vcsel_network::{assign_channels, traffic, RingTopology, SnrAnalyzer, WavelengthGrid};
use vcsel_units::{Celsius, Meters, Watts};

fn island() -> LumpedPlant {
    let mut plant = LumpedPlant::oni_island(4, 4, Celsius::new(50.0)).expect("island");
    let mut d = vec![Watts::ZERO; 8];
    for laser in d.iter_mut().skip(4) {
        *laser = Watts::from_milliwatts(3.6);
    }
    plant.set_disturbance(&d).expect("8 nodes");
    plant
}

fn strip_model() -> InfluenceModel {
    let onis = vec![[Meters::ZERO, Meters::ZERO], [Meters::from_millimeters(20.0), Meters::ZERO]];
    let tiles: Vec<[Meters; 2]> =
        (0..6).map(|k| [Meters::from_millimeters(4.0 * k as f64), Meters::ZERO]).collect();
    InfluenceModel::from_geometry(
        &onis,
        &tiles,
        Celsius::new(45.0),
        0.4,
        Meters::from_millimeters(3.0),
    )
    .expect("geometry")
}

fn bench_runtime_management(c: &mut Criterion) {
    // Headline numbers, printed once.
    let mut plant = island();
    let mut cal = CalibrationLoop::new(
        Celsius::new(53.0),
        &[0, 1, 2, 3],
        CalibrationConfig::oni_island_default(),
    )
    .expect("config");
    let outcome = cal.run(&mut plant).expect("runs");
    println!(
        "[runtime] feedback calibration: locked={} in {:.2} ms, {:.2} mW total heater",
        outcome.locked,
        outcome.settle_time_s.unwrap_or(f64::NAN) * 1e3,
        outcome.total_heater_power.as_milliwatts()
    );

    let topo = RingTopology::evenly_spaced(5, Meters::from_millimeters(18.0)).expect("ring");
    let comms = assign_channels(&topo, &traffic::all_to_all(5)).expect("assigns");
    let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
    let temps: Vec<Celsius> = (0..5).map(|i| Celsius::new(50.0 + 1.5 * i as f64)).collect();
    let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
    let remap = remap_channels(
        &topo,
        &comms,
        &temps,
        &powers,
        &analyzer,
        &RemapConfig { channel_budget: 12, max_moves: 20, ..Default::default() },
    )
    .expect("remaps");
    println!(
        "[runtime] remapping: {:.2} -> {:.2} dB worst-case (+{:.2} dB, {} moves)",
        remap.initial_worst_db,
        remap.final_worst_db,
        remap.gain_db(),
        remap.moves
    );

    let model = strip_model();
    let skew =
        vec![Watts::new(8.0), Watts::new(8.0), Watts::ZERO, Watts::ZERO, Watts::ZERO, Watts::ZERO];
    let migrated = migrate_workload(&model, &skew, &MigrationConfig::default()).expect("migrates");
    println!(
        "[runtime] migration: spread {:.2} -> {:.3} °C in {} moves",
        migrated.initial_spread.value(),
        migrated.final_spread.value(),
        migrated.moves
    );

    // Criterion timings of the inner loops.
    c.bench_function("calibration_lock_4rings", |bench| {
        bench.iter(|| {
            let mut plant = island();
            let mut cal = CalibrationLoop::new(
                Celsius::new(53.0),
                &[0, 1, 2, 3],
                CalibrationConfig::oni_island_default(),
            )
            .expect("config");
            cal.run(std::hint::black_box(&mut plant)).expect("locks")
        })
    });

    c.bench_function("migration_6tiles", |bench| {
        bench.iter(|| {
            migrate_workload(
                std::hint::black_box(&model),
                std::hint::black_box(&skew),
                &MigrationConfig::default(),
            )
            .expect("migrates")
        })
    });

    let jobs: Vec<Job> = (0..5).map(|id| Job { id, power: Watts::new(3.0) }).collect();
    c.bench_function("allocation_thermal_aware", |bench| {
        bench.iter(|| {
            allocate_jobs(
                std::hint::black_box(&model),
                std::hint::black_box(&jobs),
                Watts::new(10.0),
                AllocationPolicy::ThermalAware,
            )
            .expect("allocates")
        })
    });
}

criterion_group!(benches, bench_runtime_management);
criterion_main!(benches);
