//! Bench + regeneration of Figure 8 (E1/E2): the VCSEL efficiency and
//! output-power families.

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_core::experiments::figure8;
use vcsel_photonics::Vcsel;

fn bench_figure8(c: &mut Criterion) {
    let vcsel = Vcsel::paper_default();

    // Regenerate once and print the paper anchors.
    let fig = figure8(&vcsel).expect("figure 8 regenerates");
    let t40 = fig.temperatures_c.iter().position(|&t| t == 40.0).unwrap();
    let t60 = fig.temperatures_c.iter().position(|&t| t == 60.0).unwrap();
    let peak = |i: usize| fig.efficiency[i].iter().cloned().fold(0.0f64, f64::max);
    println!(
        "[fig8] peak eta(40C) = {:.1}% (paper ~15%), peak eta(60C) = {:.1}% (paper ~4%)",
        peak(t40) * 100.0,
        peak(t60) * 100.0
    );

    c.bench_function("figure8_regeneration", |b| {
        b.iter(|| figure8(std::hint::black_box(&vcsel)).expect("regenerates"))
    });
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
