//! Bench + regeneration of Figure 12 (E6/E7): worst-case SNR under the
//! thermal field (reduced scale; see the `fig12_snr` binary for the full
//! 3-activity × 3-placement matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_bench::tiny_study_4oni;
use vcsel_units::Watts;

fn bench_fig12(c: &mut Criterion) {
    let (flow, study) = tiny_study_4oni();
    let p_vcsel = Watts::from_milliwatts(3.6);
    let outcome = study
        .evaluate(p_vcsel, Watts::from_milliwatts(1.08), Watts::new(2.0))
        .expect("thermal point");

    let snr = flow.evaluate_snr(study.system(), &outcome, p_vcsel).expect("snr");
    println!(
        "[fig12] reduced system: worst SNR {:.1} dB, signal {:.4} mW, crosstalk {:.6} mW, \
         all detected: {}",
        snr.worst_snr_db,
        snr.worst_signal.as_milliwatts(),
        snr.worst_crosstalk.as_milliwatts(),
        snr.all_detected
    );

    c.bench_function("snr_full_interface", |bench| {
        bench.iter(|| {
            flow.evaluate_snr(study.system(), std::hint::black_box(&outcome), p_vcsel)
                .expect("analyzes")
        })
    });

    c.bench_function("thermal_plus_snr_point", |bench| {
        bench.iter(|| {
            let outcome = study
                .evaluate(p_vcsel, Watts::from_milliwatts(1.08), Watts::new(2.0))
                .expect("thermal");
            flow.evaluate_snr(study.system(), &outcome, p_vcsel).expect("snr")
        })
    });
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
