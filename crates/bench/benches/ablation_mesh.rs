//! Ablation: mesh-resolution sensitivity of the thermal metrics, plus the
//! cost of meshing and assembly at each fidelity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vcsel_arch::{Fidelity, SccConfig, SccSystem};
use vcsel_thermal::{Mesh, Simulator};
use vcsel_units::Watts;

fn bench_mesh(c: &mut Criterion) {
    // Fixed operating point, varying only the mesh fidelity.
    let build = |fidelity: Fidelity| {
        let config = SccConfig {
            p_vcsel: Watts::from_milliwatts(4.0),
            p_heater: Watts::from_milliwatts(1.2),
            fidelity,
            ..SccConfig::tiny_test()
        };
        SccSystem::build(&config).expect("builds")
    };

    let sim = Simulator::new();
    for fidelity in [Fidelity::Tiny, Fidelity::Fast] {
        let system = build(fidelity);
        let spec = system.mesh_spec().expect("spec");
        let mesh = Mesh::build(system.design(), &spec).expect("mesh");
        let map = sim.solve(system.design(), &spec).expect("solves");
        let thermals = system.oni_thermals(&map).expect("metrics");
        println!(
            "[ablation/mesh] {fidelity:?}: {} cells -> ONI0 avg {:.3} C, gradient {:.3} C",
            mesh.cell_count(),
            thermals[0].average.value(),
            thermals[0].gradient.value()
        );
    }

    let mut group = c.benchmark_group("mesh_fidelity");
    group.sample_size(10);
    for fidelity in [Fidelity::Tiny, Fidelity::Fast] {
        let system = build(fidelity);
        let spec = system.mesh_spec().expect("spec");
        group.bench_with_input(
            BenchmarkId::new("mesh_build", format!("{fidelity:?}")),
            &spec,
            |b, spec| b.iter(|| Mesh::build(system.design(), std::hint::black_box(spec)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("full_solve", format!("{fidelity:?}")),
            &spec,
            |b, spec| b.iter(|| sim.solve(system.design(), std::hint::black_box(spec)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mesh);
criterion_main!(benches);
