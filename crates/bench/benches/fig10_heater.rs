//! Bench + regeneration of Figure 10 (E5): with/without-heater comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_bench::tiny_study;
use vcsel_core::experiments::figure10;
use vcsel_units::Watts;

fn bench_fig10(c: &mut Criterion) {
    let study = tiny_study();

    let f = figure10(study, &[1.0, 6.0], 0.3, Watts::new(2.0)).expect("fig 10");
    println!(
        "[fig10] at 6 mW: gradient {:.2} -> {:.2} C (paper 5.8 -> 1.3), avg +{:.2} C (paper +0.8)",
        f.gradient_without_c[1],
        f.gradient_with_c[1],
        f.average_with_c[1] - f.average_without_c[1]
    );

    c.bench_function("fig10_regeneration", |bench| {
        bench.iter(|| {
            figure10(study, std::hint::black_box(&[1.0, 6.0]), 0.3, Watts::new(2.0))
                .expect("regenerates")
        })
    });

    // The heater optimization itself (golden-section over composes).
    c.bench_function("heater_exploration", |bench| {
        bench.iter(|| {
            study
                .explore_heater(
                    Watts::from_milliwatts(std::hint::black_box(4.0)),
                    Watts::new(2.0),
                    1.0,
                    5,
                )
                .expect("explores")
        })
    });
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
