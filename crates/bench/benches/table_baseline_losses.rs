//! Bench + regeneration of the §III-A crossbar loss comparison (E9).

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_core::experiments::baseline_comparison;

fn bench_baselines(c: &mut Criterion) {
    let b = baseline_comparison(16).expect("comparison at 4x4");
    println!(
        "[baselines] ORNoC reduction at 16 nodes: worst-case {:.1}% (paper 42.5%), \
         average {:.1}% (paper 38%)",
        b.worst_case_reduction * 100.0,
        b.average_reduction * 100.0
    );
    for (name, worst, avg) in &b.losses_db {
        println!("[baselines]   {name:>14}: worst {worst:.2} dB, avg {avg:.2} dB");
    }

    c.bench_function("baseline_comparison_sweep", |bench| {
        bench.iter(|| {
            for n in [4usize, 8, 16, 32, 64, 128] {
                baseline_comparison(std::hint::black_box(n)).expect("scales");
            }
        })
    });
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
