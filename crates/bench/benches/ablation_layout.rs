//! Ablation: the paper's chessboard ONI layout vs a clustered layout
//! (Section III-B's design argument).

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_arch::{OniLayout, SccConfig};
use vcsel_core::ThermalStudy;
use vcsel_thermal::Simulator;
use vcsel_units::Watts;

fn study_for(layout: OniLayout) -> ThermalStudy {
    ThermalStudy::new(SccConfig { layout, ..SccConfig::tiny_test() }, &Simulator::new())
        .expect("study builds")
}

fn studies() -> &'static (ThermalStudy, ThermalStudy) {
    static STUDIES: OnceLock<(ThermalStudy, ThermalStudy)> = OnceLock::new();
    STUDIES.get_or_init(|| (study_for(OniLayout::Chessboard), study_for(OniLayout::Clustered)))
}

fn bench_layouts(c: &mut Criterion) {
    let (chess, clustered) = studies();
    let p_vcsel = Watts::from_milliwatts(4.0);
    let chip = Watts::new(2.0);

    let g_chess = chess.evaluate(p_vcsel, Watts::ZERO, chip).expect("chess").worst_gradient();
    let g_clustered =
        clustered.evaluate(p_vcsel, Watts::ZERO, chip).expect("clustered").worst_gradient();
    let opt_chess = chess.explore_heater(p_vcsel, chip, 1.0, 5).expect("chess opt");
    let opt_clustered = clustered.explore_heater(p_vcsel, chip, 1.0, 5).expect("clustered opt");
    println!(
        "[ablation/layout] gradient w/o heater: chessboard {:.3} C vs clustered {:.3} C",
        g_chess.value(),
        g_clustered.value()
    );
    println!(
        "[ablation/layout] optimal heater: chessboard ratio {:.2} -> {:.3} C, \
         clustered ratio {:.2} -> {:.3} C",
        opt_chess.optimal_ratio,
        opt_chess.optimal_gradient.value(),
        opt_clustered.optimal_ratio,
        opt_clustered.optimal_gradient.value()
    );

    let mut group = c.benchmark_group("layout_ablation");
    group.bench_function("chessboard_point", |b| {
        b.iter(|| chess.evaluate(p_vcsel, Watts::ZERO, std::hint::black_box(chip)).unwrap())
    });
    group.bench_function("clustered_point", |b| {
        b.iter(|| clustered.evaluate(p_vcsel, Watts::ZERO, std::hint::black_box(chip)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
