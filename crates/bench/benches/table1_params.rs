//! Bench + regeneration of Table 1 (E8): the technology-parameter bundle
//! and the device prototypes derived from it.

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_photonics::{MicroringResonator, Photodetector, TechnologyParams, Waveguide};
use vcsel_units::Nanometers;

fn bench_table1(c: &mut Criterion) {
    let t = TechnologyParams::paper();
    println!("[table1]\n{t}");

    c.bench_function("table1_device_prototypes", |b| {
        b.iter(|| {
            let t = TechnologyParams::paper();
            let ring = MicroringResonator::paper_default(std::hint::black_box(t.center_wavelength));
            let pd = Photodetector::paper_default();
            let wg = Waveguide::paper_default();
            (ring.drop_fraction(Nanometers::new(0.775)), pd.sensitivity(), wg.propagation_loss())
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
