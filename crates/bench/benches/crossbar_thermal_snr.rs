//! Extension bench: path-level thermal-SNR comparison of the four
//! crossbar topologies (extends experiment E9 beyond static loss).

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_network::baselines::{CrossbarTopology, LossCoefficients};
use vcsel_network::{all_pairs, CrossbarInstance, WavelengthGrid};
use vcsel_units::{Celsius, Watts};

fn bench_crossbar_snr(c: &mut Criterion) {
    let n = 8;
    let pairs = all_pairs(n);
    let powers = vec![Watts::from_milliwatts(0.3); pairs.len()];
    let aligned = vec![Celsius::new(52.0); n];
    let skewed: Vec<Celsius> = (0..n).map(|i| Celsius::new(52.0 + 0.9 * i as f64)).collect();

    println!("[crossbar-snr] {n}-node all-to-all, worst-case SNR (dB):");
    for topo in CrossbarTopology::all() {
        let xbar = CrossbarInstance::new(
            topo,
            n,
            LossCoefficients::standard(),
            WavelengthGrid::paper_default(),
        )
        .expect("valid instance");
        let a = xbar.analyze(&pairs, &aligned, &powers).expect("aligned");
        let s = xbar.analyze(&pairs, &skewed, &powers).expect("skewed");
        println!(
            "[crossbar-snr]   {:>14}: aligned {:>6.2}, skewed {:>6.2}, degradation {:>5.2}",
            topo.name(),
            a.worst_snr_db(),
            s.worst_snr_db(),
            a.worst_snr_db() - s.worst_snr_db()
        );
    }

    let matrix = CrossbarInstance::new(
        CrossbarTopology::Matrix,
        n,
        LossCoefficients::standard(),
        WavelengthGrid::paper_default(),
    )
    .expect("valid instance");
    c.bench_function("crossbar_matrix_analyze_8", |bench| {
        bench.iter(|| {
            matrix
                .analyze(
                    std::hint::black_box(&pairs),
                    std::hint::black_box(&skewed),
                    std::hint::black_box(&powers),
                )
                .expect("analyzes")
        })
    });
}

criterion_group!(benches, bench_crossbar_snr);
criterion_main!(benches);
