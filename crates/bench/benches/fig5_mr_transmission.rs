//! Regenerates Figure 5-b: microring drop/through transmission vs the
//! signal-resonance misalignment, with the 50 % crossover at ±0.77 nm.

use criterion::{criterion_group, criterion_main, Criterion};
use vcsel_photonics::MicroringResonator;
use vcsel_units::Nanometers;

fn bench_mr_transmission(c: &mut Criterion) {
    let mr = MicroringResonator::paper_default(Nanometers::new(1550.0));

    println!("[fig5b] detuning (nm) -> drop %, through %");
    for milli_nm in (-2000i32..=2000).step_by(250) {
        let d = Nanometers::new(f64::from(milli_nm) / 1000.0);
        println!(
            "[fig5b] {:>6.3} -> {:>5.1} %, {:>5.1} %",
            d.value(),
            100.0 * mr.drop_fraction(d),
            100.0 * mr.through_fraction(d)
        );
    }
    let half = mr.drop_fraction(Nanometers::new(0.775));
    println!(
        "[fig5b] drop at +-0.775 nm = {:.1} % (paper: 50 % at 0.77 nm / 7.7 °C)",
        100.0 * half
    );

    c.bench_function("mr_drop_fraction", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for k in 0..1000 {
                acc += mr.drop_fraction(std::hint::black_box(Nanometers::new(k as f64 * 0.004)));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_mr_transmission);
criterion_main!(benches);
