//! Trace export: `chrome://tracing` / Perfetto JSON and the human summary
//! table.
//!
//! The JSON writer is hand-rolled (this crate is dependency-free) and
//! emits the Trace Event Format's JSON-object flavor: a top-level
//! `"traceEvents"` array of duration (`"ph": "X"`), instant (`"ph": "i"`)
//! and counter (`"ph": "C"`) events with microsecond `"ts"`/`"dur"`
//! fields. Solve samples export as `"solve_sample"` instant events whose
//! `"args"` carry the full metric record — residual histories included —
//! so one trace file holds both the timeline and the per-solve numerics.

use std::fmt::Write as _;

use crate::ring::{ArgValue, Event, EventKind};
use crate::SolveSample;

/// Everything drained from a sink: events (sorted by start time), solve
/// samples, and the count of ring-overflow drops.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceData {
    /// Span / instant / counter events, oldest first.
    pub events: Vec<Event>,
    /// Per-solve metric samples, in recording order.
    pub samples: Vec<SolveSample>,
    /// Events lost to ring overflow (oldest-dropped).
    pub dropped: u64,
}

impl TraceData {
    /// The timeline extent `[min ts, max ts+dur]` over all events and
    /// samples, in nanoseconds — the "measured wall-clock" that span
    /// coverage is judged against. `None` when the trace is empty.
    pub fn extent_ns(&self) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for ev in &self.events {
            lo = lo.min(ev.start_ns);
            hi = hi.max(ev.start_ns.saturating_add(ev.dur_ns));
        }
        for s in &self.samples {
            lo = lo.min(s.start_ns);
            hi = hi.max(s.start_ns.saturating_add(s.dur_ns));
        }
        (lo <= hi && (!self.events.is_empty() || !self.samples.is_empty())).then_some((lo, hi))
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON has no NaN/Infinity; map them to `null` rather than emit an
/// unparsable file.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_micros(out: &mut String, ns: u64) {
    // Microseconds with nanosecond precision kept as decimals.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_arg_value(out: &mut String, value: &ArgValue) {
    match value {
        ArgValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        ArgValue::F64(v) => push_f64(out, *v),
        ArgValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn push_event(out: &mut String, ev: &Event) {
    out.push_str("{\"name\":\"");
    escape_into(out, ev.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, ev.cat);
    out.push_str("\",\"ph\":\"");
    out.push_str(match ev.kind {
        EventKind::Span => "X",
        EventKind::Instant => "i",
        EventKind::Counter => "C",
    });
    out.push_str("\",\"ts\":");
    push_micros(out, ev.start_ns);
    if ev.kind == EventKind::Span {
        out.push_str(",\"dur\":");
        push_micros(out, ev.dur_ns);
    }
    if ev.kind == EventKind::Instant {
        // Instant scope: thread-local marker.
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"pid\":1,\"tid\":{}", ev.tid);
    let args: Vec<_> = ev.args.iter().flatten().collect();
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, arg) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(out, arg.key);
            out.push_str("\":");
            push_arg_value(out, &arg.value);
        }
        out.push('}');
    }
    out.push('}');
}

fn push_sample(out: &mut String, s: &SolveSample) {
    out.push_str("{\"name\":\"solve_sample\",\"cat\":\"");
    escape_into(out, s.cat);
    out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
    // Stamp the sample at the solve's *end* so it sits inside the solve
    // span even when the span opened before the sample was assembled.
    push_micros(out, s.start_ns.saturating_add(s.dur_ns));
    out.push_str(",\"pid\":1,\"tid\":1,\"args\":{\"label\":\"");
    escape_into(out, &s.label);
    out.push_str("\",\"solver\":\"");
    escape_into(out, s.solver);
    let _ = write!(
        out,
        "\",\"unknowns\":{},\"iterations\":{},\"total_iterations\":{},\"escalations\":{},\
         \"converged\":{},\"spmv\":{},\"precond_applies\":{},\"vcycles\":{},\"trisolves\":{}",
        s.unknowns,
        s.iterations,
        s.total_iterations,
        s.escalations,
        s.converged,
        s.spmv,
        s.precond_applies,
        s.vcycles,
        s.trisolves,
    );
    out.push_str(",\"duration_ms\":");
    push_f64(out, s.dur_ns as f64 / 1e6);
    out.push_str(",\"residual\":");
    push_f64(out, s.residual);
    out.push_str(",\"initial_residual\":");
    push_f64(out, s.initial_residual);
    out.push_str(",\"residuals\":[");
    for (i, r) in s.residual_history.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *r);
    }
    out.push_str("],\"attempts\":[");
    for (i, a) in s.attempts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rung\":\"");
        escape_into(out, a.rung);
        out.push_str("\",\"outcome\":\"");
        escape_into(out, a.outcome);
        let _ = write!(out, "\",\"iterations\":{},\"residual\":", a.iterations);
        push_f64(out, a.residual);
        out.push('}');
    }
    out.push_str("]}}");
}

/// Renders `data` as a chrome-trace JSON document (the
/// `chrome://tracing` / Perfetto "JSON object format").
pub fn chrome_trace_json(data: &TraceData) -> String {
    let mut out = String::with_capacity(256 + 256 * (data.events.len() + data.samples.len()));
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"producer\":\"vcsel_telemetry\"");
    let _ = write!(out, ",\"dropped_events\":{}", data.dropped);
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    for ev in &data.events {
        if !first {
            out.push(',');
        }
        first = false;
        push_event(&mut out, ev);
    }
    for s in &data.samples {
        if !first {
            out.push(',');
        }
        first = false;
        push_sample(&mut out, s);
    }
    out.push_str("]}");
    out
}

/// Renders `data` as a human summary: per-span-name aggregates, counter
/// last-values, and a one-line solve digest. This is what
/// `VCSEL_TRACE=summary` prints.
pub fn summary_table(data: &TraceData) -> String {
    let mut out = String::new();
    let wall_ms = data.extent_ns().map_or(0.0, |(lo, hi)| (hi - lo) as f64 / 1e6);
    let _ = writeln!(
        out,
        "telemetry: {} event(s), {} solve sample(s), {} dropped, {:.1} ms traced",
        data.events.len(),
        data.samples.len(),
        data.dropped,
        wall_ms,
    );

    // Per-name span aggregates, ordered by total time.
    let mut rows: Vec<(&str, &str, u64, u64, u64)> = Vec::new();
    for ev in data.events.iter().filter(|e| e.kind == EventKind::Span) {
        match rows.iter_mut().find(|r| r.0 == ev.name && r.1 == ev.cat) {
            Some(row) => {
                row.2 += 1;
                row.3 += ev.dur_ns;
                row.4 = row.4.max(ev.dur_ns);
            }
            None => rows.push((ev.name, ev.cat, 1, ev.dur_ns, ev.dur_ns)),
        }
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.3));
    if !rows.is_empty() {
        let _ = writeln!(
            out,
            "  {:<28} {:>7} {:>12} {:>12} {:>12}",
            "span (cat/name)", "count", "total ms", "mean ms", "max ms"
        );
        for (name, cat, count, total, max) in &rows {
            let _ = writeln!(
                out,
                "  {:<28} {:>7} {:>12.3} {:>12.3} {:>12.3}",
                format!("{cat}/{name}"),
                count,
                *total as f64 / 1e6,
                *total as f64 / 1e6 / *count as f64,
                *max as f64 / 1e6,
            );
        }
    }

    // Latest value of each counter track.
    let mut counters: Vec<(&str, f64)> = Vec::new();
    for ev in data.events.iter().filter(|e| e.kind == EventKind::Counter) {
        let value = match ev.args[0] {
            Some(arg) => match arg.value {
                ArgValue::F64(v) => v,
                ArgValue::U64(v) => v as f64,
                _ => continue,
            },
            None => continue,
        };
        match counters.iter_mut().find(|c| c.0 == ev.name) {
            Some(c) => c.1 = value,
            None => counters.push((ev.name, value)),
        }
    }
    for (name, value) in &counters {
        let _ = writeln!(out, "  counter {name} = {value:.3}");
    }

    if !data.samples.is_empty() {
        let solves = data.samples.len();
        let converged = data.samples.iter().filter(|s| s.converged).count();
        let iters: u64 = data.samples.iter().map(|s| s.total_iterations).sum();
        let escalations: u64 = data.samples.iter().map(|s| s.escalations).sum();
        let warm: Vec<f64> =
            data.samples.iter().map(|s| s.initial_residual).filter(|r| r.is_finite()).collect();
        let _ = write!(
            out,
            "  solves: {solves} ({converged} converged), {iters} CG iteration(s), \
             {escalations} escalation(s)"
        );
        if !warm.is_empty() {
            let mean = warm.iter().sum::<f64>() / warm.len() as f64;
            let _ = write!(out, ", mean initial residual {mean:.3e}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Arg;
    use crate::AttemptSample;

    fn span(name: &'static str, start: u64, dur: u64) -> Event {
        let mut e = Event::new(EventKind::Span, "test", name);
        e.start_ns = start;
        e.dur_ns = dur;
        e.tid = 1;
        e
    }

    fn sample() -> SolveSample {
        SolveSample {
            label: "steady/\"quoted\"".into(),
            solver: "ic0",
            start_ns: 1_000,
            dur_ns: 9_000,
            unknowns: 100,
            iterations: 12,
            total_iterations: 12,
            converged: true,
            residual: 1e-10,
            initial_residual: 1.0,
            residual_history: vec![1.0, 0.1, 1e-10],
            attempts: vec![AttemptSample {
                rung: "ic0",
                iterations: 12,
                residual: 1e-10,
                outcome: "converged",
            }],
            spmv: 13,
            precond_applies: 13,
            trisolves: 26,
            ..SolveSample::default()
        }
    }

    #[test]
    fn json_contains_spans_instants_counters_and_samples() {
        let mut data = TraceData::default();
        data.events.push(span("root", 0, 10_000));
        let mut i = Event::new(EventKind::Instant, "solver", "escalation")
            .with_args(&[Arg::str("from", "ic0"), Arg::u64("step", 3)]);
        i.start_ns = 5_000;
        i.tid = 1;
        data.events.push(i);
        let mut c = Event::new(EventKind::Counter, "process", "peak_rss_mb")
            .with_args(&[Arg::f64("value", 12.5)]);
        c.start_ns = 9_000;
        data.events.push(c);
        data.samples.push(sample());

        let json = chrome_trace_json(&data);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"root\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":0.000"));
        assert!(json.contains("\"dur\":10.000"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"from\":\"ic0\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":12.5"));
        assert!(json.contains("\"solve_sample\""));
        assert!(json.contains("\"residuals\":[1,0.1,0.0000000001]"));
        assert!(json.contains("\"label\":\"steady/\\\"quoted\\\"\""));
        assert!(json.contains("\"outcome\":\"converged\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut data = TraceData::default();
        data.samples.push(SolveSample {
            residual: f64::INFINITY,
            initial_residual: f64::NAN,
            ..SolveSample::default()
        });
        let json = chrome_trace_json(&data);
        assert!(json.contains("\"residual\":null"));
        assert!(json.contains("\"initial_residual\":null"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn extent_spans_events_and_samples() {
        let mut data = TraceData::default();
        assert_eq!(data.extent_ns(), None);
        data.events.push(span("a", 2_000, 3_000));
        data.samples.push(SolveSample { start_ns: 1_000, dur_ns: 9_000, ..SolveSample::default() });
        assert_eq!(data.extent_ns(), Some((1_000, 10_000)));
    }

    #[test]
    fn summary_table_aggregates_spans() {
        let mut data = TraceData::default();
        data.events.push(span("step", 0, 2_000_000));
        data.events.push(span("step", 3_000_000, 4_000_000));
        data.samples.push(sample());
        let table = summary_table(&data);
        assert!(table.contains("test/step"), "table:\n{table}");
        assert!(table.contains("2 "), "count column:\n{table}");
        assert!(table.contains("solves: 1 (1 converged), 12 CG iteration(s)"));
    }
}
