//! Spans, solver metrics and chrome-trace export for the vcsel-onoc solve
//! stack — dependency-free on purpose.
//!
//! The solve engines (`SolveContext`, `TransientStepper`, `SolveLadder`,
//! `MultigridHierarchy`, the scenario engine) each hold a [`TelemetrySink`]
//! handle. A **disabled** sink is a `None` inside an `Option` — every
//! recording call bails on that single branch, allocates nothing and makes
//! no syscall, which is what lets the handle live on registered hot paths
//! (lint.toml rule 3) and keep the on/off bitwise-identity contract. An
//! **enabled** sink records:
//!
//! * **spans** — RAII [`SpanGuard`]s with nanosecond [`Instant`] timing,
//!   stamped with a per-thread id and pushed into per-thread-shard
//!   [`EventRing`]s (fixed capacity, oldest-dropped, counted),
//! * **instants / counters** — ladder escalations, scenario remaps, peak
//!   RSS snapshots,
//! * **[`SolveSample`]s** — per-solve CG iteration / SpMV / V-cycle /
//!   triangular-solve counts, rung attempts, warm-start quality and (in
//!   full mode) whole residual histories.
//!
//! Everything drains through [`TelemetrySink::drain`] into a
//! [`TraceData`], exportable as a human summary table or a
//! `chrome://tracing` / Perfetto JSON file (see [`export`]).
//!
//! # Process-wide sink
//!
//! [`global`] resolves once from the environment: `VCSEL_TRACE=off|summary|
//! full` picks the mode, `VCSEL_TRACE_DIR` the trace directory (default
//! `reports/traces`), and the legacy `MG_DEBUG` is an alias for a
//! multigrid-scoped full trace with the historical stderr lines mirrored.
//! Engines default to the global sink; tests inject their own with the
//! engines' `set_telemetry` hooks so parallel tests never share state.

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

pub mod export;
mod metrics;
pub mod ring;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

pub use export::TraceData;
pub use metrics::{peak_rss_mb, AttemptSample, SolveSample};
pub use ring::{Arg, ArgValue, Event, EventKind, EventRing, MAX_ARGS};

/// Ring shards per sink; threads map to shards by `tid % SHARDS`, so
/// concurrent recorders contend only on hash collisions.
const SHARDS: usize = 8;

/// Default per-shard ring capacity (events). Shard rings are allocated
/// lazily on each shard's first event, so idle shards cost nothing.
const DEFAULT_RING_CAPACITY: usize = 16_384;

// --- clock & thread ids -------------------------------------------------

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace anchor (the first telemetry
/// timestamp taken). Monotonic within a process; the shared anchor lets
/// events from different sinks land on one coherent timeline.
pub fn now_ns() -> u64 {
    let elapsed = ANCHOR.get_or_init(Instant::now).elapsed();
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

// ORDER: pure id allocation — each thread takes a unique value once; no
// other memory is published through this counter.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // ORDER: see NEXT_THREAD_ID — unique id allocation only.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's telemetry id: small, dense, assigned on first use (the
/// main thread is usually 1). Exported as the chrome-trace `tid`.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

// --- modes & sink -------------------------------------------------------

/// How much an enabled sink records and exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; every call is a single branch.
    Off,
    /// Record spans, counters and solve samples; export only the human
    /// summary table (no trace file, no residual histories).
    Summary,
    /// Record everything including residual histories; export the summary
    /// table *and* the chrome-trace JSON.
    Full,
}

impl TraceMode {
    /// Parses a `VCSEL_TRACE` value (`off` / `summary` / `full`,
    /// case-insensitive).
    pub fn parse(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(Self::Off),
            "summary" => Some(Self::Summary),
            "full" | "1" => Some(Self::Full),
            _ => None,
        }
    }
}

struct SinkInner {
    mode: TraceMode,
    /// When set, only events of this category are recorded (the `MG_DEBUG`
    /// alias scopes the sink to `"multigrid"`).
    scope: Option<&'static str>,
    /// Mirror the legacy `MG_DEBUG` stderr lines from the multigrid build.
    mg_mirror: bool,
    ring_capacity: usize,
    shards: [Mutex<Option<EventRing>>; SHARDS],
    samples: Mutex<Vec<SolveSample>>,
}

/// A cloneable handle to a telemetry buffer, or a no-op.
///
/// Cloning shares the buffer (the handle is an `Arc` internally), so an
/// engine and the exporter see the same events. The disabled sink is the
/// `Default` and costs one branch per recording call.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<SinkInner>>,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("TelemetrySink(off)"),
            Some(inner) => f
                .debug_struct("TelemetrySink")
                .field("mode", &inner.mode)
                .field("scope", &inner.scope)
                .finish_non_exhaustive(),
        }
    }
}

/// Locks a mutex, treating poison as recoverable: telemetry data is
/// diagnostics, and a panic on another thread must not cascade here.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lazily materializes a shard's ring. Lives outside the registered
/// [`TelemetrySink::record_event`] hot path so the one-time allocation is
/// visible setup cost, not a hot-path allocation.
fn shard_ring(slot: &mut Option<EventRing>, capacity: usize) -> &mut EventRing {
    slot.get_or_insert_with(|| EventRing::with_capacity(capacity))
}

impl TelemetrySink {
    /// The no-op sink: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled sink with default ring capacity. `TraceMode::Off` yields
    /// the disabled sink.
    pub fn new(mode: TraceMode) -> Self {
        Self::with_ring_capacity(mode, DEFAULT_RING_CAPACITY)
    }

    /// An enabled sink whose per-thread-shard rings hold `capacity` events
    /// each (tests use tiny rings to exercise overflow).
    pub fn with_ring_capacity(mode: TraceMode, capacity: usize) -> Self {
        Self::build(mode, None, false, capacity)
    }

    fn build(
        mode: TraceMode,
        scope: Option<&'static str>,
        mg_mirror: bool,
        capacity: usize,
    ) -> Self {
        if mode == TraceMode::Off {
            return Self::disabled();
        }
        Self {
            inner: Some(Arc::new(SinkInner {
                mode,
                scope,
                mg_mirror,
                ring_capacity: capacity.max(1),
                shards: std::array::from_fn(|_| Mutex::new(None)),
                samples: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A sink resolved from the process environment: `VCSEL_TRACE` picks
    /// the mode; a set `MG_DEBUG` with no `VCSEL_TRACE` is the legacy
    /// alias — a full-mode sink scoped to the `"multigrid"` category with
    /// the historical stderr lines mirrored.
    pub fn from_env() -> Self {
        let mg_debug = std::env::var_os("MG_DEBUG").is_some();
        match std::env::var("VCSEL_TRACE") {
            Ok(value) => match TraceMode::parse(&value) {
                Some(mode) => Self::build(mode, None, mg_debug, DEFAULT_RING_CAPACITY),
                None => {
                    eprintln!(
                        "telemetry: unknown VCSEL_TRACE value '{value}' \
                         (expected off, summary or full) — tracing disabled"
                    );
                    Self::disabled()
                }
            },
            Err(_) if mg_debug => {
                Self::build(TraceMode::Full, Some("multigrid"), true, DEFAULT_RING_CAPACITY)
            }
            Err(_) => Self::disabled(),
        }
    }

    /// Whether the sink records anything at all — the single branch a hot
    /// path pays when tracing is off.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sink's mode ([`TraceMode::Off`] for a disabled sink).
    pub fn mode(&self) -> TraceMode {
        self.inner.as_ref().map_or(TraceMode::Off, |inner| inner.mode)
    }

    /// The category filter, if the sink is scoped (the `MG_DEBUG` alias).
    pub fn scope(&self) -> Option<&'static str> {
        self.inner.as_ref().and_then(|inner| inner.scope)
    }

    /// Whether residual histories should be captured for this sink
    /// (full mode only — histories are the bulkiest metric).
    pub fn capture_residuals(&self) -> bool {
        self.mode() == TraceMode::Full && self.scope().is_none()
    }

    /// Whether the multigrid build should mirror its legacy `MG_DEBUG`
    /// stderr lines.
    pub fn mg_debug_mirror(&self) -> bool {
        self.inner.as_ref().is_some_and(|inner| inner.mg_mirror)
    }

    /// Opens a span: the guard stamps its start now and records a
    /// [`EventKind::Span`] event when dropped. Disabled (or out-of-scope)
    /// sinks return a disarmed guard.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard {
        let armed = match &self.inner {
            Some(inner) => inner.scope.is_none_or(|scope| scope == cat),
            None => false,
        };
        SpanGuard {
            sink: if armed { self.clone() } else { Self::disabled() },
            event: Event::new(EventKind::Span, cat, name),
            start: if armed { Some((Instant::now(), now_ns())) } else { None },
        }
    }

    /// Records a point-in-time marker with arguments.
    pub fn instant(&self, cat: &'static str, name: &'static str, args: &[Arg]) {
        if self.inner.is_none() {
            return;
        }
        let mut ev = Event::new(EventKind::Instant, cat, name).with_args(args);
        ev.start_ns = now_ns();
        ev.tid = thread_id();
        self.record_event(ev);
    }

    /// Records a sampled counter value (exported as a chrome-trace `"C"`
    /// event, which Perfetto renders as a track).
    pub fn counter(&self, cat: &'static str, name: &'static str, value: f64) {
        if self.inner.is_none() {
            return;
        }
        let mut ev =
            Event::new(EventKind::Counter, cat, name).with_args(&[Arg::f64("value", value)]);
        ev.start_ns = now_ns();
        ev.tid = thread_id();
        self.record_event(ev);
    }

    /// Records a peak-RSS counter snapshot named `name` (no-op where
    /// procfs is unavailable).
    pub fn rss_snapshot(&self, cat: &'static str, name: &'static str) {
        if self.inner.is_none() {
            return;
        }
        if let Some(mb) = peak_rss_mb() {
            self.counter(cat, name, mb);
        }
    }

    /// Pushes a finished event into the recording thread's ring shard.
    /// Registered as a hot path (lint.toml): one branch when disabled; an
    /// uncontended shard lock and a `Copy` store when enabled.
    pub fn record_event(&self, ev: Event) {
        let Some(inner) = self.inner.as_deref() else { return };
        if let Some(scope) = inner.scope {
            if scope != ev.cat {
                return;
            }
        }
        let shard = usize::try_from(ev.tid).unwrap_or(0) % SHARDS;
        let mut slot = lock_unpoisoned(&inner.shards[shard]);
        shard_ring(&mut slot, inner.ring_capacity).push(ev);
    }

    /// Records a per-solve metric sample (cold path, once per solve).
    pub fn record_sample(&self, sample: SolveSample) {
        let Some(inner) = self.inner.as_deref() else { return };
        if inner.scope.is_some_and(|scope| scope != sample.cat) {
            return;
        }
        lock_unpoisoned(&inner.samples).push(sample);
    }

    /// Events overwritten across all shards because a ring was full.
    pub fn dropped(&self) -> u64 {
        let Some(inner) = self.inner.as_deref() else { return 0 };
        inner
            .shards
            .iter()
            .map(|shard| lock_unpoisoned(shard).as_ref().map_or(0, EventRing::dropped))
            .sum()
    }

    /// Drains every shard and the sample list into a [`TraceData`] with
    /// events sorted by start time. The sink stays usable afterwards.
    pub fn drain(&self) -> TraceData {
        let mut data = TraceData::default();
        let Some(inner) = self.inner.as_deref() else { return data };
        for shard in &inner.shards {
            let mut slot = lock_unpoisoned(shard);
            if let Some(ring) = slot.as_mut() {
                data.dropped += ring.dropped();
                ring.drain_into(&mut data.events);
            }
        }
        data.events.sort_by_key(|ev| ev.start_ns);
        data.samples = std::mem::take(&mut *lock_unpoisoned(&inner.samples));
        data
    }
}

/// RAII span: created by [`TelemetrySink::span`], records one
/// [`EventKind::Span`] event (start, duration, thread, args) on drop.
/// Chrome trace viewers nest same-thread spans by time containment, so
/// hierarchy falls out of lexical nesting with no extra bookkeeping.
#[derive(Debug)]
pub struct SpanGuard {
    sink: TelemetrySink,
    event: Event,
    /// `Some((wall_timer, anchor_ns))` when armed; `None` guards record
    /// nothing on drop.
    start: Option<(Instant, u64)>,
}

impl SpanGuard {
    /// Attaches a `key = value` argument to the span (up to
    /// [`MAX_ARGS`]; extras are dropped). No-op on a disarmed guard.
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        if self.start.is_none() {
            return;
        }
        for slot in &mut self.event.args {
            if slot.is_none() {
                *slot = Some(Arg { key, value });
                return;
            }
        }
    }

    /// Whether this guard will record an event on drop.
    pub fn is_armed(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((timer, start_ns)) = self.start.take() else { return };
        let mut ev = self.event;
        ev.start_ns = start_ns;
        ev.dur_ns = u64::try_from(timer.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ev.tid = thread_id();
        self.sink.record_event(ev);
    }
}

// --- process-wide sink & export ----------------------------------------

static GLOBAL: OnceLock<TelemetrySink> = OnceLock::new();

/// The process-wide sink, resolved from `VCSEL_TRACE` / `MG_DEBUG` on
/// first use (see [`TelemetrySink::from_env`]). Engines capture it by
/// default; tests should inject their own sinks instead of relying on the
/// global one, which is shared and environment-dependent.
pub fn global() -> &'static TelemetrySink {
    GLOBAL.get_or_init(TelemetrySink::from_env)
}

/// The directory trace files land in: `VCSEL_TRACE_DIR`, defaulting to
/// `reports/traces`.
pub fn trace_dir() -> std::path::PathBuf {
    match std::env::var_os("VCSEL_TRACE_DIR") {
        Some(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => std::path::PathBuf::from("reports").join("traces"),
    }
}

/// Finishes a traced run: snapshots peak RSS, drains `sink`, prints the
/// summary table to stderr, and — in full (unscoped) mode — writes
/// `<trace_dir>/<label>.trace.json` and returns its path.
///
/// Call after the root span guard has dropped, or the root span will be
/// missing from its own trace.
pub fn finish(sink: &TelemetrySink, label: &str) -> Option<std::path::PathBuf> {
    if !sink.is_enabled() {
        return None;
    }
    sink.rss_snapshot("process", "peak_rss_mb");
    let data = sink.drain();
    eprintln!("{}", export::summary_table(&data));
    if sink.mode() != TraceMode::Full || sink.scope().is_some() {
        return None;
    }
    let dir = trace_dir();
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("telemetry: cannot create {}: {err}", dir.display());
        return None;
    }
    let safe: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    let path = dir.join(format!("{safe}.trace.json"));
    match std::fs::write(&path, export::chrome_trace_json(&data)) {
        Ok(()) => {
            eprintln!("telemetry: wrote {}", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("telemetry: cannot write {}: {err}", path.display());
            None
        }
    }
}

/// [`finish`] applied to the [`global`] sink — the one-liner the report
/// binaries call after their root span closes.
pub fn finish_global(label: &str) -> Option<std::path::PathBuf> {
    finish(global(), label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        assert_eq!(sink.mode(), TraceMode::Off);
        {
            let mut guard = sink.span("test", "root");
            assert!(!guard.is_armed());
            guard.arg("k", ArgValue::U64(1));
        }
        sink.instant("test", "marker", &[]);
        sink.counter("test", "c", 1.0);
        sink.record_sample(SolveSample::default());
        let data = sink.drain();
        assert!(data.events.is_empty() && data.samples.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn off_mode_is_the_disabled_sink() {
        assert!(!TelemetrySink::new(TraceMode::Off).is_enabled());
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let sink = TelemetrySink::new(TraceMode::Full);
        {
            let _outer = sink.span("test", "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let mut inner = sink.span("test", "inner");
            inner.arg("iterations", ArgValue::U64(7));
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let data = sink.drain();
        assert_eq!(data.events.len(), 2);
        // Sorted by start: outer opened first.
        let (outer, inner) = (&data.events[0], &data.events[1]);
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.name, "inner");
        assert!(outer.start_ns <= inner.start_ns);
        // Containment: the inner span lies inside the outer one (how
        // chrome-trace viewers derive nesting).
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        assert!(outer.dur_ns >= 4_000_000, "outer span must cover both sleeps");
        assert_eq!(inner.args[0], Some(Arg::u64("iterations", 7)));
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn scoped_sink_filters_by_category() {
        let sink = TelemetrySink::build(TraceMode::Full, Some("multigrid"), true, 64);
        assert!(sink.mg_debug_mirror());
        assert!(!sink.capture_residuals(), "scoped alias must not bulk up solves");
        sink.instant("solver", "escalation", &[]);
        sink.instant("multigrid", "level", &[Arg::u64("cells", 10)]);
        {
            let _ignored = sink.span("thermal", "steady_solve");
            let _kept = sink.span("multigrid", "build");
        }
        let data = sink.drain();
        let names: Vec<&str> = data.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["level", "build"]);
    }

    #[test]
    fn drain_empties_but_sink_stays_usable() {
        let sink = TelemetrySink::new(TraceMode::Summary);
        sink.instant("test", "one", &[]);
        assert_eq!(sink.drain().events.len(), 1);
        sink.instant("test", "two", &[]);
        let again = sink.drain();
        assert_eq!(again.events.len(), 1);
        assert_eq!(again.events[0].name, "two");
    }

    #[test]
    fn ring_overflow_is_counted_through_the_sink() {
        let sink = TelemetrySink::with_ring_capacity(TraceMode::Full, 4);
        for _ in 0..10 {
            sink.instant("test", "tick", &[]);
        }
        assert_eq!(sink.dropped(), 6);
        let data = sink.drain();
        assert_eq!(data.events.len(), 4);
        assert_eq!(data.dropped, 6);
    }

    #[test]
    fn samples_round_trip_through_drain() {
        let sink = TelemetrySink::new(TraceMode::Full);
        let sample = SolveSample {
            label: "steady/test".into(),
            iterations: 42,
            converged: true,
            residual: 1e-10,
            initial_residual: 1.0,
            ..SolveSample::default()
        };
        sink.record_sample(sample.clone());
        let data = sink.drain();
        assert_eq!(data.samples, vec![sample]);
    }

    #[test]
    fn trace_mode_parses_the_documented_values() {
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse("SUMMARY"), Some(TraceMode::Summary));
        assert_eq!(TraceMode::parse("full"), Some(TraceMode::Full));
        assert_eq!(TraceMode::parse("verbose"), None);
    }

    #[test]
    fn thread_ids_are_distinct_across_threads() {
        let mine = thread_id();
        let theirs = std::thread::spawn(thread_id).join().expect("thread id probe");
        assert_ne!(mine, theirs);
        assert_eq!(mine, thread_id(), "ids are stable within a thread");
    }
}
