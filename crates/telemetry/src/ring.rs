//! Fixed-capacity event ring buffers — the storage behind
//! [`TelemetrySink`](crate::TelemetrySink).
//!
//! Every recorded span, instant and counter is a plain-old-data [`Event`]
//! (`Copy`, fixed-size argument slots, `&'static str` names) so pushing one
//! into an [`EventRing`] moves a few hundred bytes and touches no
//! allocator. The ring overwrites its **oldest** entry when full and counts
//! every overwrite, so a run that outgrows the buffer loses its earliest
//! events — never its most recent ones — and the export can say exactly how
//! many were shed.

/// Fixed number of argument slots on an [`Event`]. Keeping the slot count
/// small keeps events `Copy` and ring pushes allocation-free; richer
/// payloads (residual histories, rung attempts) travel as
/// [`SolveSample`](crate::SolveSample)s outside the ring.
pub const MAX_ARGS: usize = 4;

/// One typed argument value attached to an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer payload (iteration counts, sizes, seeds).
    U64(u64),
    /// Floating-point payload (residuals, megabytes, factors).
    F64(f64),
    /// Static string payload (rung names, outcome labels).
    Str(&'static str),
    /// Boolean payload (converged flags).
    Bool(bool),
}

/// A `key = value` pair attached to an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arg {
    /// Argument name as it appears under `"args"` in the chrome trace.
    pub key: &'static str,
    /// Argument value.
    pub value: ArgValue,
}

impl Arg {
    /// An unsigned-integer argument.
    pub const fn u64(key: &'static str, value: u64) -> Self {
        Self { key, value: ArgValue::U64(value) }
    }

    /// A floating-point argument.
    pub const fn f64(key: &'static str, value: f64) -> Self {
        Self { key, value: ArgValue::F64(value) }
    }

    /// A static-string argument.
    pub const fn str(key: &'static str, value: &'static str) -> Self {
        Self { key, value: ArgValue::Str(value) }
    }

    /// A boolean argument.
    pub const fn bool(key: &'static str, value: bool) -> Self {
        Self { key, value: ArgValue::Bool(value) }
    }
}

/// What kind of chrome-trace event an [`Event`] exports as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed duration span (`"ph": "X"`).
    Span,
    /// A point-in-time marker (`"ph": "i"`), e.g. a ladder escalation.
    Instant,
    /// A sampled counter value (`"ph": "C"`), e.g. peak RSS.
    Counter,
}

/// A plain-old-data telemetry event: fixed-size, `Copy`, allocation-free
/// to record. Timestamps are nanoseconds since the process trace anchor
/// (see [`now_ns`](crate::now_ns)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Category (`"thermal"`, `"solver"`, `"multigrid"`, …) — the chrome
    /// trace `"cat"` field, and what a scoped sink filters on.
    pub cat: &'static str,
    /// Event name (`"steady_solve"`, `"escalation"`, …).
    pub name: &'static str,
    /// Start time in nanoseconds since the trace anchor.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants and counters).
    pub dur_ns: u64,
    /// Recording thread's telemetry id (see [`thread_id`](crate::thread_id)).
    pub tid: u64,
    /// Up to [`MAX_ARGS`] key/value arguments; `None` slots are unused.
    pub args: [Option<Arg>; MAX_ARGS],
}

impl Event {
    /// An event with no arguments; the caller fills timestamps.
    pub const fn new(kind: EventKind, cat: &'static str, name: &'static str) -> Self {
        Self { kind, cat, name, start_ns: 0, dur_ns: 0, tid: 0, args: [None; MAX_ARGS] }
    }

    /// Copies up to [`MAX_ARGS`] arguments into the fixed slots; extras are
    /// silently dropped (events are diagnostics, not a lossless channel).
    pub fn with_args(mut self, args: &[Arg]) -> Self {
        for (slot, arg) in self.args.iter_mut().zip(args) {
            *slot = Some(*arg);
        }
        self
    }
}

/// A fixed-capacity ring of [`Event`]s with oldest-dropped overflow.
///
/// The buffer is allocated once at construction; [`EventRing::push`] is a
/// registered hot path (lint.toml) and never allocates. When the ring is
/// full each push overwrites the oldest event and increments
/// [`EventRing::dropped`].
#[derive(Debug)]
pub struct EventRing {
    buf: Box<[Event]>,
    /// Next write position (equals the oldest element once full).
    head: usize,
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            buf: vec![Event::new(EventKind::Instant, "", ""); cap].into_boxed_slice(),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Records `ev`, overwriting the oldest event when full. Registered as
    /// a hot path: no allocation, no syscall, a few word-sized writes.
    pub fn push(&mut self, ev: Event) {
        self.buf[self.head] = ev;
        self.head = (self.head + 1) % self.buf.len();
        if self.len < self.buf.len() {
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Events overwritten because the ring was full (cumulative; not reset
    /// by [`EventRing::drain_into`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends the held events to `out` in oldest→newest order and empties
    /// the ring (the drop counter is preserved).
    pub fn drain_into(&mut self, out: &mut Vec<Event>) {
        let start = if self.len == self.buf.len() { self.head } else { 0 };
        out.reserve(self.len);
        for k in 0..self.len {
            out.push(self.buf[(start + k) % self.buf.len()]);
        }
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        let mut e = Event::new(EventKind::Instant, "test", "tick");
        e.start_ns = n;
        e
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let mut ring = EventRing::with_capacity(8);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.dropped(), 0);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert!(ring.is_empty());
        let stamps: Vec<u64> = out.iter().map(|e| e.start_ns).collect();
        assert_eq!(stamps, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut ring = EventRing::with_capacity(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        // 10 pushes into 4 slots: 6 overwrites, newest 4 survive in order.
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        let stamps: Vec<u64> = out.iter().map(|e| e.start_ns).collect();
        assert_eq!(stamps, vec![6, 7, 8, 9]);
        // The drop counter survives the drain (it is cumulative).
        assert_eq!(ring.dropped(), 6);
        // The ring is reusable after a drain.
        ring.push(ev(42));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = EventRing::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn with_args_fills_slots_and_drops_extras() {
        let args = [
            Arg::u64("a", 1),
            Arg::f64("b", 2.0),
            Arg::str("c", "x"),
            Arg::bool("d", true),
            Arg::u64("e", 5),
        ];
        let e = Event::new(EventKind::Span, "test", "spanned").with_args(&args);
        assert_eq!(e.args.iter().filter(|a| a.is_some()).count(), MAX_ARGS);
        assert_eq!(e.args[0], Some(Arg::u64("a", 1)));
        assert_eq!(e.args[3], Some(Arg::bool("d", true)));
    }
}
