//! Per-solve metric records and process-level snapshots.
//!
//! Spans answer *where the wall-clock went*; a [`SolveSample`] answers
//! *where the iterations went* for one linear solve: which rung answered,
//! how many CG iterations (and derived SpMV / preconditioner-apply /
//! V-cycle / triangular-solve counts) it burned, how good the warm start
//! was, and — in full trace mode — the entire per-iteration residual
//! history. Samples are recorded once per solve on the cold path, so they
//! may own heap data (`String` labels, `Vec` histories) that the ring
//! events cannot.

/// One rung's attempt inside a ladder solve, as recorded in a
/// [`SolveSample`] (mirrors `vcsel_numerics::RungAttempt` without the
/// dependency).
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptSample {
    /// Preconditioner name of the rung (`"multigrid"`, `"ic0"`, …).
    pub rung: &'static str,
    /// CG iterations the attempt consumed.
    pub iterations: u64,
    /// Relative residual when the attempt ended.
    pub residual: f64,
    /// How the attempt ended (`"converged"`, `"stalled"`, …).
    pub outcome: &'static str,
}

/// Metrics of one linear solve (steady field or transient step).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveSample {
    /// What was solved, e.g. `"steady/basis 3"` or `"transient/step 12"`.
    pub label: String,
    /// Category the sample exports under (matches the enclosing span).
    pub cat: &'static str,
    /// Solve start, nanoseconds since the trace anchor.
    pub start_ns: u64,
    /// Solve wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Rung that produced the final iterate (`"ic0"`, `"multigrid"`, …).
    pub solver: &'static str,
    /// System size (unknowns).
    pub unknowns: u64,
    /// CG iterations of the final (deciding) attempt.
    pub iterations: u64,
    /// CG iterations across every attempt, including failed rungs.
    pub total_iterations: u64,
    /// Rungs retired during this solve.
    pub escalations: u64,
    /// Whether the final attempt met the tolerance.
    pub converged: bool,
    /// Final relative residual.
    pub residual: f64,
    /// Relative residual *before* the first iteration — the warm-start hit
    /// quality (1.0 for a cold start, ≪ 1 for a good warm start). NaN when
    /// the history was not captured.
    pub initial_residual: f64,
    /// Per-iteration relative residuals of the final attempt (captured in
    /// full trace mode only; empty otherwise).
    pub residual_history: Vec<f64>,
    /// Every rung attempt of the solve, in order.
    pub attempts: Vec<AttemptSample>,
    /// Sparse matrix-vector products consumed (derived: one per CG
    /// iteration plus one warm-start residual evaluation per attempt).
    pub spmv: u64,
    /// Preconditioner applications consumed (derived: one per CG iteration
    /// plus the initial apply, per attempt).
    pub precond_applies: u64,
    /// Multigrid V-/F-cycles consumed (preconditioner applies of the
    /// multigrid rungs; zero when no multigrid rung ran).
    pub vcycles: u64,
    /// Sparse triangular solves consumed (two per IC(0)/SSOR apply; zero
    /// for Jacobi/multigrid rungs).
    pub trisolves: u64,
}

impl Default for SolveSample {
    fn default() -> Self {
        Self {
            label: String::new(),
            cat: "solver",
            start_ns: 0,
            dur_ns: 0,
            solver: "",
            unknowns: 0,
            iterations: 0,
            total_iterations: 0,
            escalations: 0,
            converged: false,
            residual: f64::NAN,
            initial_residual: f64::NAN,
            residual_history: Vec::new(),
            attempts: Vec::new(),
            spmv: 0,
            precond_applies: 0,
            vcycles: 0,
            trisolves: 0,
        }
    }
}

/// Peak resident-set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024.0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sample_is_inert() {
        let s = SolveSample::default();
        assert!(s.residual.is_nan());
        assert!(s.initial_residual.is_nan());
        assert!(s.residual_history.is_empty());
        assert_eq!(s.escalations, 0);
    }

    #[test]
    fn peak_rss_reads_procfs_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            let mb = peak_rss_mb().expect("VmHWM present on Linux");
            assert!(mb > 0.0 && mb < 1_000_000.0, "implausible peak RSS: {mb} MiB");
        }
    }
}
