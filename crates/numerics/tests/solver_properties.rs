//! Property tests on the numerical kernels: solver correctness on random
//! SPD systems, interpolation bounds, optimizer guarantees.

use proptest::prelude::*;
use vcsel_numerics::solver::{
    bicgstab, conjugate_gradient, preconditioned_cg, sor, CgWorkspace, SolveOptions,
};
use vcsel_numerics::{
    block_preconditioned_cg, golden_section_min, grid_argmin, BlockCgWorkspace, BlockVector,
    CsrMatrix, IncompleteCholesky, Interp1d, MultigridConfig, Preconditioner, PreconditionerKind,
    TripletBuilder,
};

/// Random SPD stencil matrix: a 2-D 5-point grid Laplacian with per-edge
/// conductances and diagonal shifts drawn from the seed values — the shape
/// (and conditioning spread) of FVM conduction systems.
fn random_spd_stencil(nx: usize, ny: usize, seed: &[f64]) -> CsrMatrix {
    let n = nx * ny;
    let mut b = TripletBuilder::with_capacity(n, n, 5 * n);
    let draw = |k: usize| 0.05 + seed[k % seed.len()].abs();
    let mut diag = vec![0.0; n];
    for j in 0..ny {
        for i in 0..nx {
            let c = j * nx + i;
            if i + 1 < nx {
                let g = draw(c * 3 + 1);
                b.add(c, c + 1, -g);
                b.add(c + 1, c, -g);
                diag[c] += g;
                diag[c + 1] += g;
            }
            if j + 1 < ny {
                let g = draw(c * 5 + 2);
                b.add(c, c + nx, -g);
                b.add(c + nx, c, -g);
                diag[c] += g;
                diag[c + nx] += g;
            }
        }
    }
    for (c, d) in diag.iter().enumerate() {
        // Small positive shift keeps the matrix SPD (Robin-boundary-like).
        b.add(c, c, d + 0.01 + 0.1 * seed[(c * 7 + 3) % seed.len()].abs());
    }
    b.build()
}

/// Random SPD 7-point stencil: a 3-D grid Laplacian with per-edge
/// conductances drawn from the seed values — the exact shape of the FVM
/// conduction systems, including their anisotropy spread.
fn random_spd_stencil_3d(nx: usize, ny: usize, nz: usize, seed: &[f64]) -> CsrMatrix {
    let n = nx * ny * nz;
    let mut b = TripletBuilder::with_capacity(n, n, 7 * n);
    let draw = |k: usize| 0.02 + seed[k % seed.len()].abs();
    let mut diag = vec![0.0; n];
    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let c = idx(i, j, k);
                let mut couple = |d: usize, g: f64| {
                    b.add(c, d, -g);
                    b.add(d, c, -g);
                    diag[c] += g;
                    diag[d] += g;
                };
                if i + 1 < nx {
                    couple(idx(i + 1, j, k), draw(c * 3 + 1));
                }
                if j + 1 < ny {
                    couple(idx(i, j + 1, k), draw(c * 5 + 2));
                }
                if k + 1 < nz {
                    couple(idx(i, j, k + 1), draw(c * 7 + 3));
                }
            }
        }
    }
    for (c, d) in diag.iter().enumerate() {
        // Small positive shift keeps the matrix SPD (Robin-boundary-like).
        b.add(c, c, d + 0.01 + 0.1 * seed[(c * 11 + 5) % seed.len()].abs());
    }
    b.build()
}

/// Random symmetric diagonally dominant (hence SPD) matrix.
fn random_spd(n: usize, seed: &[f64]) -> CsrMatrix {
    let mut b = TripletBuilder::new(n, n);
    let mut off_diag_sums = vec![0.0; n];
    for i in 0..n {
        for j in (i + 1)..n {
            // Sparse-ish coupling pattern driven by the seed values.
            let v = seed[(i * 7 + j * 13) % seed.len()];
            if v.abs() > 0.5 {
                let w = -v.abs();
                b.add(i, j, w);
                b.add(j, i, w);
                off_diag_sums[i] += w.abs();
                off_diag_sums[j] += w.abs();
            }
        }
    }
    for (i, s) in off_diag_sums.iter().enumerate() {
        b.add(i, i, s + 1.0 + seed[i % seed.len()].abs());
    }
    b.build()
}

fn residual(a: &CsrMatrix, x: &[f64], rhs: &[f64]) -> f64 {
    let ax = a.mul_vec(x).unwrap();
    let num: f64 = ax.iter().zip(rhs).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
    let den: f64 = rhs.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
    num / den
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cg_solves_random_spd(
        n in 3usize..40,
        seed in proptest::collection::vec(-2.0f64..2.0, 40),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 40),
    ) {
        let a = random_spd(n, &seed);
        let rhs: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 10_000, relaxation: 1.5 };
        let sol = conjugate_gradient(&a, &rhs, &opts).unwrap();
        prop_assert!(residual(&a, &sol.solution, &rhs) < 1e-8);
    }

    #[test]
    fn all_solvers_agree(
        n in 3usize..20,
        seed in proptest::collection::vec(-2.0f64..2.0, 20),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 20),
    ) {
        let a = random_spd(n, &seed);
        let rhs: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();
        let opts = SolveOptions { tolerance: 1e-11, max_iterations: 200_000, relaxation: 1.2 };
        let cg = conjugate_gradient(&a, &rhs, &opts).unwrap().solution;
        let gs = sor(&a, &rhs, &opts).unwrap().solution;
        let bi = bicgstab(&a, &rhs, &opts).unwrap().solution;
        let scale = cg.iter().map(|v| v.abs()).fold(1e-12, f64::max);
        for i in 0..n {
            prop_assert!((cg[i] - gs[i]).abs() < 1e-6 * scale, "CG vs SOR at {i}");
            prop_assert!((cg[i] - bi[i]).abs() < 1e-6 * scale, "CG vs BiCGSTAB at {i}");
        }
    }

    #[test]
    fn preconditioned_cg_variants_agree_on_random_stencils(
        nx in 3usize..9,
        ny in 3usize..9,
        seed in proptest::collection::vec(-2.0f64..2.0, 48),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 81),
        omega in 0.4f64..1.8,
    ) {
        // IC(0)-CG, SSOR-CG and Jacobi-CG must land on the same solution of
        // a random SPD stencil system, whatever the conditioning draw.
        let a = random_spd_stencil(nx, ny, &seed);
        let n = nx * ny;
        let rhs: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();
        let opts = SolveOptions { tolerance: 1e-11, max_iterations: 50_000, relaxation: 1.5 };
        let kinds = [
            PreconditionerKind::Jacobi,
            PreconditionerKind::IncompleteCholesky,
            PreconditionerKind::Ssor { omega },
        ];
        let mut solutions = Vec::new();
        let mut ws = CgWorkspace::new();
        for kind in kinds {
            let mut m = kind.build(&a).expect("SPD stencil factors");
            let mut x = vec![0.0; n];
            let stats =
                preconditioned_cg(&a, &rhs, &mut x, &mut m, &opts, &mut ws).expect("converges");
            prop_assert!(stats.residual <= opts.tolerance);
            prop_assert!(residual(&a, &x, &rhs) < 1e-8);
            solutions.push(x);
        }
        let scale = solutions[0].iter().map(|v| v.abs()).fold(1e-12, f64::max);
        for other in &solutions[1..] {
            for (p, q) in solutions[0].iter().zip(other) {
                prop_assert!((p - q).abs() < 1e-6 * scale, "preconditioner mismatch: {p} vs {q}");
            }
        }
    }

    #[test]
    fn multigrid_cg_matches_ic0_cg_on_random_stencils(
        nx in 3usize..7,
        ny in 3usize..7,
        nz in 2usize..5,
        seed in proptest::collection::vec(-2.0f64..2.0, 56),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 216),
    ) {
        // The multigrid V-cycle preconditioner must land CG on the same
        // field as IC(0), whatever the random conductance draw. Shrink
        // direct_cells so even the small proptest systems build a real
        // multi-level hierarchy instead of degenerating to a dense solve.
        let a = random_spd_stencil_3d(nx, ny, nz, &seed);
        let n = nx * ny * nz;
        let rhs: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();
        let opts = SolveOptions { tolerance: 1e-11, max_iterations: 50_000, relaxation: 1.5 };
        let mut ws = CgWorkspace::new();

        let mut ic0 = PreconditionerKind::IncompleteCholesky.build(&a).expect("factors");
        let mut x_ic = vec![0.0; n];
        preconditioned_cg(&a, &rhs, &mut x_ic, &mut ic0, &opts, &mut ws).expect("ic0 converges");

        let config = MultigridConfig { direct_cells: 8, ..MultigridConfig::default() };
        let mut mg = PreconditionerKind::Multigrid { config }.build(&a).expect("hierarchy builds");
        let mut x_mg = vec![0.0; n];
        let stats =
            preconditioned_cg(&a, &rhs, &mut x_mg, &mut mg, &opts, &mut ws).expect("mg converges");
        prop_assert!(stats.residual <= opts.tolerance);
        prop_assert!(residual(&a, &x_mg, &rhs) < 1e-8);

        let scale = x_ic.iter().map(|v| v.abs()).fold(1e-12, f64::max);
        for (p, q) in x_ic.iter().zip(&x_mg) {
            prop_assert!((p - q).abs() / scale < 1e-8, "multigrid vs ic0 field: {p} vs {q}");
        }
    }

    #[test]
    fn level_scheduled_ic0_apply_matches_serial_on_random_stencils(
        nx in 3usize..8,
        ny in 3usize..8,
        nz in 2usize..6,
        threads in 2usize..6,
        seed in proptest::collection::vec(-2.0f64..2.0, 64),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 343),
    ) {
        // The wavefront (level-scheduled) IC(0) apply must reproduce the
        // serial triangular solves on random 3-D 7-point SPD stencils,
        // whatever the conductance draw. Pinning the worker count forces
        // multi-level scheduling — and real thread spawning — even on one
        // core and even below the size gate, mirroring the forced-band
        // block-SSOR tests.
        let a = random_spd_stencil_3d(nx, ny, nz, &seed);
        let n = nx * ny * nz;
        let r: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();

        let mut serial = IncompleteCholesky::new(&a).expect("factors")
            .with_parallel_apply(false);
        let mut wavefront = IncompleteCholesky::new(&a).expect("factors")
            .with_apply_threads(threads);
        prop_assert!(!serial.runs_parallel());
        prop_assert!(wavefront.runs_parallel());

        let mut z_serial = vec![0.0; n];
        let mut z_wave = vec![0.0; n];
        serial.apply(&r, &mut z_serial);
        wavefront.apply(&r, &mut z_wave);
        let scale = z_serial.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        for (s, w) in z_serial.iter().zip(&z_wave) {
            // 1e-15 relative: the two backward sweeps only differ in
            // summation order (gather over Lᵀ vs scatter over L).
            prop_assert!((s - w).abs() <= 1e-15 * scale,
                "serial {s} vs level-scheduled {w} (scale {scale})");
        }
    }

    #[test]
    fn block_cg_matches_sequential_cg_on_random_stencils(
        nx in 3usize..7,
        ny in 3usize..7,
        nz in 2usize..5,
        k_pick in 0usize..4,
        seed in proptest::collection::vec(-2.0f64..2.0, 56),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 512),
    ) {
        // One block_preconditioned_cg call on a k-column RHS must land every
        // column on the field the scalar solver produces for that column
        // alone — for each preconditioner rung the solve ladder uses. The
        // tight 1e-12 tolerance makes the 1e-10 agreement bound measure the
        // block engine itself, not the stopping criterion.
        let a = random_spd_stencil_3d(nx, ny, nz, &seed);
        let n = nx * ny * nz;
        let k = [1usize, 2, 4, 7][k_pick];
        let columns: Vec<Vec<f64>> = (0..k)
            .map(|j| (0..n).map(|i| rhs_seed[(j * n + i) % rhs_seed.len()]).collect())
            .collect();
        let opts = SolveOptions { tolerance: 1e-12, max_iterations: 50_000, relaxation: 1.5 };
        let mg_config = MultigridConfig { direct_cells: 8, ..MultigridConfig::default() };
        let kinds = [
            PreconditionerKind::Jacobi,
            PreconditionerKind::IncompleteCholesky,
            PreconditionerKind::Multigrid { config: mg_config },
        ];
        let mut ws = CgWorkspace::new();
        let mut block_ws = BlockCgWorkspace::new();
        for kind in kinds {
            let mut m = kind.build(&a).expect("SPD stencil factors");
            let mut sequential = Vec::new();
            for rhs in &columns {
                let mut x = vec![0.0; n];
                preconditioned_cg(&a, rhs, &mut x, &mut m, &opts, &mut ws).expect("scalar");
                sequential.push(x);
            }

            let refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
            let b = BlockVector::from_columns(&refs).expect("uniform columns");
            let mut x_block = BlockVector::zeros(n, k);
            let summaries =
                block_preconditioned_cg(&a, &b, &mut x_block, &mut m, &opts, &mut block_ws)
                    .expect("block solve");
            for (j, (summary, scalar)) in summaries.iter().zip(&sequential).enumerate() {
                prop_assert!(summary.converged, "column {j} failed: {summary:?}");
                let scale = scalar.iter().map(|v| v.abs()).fold(1e-12, f64::max);
                for (p, q) in scalar.iter().zip(x_block.column(j)) {
                    prop_assert!(
                        (p - q).abs() / scale <= 1e-10,
                        "column {j}: scalar {p} vs block {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_never_loses_to_cold_on_random_stencils(
        nx in 3usize..8,
        ny in 3usize..8,
        seed in proptest::collection::vec(-2.0f64..2.0, 32),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 64),
    ) {
        // Restarting CG from its own solution must converge immediately,
        // and the answer must stay put.
        let a = random_spd_stencil(nx, ny, &seed);
        let n = nx * ny;
        let rhs: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 50_000, relaxation: 1.5 };
        let mut m = PreconditionerKind::IncompleteCholesky.build(&a).expect("factors");
        let mut ws = CgWorkspace::new();
        let mut x = vec![0.0; n];
        preconditioned_cg(&a, &rhs, &mut x, &mut m, &opts, &mut ws).expect("cold");
        let before = x.clone();
        let warm = preconditioned_cg(&a, &rhs, &mut x, &mut m, &opts, &mut ws).expect("warm");
        prop_assert_eq!(warm.iterations, 0);
        prop_assert_eq!(before, x);
    }

    #[test]
    fn matvec_is_linear(
        n in 2usize..30,
        seed in proptest::collection::vec(-2.0f64..2.0, 30),
        x_seed in proptest::collection::vec(-3.0f64..3.0, 30),
        alpha in -4.0f64..4.0,
    ) {
        let a = random_spd(n, &seed);
        let x: Vec<f64> = x_seed.iter().take(n).cloned().collect();
        let ax = a.mul_vec(&x).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let a_scaled = a.mul_vec(&scaled).unwrap();
        for i in 0..n {
            prop_assert!((a_scaled[i] - alpha * ax[i]).abs() < 1e-9 * ax[i].abs().max(1.0));
        }
    }

    #[test]
    fn interp_stays_within_knot_range(
        ys in proptest::collection::vec(-10.0f64..10.0, 2..12),
        x in -20.0f64..20.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let t = Interp1d::new(xs, ys.clone()).unwrap();
        let v = t.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn golden_section_beats_endpoints(center in -3.0f64..3.0, scale in 0.1f64..10.0) {
        let f = |x: f64| scale * (x - center).powi(2);
        let m = golden_section_min(-5.0, 5.0, 1e-9, f).unwrap();
        prop_assert!(m.value <= f(-5.0) + 1e-9);
        prop_assert!(m.value <= f(5.0) + 1e-9);
        prop_assert!((m.argmin - center).abs() < 1e-5);
    }

    #[test]
    fn grid_argmin_is_true_sample_min(
        ys in proptest::collection::vec(-10.0f64..10.0, 2..20),
    ) {
        let n = ys.len();
        let ys2 = ys.clone();
        let m = grid_argmin(0.0, (n - 1) as f64, n, move |x| {
            ys2[x.round() as usize]
        }).unwrap();
        let true_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(m.value, true_min);
    }
}
