//! Property tests on the numerical kernels: solver correctness on random
//! SPD systems, interpolation bounds, optimizer guarantees.

use proptest::prelude::*;
use vcsel_numerics::solver::{bicgstab, conjugate_gradient, sor, SolveOptions};
use vcsel_numerics::{golden_section_min, grid_argmin, CsrMatrix, Interp1d, TripletBuilder};

/// Random symmetric diagonally dominant (hence SPD) matrix.
fn random_spd(n: usize, seed: &[f64]) -> CsrMatrix {
    let mut b = TripletBuilder::new(n, n);
    let mut off_diag_sums = vec![0.0; n];
    for i in 0..n {
        for j in (i + 1)..n {
            // Sparse-ish coupling pattern driven by the seed values.
            let v = seed[(i * 7 + j * 13) % seed.len()];
            if v.abs() > 0.5 {
                let w = -v.abs();
                b.add(i, j, w);
                b.add(j, i, w);
                off_diag_sums[i] += w.abs();
                off_diag_sums[j] += w.abs();
            }
        }
    }
    for (i, s) in off_diag_sums.iter().enumerate() {
        b.add(i, i, s + 1.0 + seed[i % seed.len()].abs());
    }
    b.build()
}

fn residual(a: &CsrMatrix, x: &[f64], rhs: &[f64]) -> f64 {
    let ax = a.mul_vec(x).unwrap();
    let num: f64 = ax.iter().zip(rhs).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
    let den: f64 = rhs.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
    num / den
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cg_solves_random_spd(
        n in 3usize..40,
        seed in proptest::collection::vec(-2.0f64..2.0, 40),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 40),
    ) {
        let a = random_spd(n, &seed);
        let rhs: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 10_000, relaxation: 1.5 };
        let sol = conjugate_gradient(&a, &rhs, &opts).unwrap();
        prop_assert!(residual(&a, &sol.solution, &rhs) < 1e-8);
    }

    #[test]
    fn all_solvers_agree(
        n in 3usize..20,
        seed in proptest::collection::vec(-2.0f64..2.0, 20),
        rhs_seed in proptest::collection::vec(-5.0f64..5.0, 20),
    ) {
        let a = random_spd(n, &seed);
        let rhs: Vec<f64> = rhs_seed.iter().take(n).cloned().collect();
        let opts = SolveOptions { tolerance: 1e-11, max_iterations: 200_000, relaxation: 1.2 };
        let cg = conjugate_gradient(&a, &rhs, &opts).unwrap().solution;
        let gs = sor(&a, &rhs, &opts).unwrap().solution;
        let bi = bicgstab(&a, &rhs, &opts).unwrap().solution;
        let scale = cg.iter().map(|v| v.abs()).fold(1e-12, f64::max);
        for i in 0..n {
            prop_assert!((cg[i] - gs[i]).abs() < 1e-6 * scale, "CG vs SOR at {i}");
            prop_assert!((cg[i] - bi[i]).abs() < 1e-6 * scale, "CG vs BiCGSTAB at {i}");
        }
    }

    #[test]
    fn matvec_is_linear(
        n in 2usize..30,
        seed in proptest::collection::vec(-2.0f64..2.0, 30),
        x_seed in proptest::collection::vec(-3.0f64..3.0, 30),
        alpha in -4.0f64..4.0,
    ) {
        let a = random_spd(n, &seed);
        let x: Vec<f64> = x_seed.iter().take(n).cloned().collect();
        let ax = a.mul_vec(&x).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let a_scaled = a.mul_vec(&scaled).unwrap();
        for i in 0..n {
            prop_assert!((a_scaled[i] - alpha * ax[i]).abs() < 1e-9 * ax[i].abs().max(1.0));
        }
    }

    #[test]
    fn interp_stays_within_knot_range(
        ys in proptest::collection::vec(-10.0f64..10.0, 2..12),
        x in -20.0f64..20.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let t = Interp1d::new(xs, ys.clone()).unwrap();
        let v = t.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn golden_section_beats_endpoints(center in -3.0f64..3.0, scale in 0.1f64..10.0) {
        let f = |x: f64| scale * (x - center).powi(2);
        let m = golden_section_min(-5.0, 5.0, 1e-9, f).unwrap();
        prop_assert!(m.value <= f(-5.0) + 1e-9);
        prop_assert!(m.value <= f(5.0) + 1e-9);
        prop_assert!((m.argmin - center).abs() < 1e-5);
    }

    #[test]
    fn grid_argmin_is_true_sample_min(
        ys in proptest::collection::vec(-10.0f64..10.0, 2..20),
    ) {
        let n = ys.len();
        let ys2 = ys.clone();
        let m = grid_argmin(0.0, (n - 1) as f64, n, move |x| {
            ys2[x.round() as usize]
        }).unwrap();
        let true_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(m.value, true_min);
    }
}
