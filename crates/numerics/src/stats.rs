//! Descriptive statistics for thermal maps and sweep results.

/// Summary statistics (min / max / mean / standard deviation / range) of a
/// sample set.
///
/// The paper's two key thermal metrics map directly onto this type: the ONI
/// *average temperature* is [`Summary::mean`] and the ONI *gradient
/// temperature* is [`Summary::range`] (max − min over the devices of the
/// interface).
///
/// # Example
///
/// ```
/// use vcsel_numerics::Summary;
///
/// let s = Summary::from_iter([54.6, 55.92, 55.0]).expect("non-empty");
/// assert!((s.range() - 1.32).abs() < 1e-9);
/// assert!(s.min >= 54.0 && s.max <= 56.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of samples aggregated.
    pub count: usize,
}

impl Summary {
    /// Aggregates an iterator of samples; returns `None` if it is empty or
    /// contains a non-finite value.
    ///
    /// (Named like — but deliberately distinct from — `FromIterator`: this
    /// aggregation is fallible, so the trait cannot express it.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(samples: I) -> Option<Self> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        for s in samples {
            if !s.is_finite() {
                return None;
            }
            min = min.min(s);
            max = max.max(s);
            sum += s;
            sum_sq += s * s;
            count += 1;
        }
        if count == 0 {
            return None;
        }
        let mean = sum / count as f64;
        let variance = (sum_sq / count as f64 - mean * mean).max(0.0);
        Some(Self { min, max, mean, std_dev: variance.sqrt(), count })
    }

    /// `max - min`: the "gradient" metric of the paper.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::from_iter([5.0; 10]).unwrap();
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.count, 10);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.range(), 3.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::from_iter(std::iter::empty()).is_none());
        assert!(Summary::from_iter([1.0, f64::NAN]).is_none());
        assert!(Summary::from_iter([1.0, f64::INFINITY]).is_none());
    }
}
