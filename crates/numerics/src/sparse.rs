//! Compressed-sparse-row matrices sized for finite-volume thermal systems.
//!
//! A full-chip mesh produces systems with 10⁵–10⁶ unknowns and seven-point
//! stencils, i.e. ~7 non-zeros per row. CSR with a triplet-based builder is
//! the standard representation; duplicate triplets are summed, which matches
//! how FVM assembly naturally emits one contribution per face.

use std::sync::OnceLock;

use crate::NumericsError;

/// Cached `std::thread::available_parallelism` (queried once per process).
fn hardware_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    })
}

/// Accumulates `(row, col, value)` triplets and compacts them into a
/// [`CsrMatrix`]. Duplicate coordinates are summed.
///
/// # Example
///
/// ```
/// use vcsel_numerics::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 1.0);
/// b.add(0, 0, 1.5); // summed with the previous entry
/// b.add(1, 1, 2.0);
/// let m = b.build();
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.get(0, 0), 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for an `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or exceeds `u32::MAX`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "matrix dimensions exceed u32 indexing"
        );
        Self { rows, cols, entries: Vec::new() }
    }

    /// Creates a builder and pre-allocates room for `cap` triplets.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut b = Self::new(rows, cols);
        b.entries.reserve(cap);
        b
    }

    /// Records a contribution `value` at `(row, col)`. Contributions to the
    /// same coordinate accumulate.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
    }

    /// Number of raw (pre-compaction) triplets recorded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compacts the triplets into a CSR matrix, summing duplicates.
    pub fn build(mut self) -> CsrMatrix {
        // Sort by (row, col), merge duplicates, then count rows.
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut row_ptr = vec![0usize; self.rows + 1];

        let mut entry = 0usize;
        while entry < self.entries.len() {
            let (r, c, mut v) = self.entries[entry];
            entry += 1;
            while entry < self.entries.len()
                && self.entries[entry].0 == r
                && self.entries[entry].1 == c
            {
                v += self.entries[entry].2;
                entry += 1;
            }
            row_ptr[r as usize + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }

        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

/// A sparse matrix in compressed-sparse-row format.
///
/// Construct via [`TripletBuilder`]. Rows are stored in ascending column
/// order with no duplicate coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 1.0);
        }
        b.build()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&(col as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(col, value)` pairs of one row.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c as usize, v))
    }

    /// Dense main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).collect()
    }

    /// Computes `y = A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                what: "matrix-vector product operand",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Computes `y = A * x` into a caller-provided buffer (no allocation;
    /// used in solver inner loops).
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes are wrong.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        }
    }

    /// Computes `y = A * x`, transparently parallelising across rows for
    /// large systems.
    ///
    /// This is the entry point solver inner loops should use: below
    /// [`Self::PARALLEL_NNZ_THRESHOLD`] stored non-zeros (where thread
    /// spawn overhead would dominate the ~µs serial kernel) it runs
    /// [`CsrMatrix::mul_vec_into`], above it a row-partitioned
    /// [`CsrMatrix::mul_vec_into_threaded`] over the available cores.
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes are wrong.
    pub fn multiply_into(&self, x: &[f64], y: &mut [f64]) {
        let threads = hardware_threads().min(Self::MAX_SPMV_THREADS);
        if threads < 2 || self.nnz() < Self::PARALLEL_NNZ_THRESHOLD {
            self.mul_vec_into(x, y);
        } else {
            self.mul_vec_into_threaded(x, y, threads);
        }
    }

    /// Stored non-zeros below which [`CsrMatrix::multiply_into`] stays
    /// serial. A seven-point-stencil row costs ~10 ns, so this corresponds
    /// to a kernel of roughly 1 ms / thread-spawn cost × safety margin.
    pub const PARALLEL_NNZ_THRESHOLD: usize = 1 << 17;

    /// Cap on SpMV worker threads: the kernel is memory-bandwidth bound,
    /// so more threads than memory channels only add spawn overhead.
    pub const MAX_SPMV_THREADS: usize = 8;

    /// Computes `y = A * x` with `threads` scoped workers, each owning a
    /// contiguous, nnz-balanced band of rows (disjoint slices of `y`, so
    /// no synchronisation is needed beyond the scope join).
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes are wrong or `threads` is zero.
    pub fn mul_vec_into_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        assert!(threads > 0, "need at least one worker thread");
        let threads = threads.min(self.rows.max(1));
        if threads == 1 {
            self.mul_vec_into(x, y);
            return;
        }

        // Split rows so every band carries ~nnz/threads stored entries:
        // uniform row partitions would let a dense band straggle.
        let total = self.nnz();
        let mut bounds = Vec::with_capacity(threads + 1);
        bounds.push(0usize);
        for t in 1..threads {
            let target = total * t / threads;
            let row = self.row_ptr.partition_point(|&p| p < target).min(self.rows);
            bounds.push(row.max(*bounds.last().expect("non-empty")));
        }
        bounds.push(self.rows);

        std::thread::scope(|scope| {
            let mut rest = y;
            for pair in bounds.windows(2) {
                let (start, end) = (pair[0], pair[1]);
                let (band, tail) = rest.split_at_mut(end - start);
                rest = tail;
                if band.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    for (offset, yr) in band.iter_mut().enumerate() {
                        let r = start + offset;
                        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                        let mut acc = 0.0;
                        for k in lo..hi {
                            acc += self.values[k] * x[self.col_idx[k] as usize];
                        }
                        *yr = acc;
                    }
                });
            }
        });
    }

    /// Checks structural + numerical symmetry to a relative tolerance.
    ///
    /// The FVM discretization of pure conduction must produce a symmetric
    /// matrix; this check is used by the thermal solver's debug assertions
    /// and tests.
    pub fn is_symmetric(&self, rel_tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let vt = self.get(c, r);
                let scale = v.abs().max(vt.abs()).max(1e-300);
                if (v - vt).abs() / scale > rel_tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if every diagonal entry is strictly positive and every
    /// row is (weakly) diagonally dominant — a sufficient condition for the
    /// FVM conduction matrix to be SPD.
    pub fn is_diagonally_dominant(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in self.row(r) {
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            if diag <= 0.0 || diag + 1e-12 * diag < off {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = laplacian_1d(4);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.nnz(), 10);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(0, 3), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(3, 3);
        for _ in 0..5 {
            b.add(1, 1, 0.5);
        }
        b.add(1, 2, 1.0);
        b.add(1, 2, -1.0); // cancels but stays stored
        let m = b.build();
        assert_eq!(m.get(1, 1), 2.5);
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn zero_contributions_are_skipped() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 0.0);
        b.add(1, 1, 3.0);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = laplacian_1d(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = m.mul_vec(&x).unwrap();
        // Dense check: y_i = -x_{i-1} + 2 x_i - x_{i+1}
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn matvec_dimension_mismatch() {
        let m = laplacian_1d(3);
        let err = m.mul_vec(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { expected: 3, got: 2, .. }));
    }

    #[test]
    fn symmetry_and_dominance() {
        let m = laplacian_1d(6);
        assert!(m.is_symmetric(1e-14));
        assert!(m.is_diagonally_dominant());

        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 5.0);
        b.add(1, 1, 1.0);
        let m = b.build();
        assert!(!m.is_symmetric(1e-14));
        assert!(!m.is_diagonally_dominant());
    }

    #[test]
    fn identity() {
        let i3 = CsrMatrix::identity(3);
        let x = [4.0, -1.0, 0.5];
        assert_eq!(i3.mul_vec(&x).unwrap(), x.to_vec());
        assert_eq!(i3.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn row_iterator_is_sorted() {
        let m = laplacian_1d(4);
        for r in 0..4 {
            let cols: Vec<usize> = m.row(r).map(|(c, _)| c).collect();
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            assert_eq!(cols, sorted);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(2, 0, 1.0);
    }

    #[test]
    fn threaded_matvec_matches_serial() {
        // Non-uniform nnz distribution: dense early rows, sparse tail, so
        // the nnz-balanced partition actually gets exercised.
        let n = 500;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 4.0 + i as f64 * 0.01);
            let fan = if i < 50 { 20 } else { 2 };
            for d in 1..=fan {
                if i + d < n {
                    b.add(i, i + d, -0.01 * d as f64);
                }
            }
        }
        let m = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut serial = vec![0.0; n];
        m.mul_vec_into(&x, &mut serial);
        for threads in [1, 2, 3, 7, 64] {
            let mut par = vec![0.0; n];
            m.mul_vec_into_threaded(&x, &mut par, threads);
            assert_eq!(par, serial, "mismatch with {threads} threads");
        }
        let mut auto = vec![0.0; n];
        m.multiply_into(&x, &mut auto);
        assert_eq!(auto, serial);
    }

    #[test]
    fn threaded_matvec_handles_more_threads_than_rows() {
        let m = laplacian_1d(3);
        let mut y = vec![0.0; 3];
        m.mul_vec_into_threaded(&[1.0, 1.0, 1.0], &mut y, 16);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }
}
