//! Compressed-sparse-row matrices sized for finite-volume thermal systems.
//!
//! A full-chip mesh produces systems with 10⁵–10⁶ unknowns and seven-point
//! stencils, i.e. ~7 non-zeros per row. CSR with a triplet-based builder is
//! the standard representation; duplicate triplets are summed, which matches
//! how FVM assembly naturally emits one contribution per face.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::block_solver::BlockVector;
use crate::NumericsError;

/// Parses a `VCSEL_THREADS`-style override: `Some(n.max(1))` for a parsable
/// value, `None` when unset or unparsable (fall back to the hardware count).
fn thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).map(|t| t.max(1))
}

/// The worker count every threaded kernel in this crate sizes itself
/// against: the `VCSEL_THREADS` environment variable when set (clamped to
/// at least 1 — CI and A/B benches use it to pin worker counts), otherwise
/// [`std::thread::available_parallelism`]. Queried once per process and
/// cached, so changing the variable after the first call has no effect.
pub fn hardware_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        thread_override(std::env::var("VCSEL_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        })
    })
}

/// A scratch vector of `f64` values shared across the wavefront workers of
/// a level-scheduled triangular solve, stored as relaxed `AtomicU64` bit
/// patterns. Safe-Rust stand-in for scattered disjoint writes: within one
/// level every slot is written by exactly one worker, and the level barrier
/// (or the scope join) orders those writes before any cross-level read, so
/// relaxed loads/stores are sufficient.
pub(crate) struct SharedF64(Vec<AtomicU64>);

impl SharedF64 {
    pub fn new(len: usize) -> Self {
        Self((0..len).map(|_| AtomicU64::new(0)).collect())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        // ORDER: cross-level visibility comes from the level barrier (or
        // scope join); within a level each slot has exactly one writer.
        f64::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    #[inline]
    pub fn store(&self, i: usize, v: f64) {
        // ORDER: disjoint slots per worker within a level; the barrier's
        // release/acquire pair publishes the bits to the next level.
        self.0[i].store(v.to_bits(), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SharedF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedF64(len = {})", self.0.len())
    }
}

impl Clone for SharedF64 {
    fn clone(&self) -> Self {
        // Scratch contents are transient per apply; a clone only needs the
        // capacity, not the bits.
        Self::new(self.0.len())
    }
}

/// A sense-reversing spin barrier for the wavefront solves: `members`
/// threads synchronize once per dependency level, thousands of times per
/// second, which is exactly the regime where the mutex/condvar
/// [`std::sync::Barrier`] pays a wakeup latency per level that can exceed
/// the level's work. Spins briefly, then yields (so an oversubscribed or
/// single-core machine still makes progress).
pub(crate) struct SpinBarrier {
    members: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(members: usize) -> Self {
        assert!(members > 0, "barrier needs at least one member");
        Self { members, arrived: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    /// Blocks until all `members` threads have called `wait` for the
    /// current generation. Release/acquire on the generation counter makes
    /// every write before the barrier visible after it.
    pub fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.members {
            // Last arrival: reset the count, then open the next generation.
            // Waiters only touch `arrived` again after observing the bump,
            // so the reset cannot race their increments.
            // ORDER: the generation store below is the publishing release;
            // the reset itself needs no ordering of its own.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(generation + 1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// The nnz-balanced sub-range of permuted rows `[level_start, level_end)`
/// assigned to `worker` of `workers`, computed from cumulative non-zero
/// counts exactly like [`CsrMatrix::nnz_balanced_rows`] — every worker
/// derives the same boundaries independently, so no coordination is needed.
pub(crate) fn nnz_balanced_chunk(
    row_ptr: &[usize],
    level_start: usize,
    level_end: usize,
    worker: usize,
    workers: usize,
) -> (usize, usize) {
    let base = row_ptr[level_start];
    let total = row_ptr[level_end] - base;
    let bound = |t: usize| -> usize {
        if t == 0 {
            return level_start;
        }
        if t >= workers {
            return level_end;
        }
        let target = base + total * t / workers;
        (level_start + row_ptr[level_start..level_end].partition_point(|&p| p < target))
            .min(level_end)
    };
    (bound(worker), bound(worker + 1))
}

/// A triangular factor whose rows are permuted into wavefront (dependency
/// level) processing order: position `p` holds natural row `rows[p]`, with
/// its stored entries at `row_ptr[p]..row_ptr[p + 1]` (column indices stay
/// natural). Rows of one level are contiguous, so the level scheduler
/// dispatches contiguous row-range micro-kernels whose factor reads stream
/// sequentially — cache-friendly instead of gather-heavy — while the
/// solution vector stays in natural ordering.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WavefrontFactor {
    pub row_ptr: Vec<usize>,
    /// Natural row index of each permuted position.
    pub rows: Vec<u32>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f64>,
}

impl WavefrontFactor {
    /// Gathers the rows of a triangular CSR factor in `order` into a
    /// contiguous permuted copy.
    pub fn gather(order: &[u32], row_ptr: &[usize], col_idx: &[u32], values: &[f64]) -> Self {
        let mut out_ptr = Vec::with_capacity(order.len() + 1);
        let mut out_idx = Vec::with_capacity(values.len());
        let mut out_val = Vec::with_capacity(values.len());
        out_ptr.push(0);
        for &r in order {
            let (lo, hi) = (row_ptr[r as usize], row_ptr[r as usize + 1]);
            out_idx.extend_from_slice(&col_idx[lo..hi]);
            out_val.extend_from_slice(&values[lo..hi]);
            out_ptr.push(out_val.len());
        }
        Self { row_ptr: out_ptr, rows: order.to_vec(), col_idx: out_idx, values: out_val }
    }

    /// Forward-substitution micro-kernel over the contiguous permuted row
    /// range `lo..hi` of a *lower*-triangular factor (diagonal stored last
    /// in each row): `y[i] = (r[i] − Σ_k l_ik · y[k]) / l_ii`. Every `y`
    /// slot it reads belongs to an earlier dependency level, every slot it
    /// writes belongs to the current one.
    pub fn solve_lower_block(&self, lo: usize, hi: usize, r: &[f64], y: &SharedF64) {
        for p in lo..hi {
            let (s, e) = (self.row_ptr[p], self.row_ptr[p + 1]);
            let i = self.rows[p] as usize;
            let mut acc = r[i];
            for k in s..e - 1 {
                acc -= self.values[k] * y.load(self.col_idx[k] as usize);
            }
            y.store(i, acc / self.values[e - 1]);
        }
    }

    /// Backward-substitution micro-kernel over the contiguous permuted row
    /// range `lo..hi` of an *upper*-triangular factor (diagonal stored
    /// first in each row), in place over `y`:
    /// `y[i] = (y[i] − Σ_j u_ij · y[j]) / u_ii`.
    pub fn solve_upper_block(&self, lo: usize, hi: usize, y: &SharedF64) {
        for p in lo..hi {
            let (s, e) = (self.row_ptr[p], self.row_ptr[p + 1]);
            let i = self.rows[p] as usize;
            let mut acc = y.load(i);
            for k in s + 1..e {
                acc -= self.values[k] * y.load(self.col_idx[k] as usize);
            }
            y.store(i, acc / self.values[s]);
        }
    }
}

/// Accumulates `(row, col, value)` triplets and compacts them into a
/// [`CsrMatrix`]. Duplicate coordinates are summed.
///
/// # Example
///
/// ```
/// use vcsel_numerics::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 1.0);
/// b.add(0, 0, 1.5); // summed with the previous entry
/// b.add(1, 1, 2.0);
/// let m = b.build();
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.get(0, 0), 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for an `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or exceeds `u32::MAX`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "matrix dimensions exceed u32 indexing"
        );
        Self { rows, cols, entries: Vec::new() }
    }

    /// Creates a builder and pre-allocates room for `cap` triplets.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut b = Self::new(rows, cols);
        b.entries.reserve(cap);
        b
    }

    /// Records a contribution `value` at `(row, col)`. Contributions to the
    /// same coordinate accumulate.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
    }

    /// Number of raw (pre-compaction) triplets recorded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compacts the triplets into a CSR matrix, summing duplicates.
    pub fn build(mut self) -> CsrMatrix {
        // Sort by (row, col), merge duplicates, then count rows.
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut row_ptr = vec![0usize; self.rows + 1];

        let mut entry = 0usize;
        while entry < self.entries.len() {
            let (r, c, mut v) = self.entries[entry];
            entry += 1;
            while entry < self.entries.len()
                && self.entries[entry].0 == r
                && self.entries[entry].1 == c
            {
                v += self.entries[entry].2;
                entry += 1;
            }
            row_ptr[r as usize + 1] += 1;
            col_idx.push(c);
            values.push(v);
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }

        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

/// A sparse matrix in compressed-sparse-row format.
///
/// Construct via [`TripletBuilder`]. Rows are stored in ascending column
/// order with no duplicate coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a matrix from already-sorted CSR arrays (each row's
    /// columns strictly ascending, no duplicates). Used by crate-internal
    /// kernels (multigrid transfer construction) that produce CSR directly
    /// and would waste an `O(nnz log nnz)` sort going through
    /// [`TripletBuilder`].
    pub(crate) fn from_sorted_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        let m = Self { rows, cols, row_ptr, col_idx, values };
        debug_assert!(
            m.validate().is_ok(),
            "from_sorted_parts received malformed CSR arrays: {:?}",
            m.validate().err()
        );
        m
    }

    /// Fallible counterpart of [`CsrMatrix::from_sorted_parts`] for arrays
    /// that come from *outside* the process — the artifact restore path —
    /// where malformed input must surface as a typed error, not a
    /// debug-assert panic. Runs the full [`CsrMatrix::validate`] pass in
    /// every build profile.
    pub(crate) fn try_from_sorted_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, NumericsError> {
        let m = Self { rows, cols, row_ptr, col_idx, values };
        m.validate()?;
        Ok(m)
    }

    /// The raw CSR arrays `(row_ptr, col_idx, values)`, for the artifact
    /// codec's zero-transformation encode.
    pub(crate) fn raw_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 1.0);
        }
        b.build()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Heap bytes of the CSR storage (values, column indices, row
    /// pointers) — what one copy of this operator costs in memory. The
    /// solve engines use it to report the savings of *sharing* the fine
    /// operator between a cache and a multigrid hierarchy instead of
    /// cloning it.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.row_ptr.len() * std::mem::size_of::<usize>()
    }

    /// Returns the entry at `(row, col)` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&(col as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(col, value)` pairs of one row.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c as usize, v))
    }

    /// Dense main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).collect()
    }

    /// Computes `y = A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                what: "matrix-vector product operand",
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Computes `y = A * x` into a caller-provided buffer (no allocation;
    /// used in solver inner loops).
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes are wrong.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        }
    }

    /// Computes `y = A * x`, transparently parallelising across rows for
    /// large systems.
    ///
    /// This is the entry point solver inner loops should use: below
    /// [`Self::PARALLEL_NNZ_THRESHOLD`] stored non-zeros (where thread
    /// spawn overhead would dominate the ~µs serial kernel) it runs
    /// [`CsrMatrix::mul_vec_into`], above it a row-partitioned
    /// [`CsrMatrix::mul_vec_into_threaded`] over the available cores.
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes are wrong.
    pub fn multiply_into(&self, x: &[f64], y: &mut [f64]) {
        let threads = hardware_threads().min(Self::MAX_SPMV_THREADS);
        if threads < 2 || self.nnz() < Self::PARALLEL_NNZ_THRESHOLD {
            self.mul_vec_into(x, y);
        } else {
            self.mul_vec_into_threaded(x, y, threads);
        }
    }

    /// Stored non-zeros below which [`CsrMatrix::multiply_into`] stays
    /// serial. A seven-point-stencil row costs ~10 ns, so this corresponds
    /// to a kernel of roughly 1 ms / thread-spawn cost × safety margin.
    pub const PARALLEL_NNZ_THRESHOLD: usize = 1 << 17;

    /// Cap on SpMV worker threads: the kernel is memory-bandwidth bound,
    /// so more threads than memory channels only add spawn overhead.
    pub const MAX_SPMV_THREADS: usize = 8;

    /// Computes `y = A * x` with `threads` scoped workers, each owning a
    /// contiguous, nnz-balanced band of rows (disjoint slices of `y`, so
    /// no synchronisation is needed beyond the scope join).
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes are wrong or `threads` is zero.
    pub fn mul_vec_into_threaded(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        assert!(threads > 0, "need at least one worker thread");
        let threads = threads.min(self.rows.max(1));
        if threads == 1 {
            self.mul_vec_into(x, y);
            return;
        }

        let bounds = self.nnz_balanced_rows(threads);

        std::thread::scope(|scope| {
            let mut rest = y;
            for pair in bounds.windows(2) {
                let (start, end) = (pair[0], pair[1]);
                let (band, tail) = rest.split_at_mut(end - start);
                rest = tail;
                if band.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    for (offset, yr) in band.iter_mut().enumerate() {
                        let r = start + offset;
                        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                        let mut acc = 0.0;
                        for k in lo..hi {
                            acc += self.values[k] * x[self.col_idx[k] as usize];
                        }
                        *yr = acc;
                    }
                });
            }
        });
    }

    /// Splits the rows into `bands` contiguous bands carrying roughly
    /// equal stored-non-zero counts, returned as `bands + 1` ascending row
    /// boundaries (first `0`, last `rows`). Uniform row partitions would
    /// let a dense band straggle; this is the partition behind
    /// [`CsrMatrix::mul_vec_into_threaded`] and the band-parallel SSOR
    /// sweeps of the multigrid smoothers.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero.
    pub fn nnz_balanced_rows(&self, bands: usize) -> Vec<usize> {
        assert!(bands > 0, "need at least one band");
        let total = self.nnz();
        let mut bounds = Vec::with_capacity(bands + 1);
        bounds.push(0usize);
        for t in 1..bands {
            let target = total * t / bands;
            let row = self.row_ptr.partition_point(|&p| p < target).min(self.rows);
            bounds.push(row.max(*bounds.last().expect("non-empty")));
        }
        bounds.push(self.rows);
        bounds
    }

    /// Computes `Y = A * X` for a k-column block in **one sweep** of the
    /// operator: each row's nonzeros are read once and serve all k column
    /// accumulations while still hot, instead of being re-streamed from
    /// memory k times by k scalar [`CsrMatrix::multiply_into`] calls.
    ///
    /// Per column the accumulation order is exactly
    /// [`CsrMatrix::mul_vec_into`]'s, and the threaded path reuses the
    /// same nnz-balanced row partition with the same gate, so every column
    /// of the result is bitwise identical to its scalar product — the
    /// property the block-CG degeneracy tests pin.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` disagree in shape with the operator or each
    /// other.
    pub fn multiply_block_into(&self, x: &BlockVector, y: &mut BlockVector) {
        let threads = hardware_threads().min(Self::MAX_SPMV_THREADS);
        if threads < 2 || self.nnz() < Self::PARALLEL_NNZ_THRESHOLD {
            self.mul_block_into(x, y);
        } else {
            self.mul_block_into_threaded(x, y, threads);
        }
    }

    /// Serial block SpMV kernel: rows outer, columns inner, so each row's
    /// values/indices stay in cache across the k column accumulations.
    ///
    /// # Panics
    ///
    /// Panics if buffer shapes are wrong.
    pub fn mul_block_into(&self, x: &BlockVector, y: &mut BlockVector) {
        let k = x.columns();
        assert_eq!(x.rows(), self.cols);
        assert_eq!(y.rows(), self.rows);
        assert_eq!(y.columns(), k);
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for j in 0..k {
                let xj = x.column(j);
                let mut acc = 0.0;
                for t in lo..hi {
                    acc += self.values[t] * xj[self.col_idx[t] as usize];
                }
                y.column_mut(j)[r] = acc;
            }
        }
    }

    /// Hands each worker one nnz-balanced row band of **every** column:
    /// band `b` owns rows `bounds[b]..bounds[b+1]` of all k output
    /// columns, carved out of the column-major storage as disjoint
    /// `&mut` slices up front so the scoped workers need no further
    /// synchronisation. Same bands as [`CsrMatrix::mul_vec_into_threaded`],
    /// so per column the result is bitwise identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if buffer shapes are wrong or `threads` is zero.
    pub fn mul_block_into_threaded(&self, x: &BlockVector, y: &mut BlockVector, threads: usize) {
        let k = x.columns();
        assert_eq!(x.rows(), self.cols);
        assert_eq!(y.rows(), self.rows);
        assert_eq!(y.columns(), k);
        assert!(threads > 0, "need at least one worker thread");
        let threads = threads.min(self.rows.max(1));
        if threads == 1 {
            self.mul_block_into(x, y);
            return;
        }

        let bounds = self.nnz_balanced_rows(threads);
        let rows = self.rows;

        // bands[b][j] = rows bounds[b]..bounds[b+1] of output column j.
        let mut bands: Vec<Vec<&mut [f64]>> =
            (1..bounds.len()).map(|_| Vec::with_capacity(k)).collect();
        for column in y.data_mut().chunks_mut(rows) {
            let mut rest = column;
            for (b, pair) in bounds.windows(2).enumerate() {
                let (head, tail) = rest.split_at_mut(pair[1] - pair[0]);
                rest = tail;
                bands[b].push(head);
            }
        }

        std::thread::scope(|scope| {
            for (b, band_columns) in bands.into_iter().enumerate() {
                let start = bounds[b];
                if bounds[b + 1] == start {
                    continue;
                }
                scope.spawn(move || {
                    for (j, band) in band_columns.into_iter().enumerate() {
                        let xj = x.column(j);
                        for (offset, yr) in band.iter_mut().enumerate() {
                            let r = start + offset;
                            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                            let mut acc = 0.0;
                            for t in lo..hi {
                                acc += self.values[t] * xj[self.col_idx[t] as usize];
                            }
                            *yr = acc;
                        }
                    }
                });
            }
        });
    }

    /// Returns the transpose `Aᵀ` (counting sort over columns, `O(nnz)`).
    ///
    /// Used by the multigrid hierarchy to turn a prolongation `P` into its
    /// restriction `R = Pᵀ` once, so both directions run as row-major SpMV.
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let pos = next[c];
                next[c] += 1;
                col_idx[pos] = r as u32;
                values[pos] = self.values[k];
            }
        }
        // Source rows are visited in ascending order, so each transposed
        // row's columns come out ascending — the CSR invariant holds.
        CsrMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// Computes the sparse product `A · B` (Gustavson's algorithm with a
    /// dense accumulator, `O(Σ_i Σ_{j ∈ row i} nnz(B_j))`).
    ///
    /// This is the kernel behind the Galerkin coarse operators
    /// `A_c = Pᵀ (A P)` of the multigrid hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn multiply_matrix(&self, other: &CsrMatrix) -> Result<CsrMatrix, NumericsError> {
        if self.cols != other.rows {
            return Err(NumericsError::DimensionMismatch {
                what: "matrix-matrix product operand",
                expected: self.cols,
                got: other.rows,
            });
        }
        let n = other.cols;
        let mut acc = vec![0.0; n];
        let mut marker = vec![usize::MAX; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        row_ptr.push(0);
        for i in 0..self.rows {
            touched.clear();
            for (j, v) in self.row(i) {
                for (c, w) in other.row(j) {
                    if marker[c] != i {
                        marker[c] = i;
                        touched.push(c as u32);
                        acc[c] = v * w;
                    } else {
                        acc[c] += v * w;
                    }
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                col_idx.push(c);
                values.push(acc[c as usize]);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix { rows: self.rows, cols: n, row_ptr, col_idx, values })
    }

    /// Computes `A + alpha · B` for same-shape matrices (two-pointer row
    /// merge; the union sparsity pattern is kept even where entries cancel).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if the shapes disagree.
    pub fn add_scaled(&self, other: &CsrMatrix, alpha: f64) -> Result<CsrMatrix, NumericsError> {
        if self.rows != other.rows {
            return Err(NumericsError::DimensionMismatch {
                what: "matrix sum operand rows",
                expected: self.rows,
                got: other.rows,
            });
        }
        if self.cols != other.cols {
            return Err(NumericsError::DimensionMismatch {
                what: "matrix sum operand columns",
                expected: self.cols,
                got: other.cols,
            });
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.nnz().max(other.nnz()));
        let mut values: Vec<f64> = Vec::with_capacity(self.nnz().max(other.nnz()));
        row_ptr.push(0);
        for r in 0..self.rows {
            let (mut p, p_end) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let (mut q, q_end) = (other.row_ptr[r], other.row_ptr[r + 1]);
            while p < p_end || q < q_end {
                let cp = if p < p_end { self.col_idx[p] } else { u32::MAX };
                let cq = if q < q_end { other.col_idx[q] } else { u32::MAX };
                match cp.cmp(&cq) {
                    std::cmp::Ordering::Less => {
                        col_idx.push(cp);
                        values.push(self.values[p]);
                        p += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        col_idx.push(cq);
                        values.push(alpha * other.values[q]);
                        q += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        col_idx.push(cp);
                        values.push(self.values[p] + alpha * other.values[q]);
                        p += 1;
                        q += 1;
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values })
    }

    /// Structural validation of the CSR invariants every kernel in this
    /// crate assumes: `row_ptr` has `rows + 1` monotone entries starting at
    /// 0 and ending at `nnz`, column indices are strictly ascending and
    /// in-bounds within each row, and every stored value is finite.
    ///
    /// Wired into `debug_assertions` at the assembly and Galerkin-product
    /// sites, so a malformed operator fails loudly at construction instead
    /// of as a wrong answer ten solver layers later.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadMatrix`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), NumericsError> {
        let bad = |reason: String| Err(NumericsError::BadMatrix { reason });
        if self.row_ptr.len() != self.rows + 1 {
            return bad(format!(
                "row_ptr has {} entries for {} rows (want rows + 1)",
                self.row_ptr.len(),
                self.rows
            ));
        }
        if self.row_ptr[0] != 0 {
            return bad(format!("row_ptr must start at 0, starts at {}", self.row_ptr[0]));
        }
        if self.col_idx.len() != self.values.len() {
            return bad(format!(
                "{} column indices vs {} values",
                self.col_idx.len(),
                self.values.len()
            ));
        }
        if *self.row_ptr.last().unwrap_or(&0) != self.values.len() {
            return bad(format!(
                "row_ptr ends at {} but {} non-zeros are stored",
                self.row_ptr.last().unwrap_or(&0),
                self.values.len()
            ));
        }
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if lo > hi {
                return bad(format!("row_ptr decreases at row {r} ({lo} > {hi})"));
            }
            let row = &self.col_idx[lo..hi];
            if let Some(w) = row.windows(2).find(|w| w[0] >= w[1]) {
                return bad(format!(
                    "row {r} columns not strictly ascending ({} then {})",
                    w[0], w[1]
                ));
            }
            if let Some(&c) = row.iter().find(|&&c| c as usize >= self.cols) {
                return bad(format!("row {r} column {c} out of bounds (cols = {})", self.cols));
            }
            if let Some(k) = self.values[lo..hi].iter().position(|v| !v.is_finite()) {
                return bad(format!("non-finite value at row {r}, column {}", row[k]));
            }
        }
        Ok(())
    }

    /// [`validate`](Self::validate) plus the extra invariants of a
    /// symmetric operator: square shape, symmetric sparsity *pattern*
    /// (entry `(i, j)` stored iff `(j, i)` is), and a strictly positive
    /// diagonal — what FVM assembly and Galerkin coarsening must produce.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadMatrix`] naming the first violated
    /// invariant.
    pub fn validate_symmetric(&self) -> Result<(), NumericsError> {
        self.validate()?;
        let bad = |reason: String| Err(NumericsError::BadMatrix { reason });
        if self.rows != self.cols {
            return bad(format!(
                "symmetric operator must be square, got {}x{}",
                self.rows, self.cols
            ));
        }
        for r in 0..self.rows {
            let mut has_diag = false;
            for (c, _) in self.row(r) {
                if c == r {
                    has_diag = true;
                } else {
                    let (lo, hi) = (self.row_ptr[c], self.row_ptr[c + 1]);
                    if self.col_idx[lo..hi].binary_search(&(r as u32)).is_err() {
                        return bad(format!(
                            "sparsity pattern not symmetric: ({r}, {c}) stored, ({c}, {r}) missing"
                        ));
                    }
                }
            }
            if !has_diag || self.get(r, r) <= 0.0 {
                return bad(format!(
                    "diagonal entry ({r}, {r}) = {} must be strictly positive",
                    self.get(r, r)
                ));
            }
        }
        Ok(())
    }

    /// Checks structural + numerical symmetry to a relative tolerance.
    ///
    /// The FVM discretization of pure conduction must produce a symmetric
    /// matrix; this check is used by the thermal solver's debug assertions
    /// and tests.
    pub fn is_symmetric(&self, rel_tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let vt = self.get(c, r);
                let scale = v.abs().max(vt.abs()).max(1e-300);
                if (v - vt).abs() / scale > rel_tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if every diagonal entry is strictly positive and every
    /// row is (weakly) diagonally dominant — a sufficient condition for the
    /// FVM conduction matrix to be SPD.
    pub fn is_diagonally_dominant(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in self.row(r) {
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            if diag <= 0.0 || diag + 1e-12 * diag < off {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = laplacian_1d(4);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.nnz(), 10);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(0, 3), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(3, 3);
        for _ in 0..5 {
            b.add(1, 1, 0.5);
        }
        b.add(1, 2, 1.0);
        b.add(1, 2, -1.0); // cancels but stays stored
        let m = b.build();
        assert_eq!(m.get(1, 1), 2.5);
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn zero_contributions_are_skipped() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 0.0);
        b.add(1, 1, 3.0);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = laplacian_1d(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = m.mul_vec(&x).unwrap();
        // Dense check: y_i = -x_{i-1} + 2 x_i - x_{i+1}
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn matvec_dimension_mismatch() {
        let m = laplacian_1d(3);
        let err = m.mul_vec(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { expected: 3, got: 2, .. }));
    }

    #[test]
    fn symmetry_and_dominance() {
        let m = laplacian_1d(6);
        assert!(m.is_symmetric(1e-14));
        assert!(m.is_diagonally_dominant());

        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 5.0);
        b.add(1, 1, 1.0);
        let m = b.build();
        assert!(!m.is_symmetric(1e-14));
        assert!(!m.is_diagonally_dominant());
    }

    #[test]
    fn identity() {
        let i3 = CsrMatrix::identity(3);
        let x = [4.0, -1.0, 0.5];
        assert_eq!(i3.mul_vec(&x).unwrap(), x.to_vec());
        assert_eq!(i3.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn row_iterator_is_sorted() {
        let m = laplacian_1d(4);
        for r in 0..4 {
            let cols: Vec<usize> = m.row(r).map(|(c, _)| c).collect();
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            assert_eq!(cols, sorted);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(2, 0, 1.0);
    }

    #[test]
    fn threaded_matvec_matches_serial() {
        // Non-uniform nnz distribution: dense early rows, sparse tail, so
        // the nnz-balanced partition actually gets exercised.
        let n = 500;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 4.0 + i as f64 * 0.01);
            let fan = if i < 50 { 20 } else { 2 };
            for d in 1..=fan {
                if i + d < n {
                    b.add(i, i + d, -0.01 * d as f64);
                }
            }
        }
        let m = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut serial = vec![0.0; n];
        m.mul_vec_into(&x, &mut serial);
        for threads in [1, 2, 3, 7, 64] {
            let mut par = vec![0.0; n];
            m.mul_vec_into_threaded(&x, &mut par, threads);
            assert_eq!(par, serial, "mismatch with {threads} threads");
        }
        let mut auto = vec![0.0; n];
        m.multiply_into(&x, &mut auto);
        assert_eq!(auto, serial);
    }

    #[test]
    fn transpose_round_trips_and_swaps_indices() {
        let mut b = TripletBuilder::new(3, 4);
        b.add(0, 1, 2.0);
        b.add(0, 3, -1.0);
        b.add(1, 0, 4.0);
        b.add(2, 2, 5.0);
        let m = b.build();
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (4, 3));
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(m.get(r, c), t.get(c, r), "mismatch at ({r},{c})");
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_dense_reference() {
        let mut a = TripletBuilder::new(3, 3);
        a.add(0, 0, 1.0);
        a.add(0, 2, 2.0);
        a.add(1, 1, 3.0);
        a.add(2, 0, -1.0);
        a.add(2, 2, 1.0);
        let a = a.build();
        let mut b = TripletBuilder::new(3, 2);
        b.add(0, 0, 1.0);
        b.add(1, 0, 2.0);
        b.add(1, 1, -1.0);
        b.add(2, 1, 4.0);
        let b = b.build();
        let c = a.multiply_matrix(&b).unwrap();
        assert_eq!((c.rows(), c.cols()), (3, 2));
        // Dense reference: c[r][k] = Σ_j a[r][j]·b[j][k].
        for r in 0..3 {
            for k in 0..2 {
                let want: f64 = (0..3).map(|j| a.get(r, j) * b.get(j, k)).sum();
                assert!((c.get(r, k) - want).abs() < 1e-14, "({r},{k}): {}", c.get(r, k));
            }
        }
        assert!(b.multiply_matrix(&a).is_err(), "inner dimension mismatch must fail");
    }

    #[test]
    fn matmul_rap_of_identity_prolongation_is_identity_galerkin() {
        // R·A·P with P = I must return A itself — the degenerate Galerkin
        // product the multigrid hierarchy relies on.
        let a = laplacian_1d(6);
        let p = CsrMatrix::identity(6);
        let rap = p.transpose().multiply_matrix(&a.multiply_matrix(&p).unwrap()).unwrap();
        for r in 0..6 {
            for c in 0..6 {
                assert!((rap.get(r, c) - a.get(r, c)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn add_scaled_merges_patterns() {
        let mut x = TripletBuilder::new(2, 3);
        x.add(0, 0, 1.0);
        x.add(1, 2, 2.0);
        let x = x.build();
        let mut y = TripletBuilder::new(2, 3);
        y.add(0, 1, 4.0);
        y.add(1, 2, 1.0);
        let y = y.build();
        let s = x.add_scaled(&y, -0.5).unwrap();
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), -2.0);
        assert_eq!(s.get(1, 2), 1.5);
        let mut z = TripletBuilder::new(3, 3);
        z.add(0, 0, 1.0);
        let z = z.build();
        assert!(x.add_scaled(&z, 1.0).is_err());
    }

    #[test]
    fn threaded_matvec_handles_more_threads_than_rows() {
        let m = laplacian_1d(3);
        let mut y = vec![0.0; 3];
        m.mul_vec_into_threaded(&[1.0, 1.0, 1.0], &mut y, 16);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn thread_override_parses_and_clamps() {
        assert_eq!(thread_override(None), None);
        assert_eq!(thread_override(Some("garbage")), None);
        assert_eq!(thread_override(Some("")), None);
        assert_eq!(thread_override(Some("4")), Some(4));
        assert_eq!(thread_override(Some(" 2 ")), Some(2));
        assert_eq!(thread_override(Some("0")), Some(1), "clamped to at least one worker");
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn nnz_balanced_chunks_cover_and_partition_the_level() {
        // Skewed row weights so the nnz balancing actually shifts bounds.
        let row_ptr = [0usize, 10, 11, 12, 13, 14, 30];
        for workers in [1, 2, 3, 8] {
            let mut expected = 1; // level [1, 6)
            for w in 0..workers {
                let (lo, hi) = nnz_balanced_chunk(&row_ptr, 1, 6, w, workers);
                assert_eq!(lo, expected, "chunks must tile the level");
                assert!(hi >= lo);
                expected = hi;
            }
            assert_eq!(expected, 6, "chunks must cover the level");
        }
    }

    #[test]
    fn spin_barrier_orders_writes_across_members() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let members = 4;
        let barrier = SpinBarrier::new(members);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..members {
                scope.spawn(|| {
                    for round in 1..=3usize {
                        hits.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Every member observes all increments of the round.
                        assert_eq!(hits.load(Ordering::Relaxed), members * round);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn wavefront_blocks_solve_a_bidiagonal_factor() {
        // L from the 1-D Laplacian Cholesky-like shape: diag 2, sub -1.
        let n = 6;
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
        }
        let l = b.build();
        let order: Vec<u32> = (0..n as u32).collect();
        let fwd = WavefrontFactor::gather(&order, &l.row_ptr, &l.col_idx, &l.values);
        let r: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let y = SharedF64::new(n);
        // A bidiagonal factor has strictly sequential levels: one row each.
        for i in 0..n {
            fwd.solve_lower_block(i, i + 1, &r, &y);
        }
        // Check L y = r by substitution.
        for (i, ri) in r.iter().enumerate() {
            let got = 2.0 * y.load(i) - if i > 0 { y.load(i - 1) } else { 0.0 };
            assert!((got - ri).abs() < 1e-12, "row {i}: {got} vs {ri}");
        }
        // Upper solve on Lᵀ (diag first) back-substitutes in place.
        let u = l.transpose();
        let rev: Vec<u32> = (0..n as u32).rev().collect();
        let bwd = WavefrontFactor::gather(&rev, &u.row_ptr, &u.col_idx, &u.values);
        let before: Vec<f64> = (0..n).map(|i| y.load(i)).collect();
        for p in 0..n {
            bwd.solve_upper_block(p, p + 1, &y);
        }
        for (i, bi) in before.iter().enumerate() {
            let got = 2.0 * y.load(i) - if i + 1 < n { y.load(i + 1) } else { 0.0 };
            assert!((got - bi).abs() < 1e-12, "col {i}: {got} vs {bi}");
        }
        assert_eq!(y.len(), n);
    }

    #[test]
    fn validate_accepts_built_matrices() {
        let a = laplacian_1d(8);
        a.validate().unwrap();
        a.validate_symmetric().unwrap();
        CsrMatrix::identity(3).validate_symmetric().unwrap();
        // Empty rows are legal CSR.
        TripletBuilder::new(4, 4).build().validate().unwrap();
    }

    #[test]
    fn validate_rejects_each_structural_corruption() {
        let cases = [
            // row_ptr length mismatch.
            CsrMatrix {
                rows: 2,
                cols: 2,
                row_ptr: vec![0, 1],
                col_idx: vec![0],
                values: vec![1.0],
            },
            // row_ptr does not end at nnz.
            CsrMatrix {
                rows: 2,
                cols: 2,
                row_ptr: vec![0, 1, 3],
                col_idx: vec![0, 1],
                values: vec![1.0, 1.0],
            },
            // Unsorted columns within a row.
            CsrMatrix {
                rows: 1,
                cols: 2,
                row_ptr: vec![0, 2],
                col_idx: vec![1, 0],
                values: vec![1.0, 2.0],
            },
            // Duplicate column within a row.
            CsrMatrix {
                rows: 1,
                cols: 2,
                row_ptr: vec![0, 2],
                col_idx: vec![1, 1],
                values: vec![1.0, 2.0],
            },
            // Out-of-bounds column.
            CsrMatrix {
                rows: 1,
                cols: 1,
                row_ptr: vec![0, 1],
                col_idx: vec![3],
                values: vec![1.0],
            },
            // Non-finite value.
            CsrMatrix {
                rows: 1,
                cols: 1,
                row_ptr: vec![0, 1],
                col_idx: vec![0],
                values: vec![f64::NAN],
            },
        ];
        for (k, m) in cases.iter().enumerate() {
            assert!(m.validate().is_err(), "corruption case {k} must fail");
        }
    }

    #[test]
    fn validate_symmetric_rejects_pattern_and_diagonal_defects() {
        // (0, 1) stored without its (1, 0) mirror.
        let asym = CsrMatrix {
            rows: 2,
            cols: 2,
            row_ptr: vec![0, 2, 3],
            col_idx: vec![0, 1, 1],
            values: vec![2.0, 1.0, 2.0],
        };
        asym.validate().unwrap();
        assert!(asym.validate_symmetric().is_err());
        // Missing / non-positive diagonal.
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, -1.0);
        b.add(1, 1, 1.0);
        assert!(b.build().validate_symmetric().is_err());
        // Rectangular operators cannot be symmetric.
        let rect = CsrMatrix {
            rows: 1,
            cols: 2,
            row_ptr: vec![0, 1],
            col_idx: vec![0],
            values: vec![1.0],
        };
        assert!(rect.validate_symmetric().is_err());
    }

    mod validate_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Whatever triplets go in, the builder's output satisfies every
            /// structural CSR invariant.
            #[test]
            fn built_matrices_always_validate(
                n in 1usize..12,
                entries in proptest::collection::vec(
                    (0usize..12, 0usize..12, -5.0f64..5.0), 0..40),
            ) {
                let mut b = TripletBuilder::new(n, n);
                for (r, c, v) in entries {
                    b.add(r % n, c % n, v);
                }
                prop_assert!(b.build().validate().is_ok());
            }

            /// Symmetrized stencils with a dominant diagonal pass the
            /// symmetric-operator validation (the FVM assembly shape).
            #[test]
            fn symmetrized_builds_validate_symmetric(
                n in 1usize..10,
                entries in proptest::collection::vec(
                    (0usize..10, 0usize..10, -5.0f64..5.0), 0..30),
            ) {
                let mut b = TripletBuilder::new(n, n);
                for i in 0..n {
                    b.add(i, i, 500.0);
                }
                for (r, c, v) in entries {
                    b.add(r % n, c % n, v);
                    b.add(c % n, r % n, v);
                }
                prop_assert!(b.build().validate_symmetric().is_ok());
            }
        }
    }

    /// Interleaving stress for the wavefront primitives (PR 6 satellite):
    /// 2–8 workers chain level computations through [`SharedF64`] with a
    /// [`SpinBarrier`] between levels, while a per-worker schedule injects
    /// `thread::yield_now` at the barrier boundaries. Whatever the OS
    /// schedule does, the float pipeline must come out bitwise identical —
    /// the determinism claim the level-scheduled IC(0) solves rely on.
    #[test]
    fn barrier_and_shared_f64_are_schedule_independent() {
        const LEVELS: usize = 6;
        const REPS: usize = 100;
        // Bitwise reference per worker count (workers change the sums).
        let mut reference: [Option<Vec<u64>>; 7] = Default::default();
        for rep in 0..REPS {
            let workers = 2 + rep % 7;
            // Deterministic LCG so failures replay; different stream per rep.
            let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_add(rep as u64);
            let mut lcg = || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                state >> 16
            };
            let yield_bits: Vec<u64> = (0..workers).map(|_| lcg()).collect();
            let shared = SharedF64::new(workers * (LEVELS + 1));
            for w in 0..workers {
                shared.store(w, 1.0 + w as f64);
            }
            let barrier = SpinBarrier::new(workers);
            std::thread::scope(|s| {
                for (w, &bits) in yield_bits.iter().enumerate() {
                    let (shared, barrier) = (&shared, &barrier);
                    s.spawn(move || {
                        for level in 1..=LEVELS {
                            // Reads of level-1 slots are ordered by the
                            // previous barrier (or the scope spawn).
                            let base = (level - 1) * workers;
                            let mut acc = 0.0f64;
                            for k in 0..workers {
                                acc += shared.load(base + k) * (1.0 + 1e-9 * (k + 1) as f64);
                            }
                            shared.store(level * workers + w, acc * (1.0 + 1e-12 * w as f64));
                            if bits >> (2 * level) & 1 == 1 {
                                std::thread::yield_now();
                            }
                            barrier.wait();
                            if bits >> (2 * level + 1) & 1 == 1 {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
            let bits: Vec<u64> = (0..shared.len()).map(|i| shared.load(i).to_bits()).collect();
            match &reference[workers - 2] {
                None => reference[workers - 2] = Some(bits),
                Some(expected) => assert_eq!(
                    expected, &bits,
                    "schedule changed the bits for {workers} workers at rep {rep}"
                ),
            }
        }
    }
}
