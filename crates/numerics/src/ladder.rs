//! Escalating solve ladder: a sequence of preconditioners tried in order
//! until one converges.
//!
//! The thermal engines default to the strongest preconditioner the problem
//! size justifies (multigrid on large meshes, IC(0) elsewhere). Strong
//! preconditioners are also the most fragile: a pathological design edit
//! can make the IC(0) factor break down, and a corrupted apply (the
//! fault-injection hooks simulate one) silently destroys CG's search
//! directions instead of erroring. A [`SolveLadder`] turns both failure
//! shapes into *recovery*: it runs [`preconditioned_cg`] on the active
//! rung, and when the solve stalls, diverges, hits its iteration cap, or
//! the preconditioner cannot even be built, it restores the caller's
//! initial guess and escalates to the next (weaker but sturdier) rung —
//! typically `Multigrid → IC(0) → Jacobi`. Jacobi only requires a positive
//! diagonal, which FVM assembly guarantees, so the last rung is always
//! buildable and the ladder degrades gracefully instead of panicking.
//!
//! Every attempt is recorded as a [`RungAttempt`] so callers can surface
//! *why* a solve was slow or degraded (the thermal layer forwards them in
//! its `SolveHealth` report). Escalation is sticky: once a rung has failed
//! it stays retired for the lifetime of the ladder, because a preconditioner
//! that broke once on this operator will break again.

use std::sync::Arc;

use vcsel_telemetry::{Arg, AttemptSample, SolveSample, TelemetrySink};

use crate::block_solver::{block_preconditioned_cg, BlockCgWorkspace, BlockVector};
use crate::precond::{AnyPreconditioner, Preconditioner, PreconditionerKind};
use crate::solver::{preconditioned_cg, CgStop, CgSummary, CgWorkspace, SolveOptions};
use crate::{CsrMatrix, NumericsError};

/// How a single rung's attempt at the solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RungOutcome {
    /// The rung converged; its solution is in the caller's `x`.
    Converged,
    /// The rung ran out of iterations with the residual above tolerance.
    IterationCap,
    /// The residual stopped improving (see
    /// [`STALL_WINDOW`](crate::solver::STALL_WINDOW)).
    Stalled,
    /// The residual blew past
    /// [`DIVERGENCE_LIMIT`](crate::solver::DIVERGENCE_LIMIT) or went
    /// non-finite.
    Diverged,
    /// The preconditioner itself failed (indefinite `pᵀAp`, factor
    /// breakdown) — see the attempt's `detail`.
    Breakdown,
    /// The rung's preconditioner could not be constructed for this
    /// operator at all.
    BuildFailed,
}

impl RungOutcome {
    /// Stable lower-case label (`"converged"`, `"stalled"`, …) used in
    /// telemetry events and trace files.
    pub fn label(self) -> &'static str {
        match self {
            Self::Converged => "converged",
            Self::IterationCap => "iteration_cap",
            Self::Stalled => "stalled",
            Self::Diverged => "diverged",
            Self::Breakdown => "breakdown",
            Self::BuildFailed => "build_failed",
        }
    }
}

/// Diagnostic record of one rung's attempt inside [`SolveLadder::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct RungAttempt {
    /// Preconditioner name of the rung (`"multigrid"`, `"ic0"`, …).
    pub rung: &'static str,
    /// CG iterations the attempt consumed (0 for build failures).
    pub iterations: usize,
    /// Relative residual when the attempt ended (∞ for build failures).
    pub residual: f64,
    /// How the attempt ended.
    pub outcome: RungOutcome,
    /// Human-readable failure detail, when the rung produced one.
    pub detail: Option<String>,
}

/// Aggregate result of one [`SolveLadder::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderSummary {
    /// Iterations of the final (deciding) attempt.
    pub iterations: usize,
    /// Iterations across every attempt of this call, including failed
    /// rungs — the honest cost of the solve.
    pub total_iterations: usize,
    /// Relative residual of the final attempt.
    pub residual: f64,
    /// Whether the final attempt met the tolerance. `false` means even
    /// the last rung failed; the caller's `x` holds that rung's final
    /// iterate and should be treated as unconverged.
    pub converged: bool,
    /// Rungs retired during this call.
    pub escalations: usize,
}

#[derive(Clone)]
struct Rung {
    kind: PreconditionerKind,
    /// Built lazily on first activation, `None` until then (and forever,
    /// for rungs whose construction failed).
    precond: Option<AnyPreconditioner>,
    /// Fault-injection flag: when set, the rung's apply is corrupted (sign
    /// flip) so tests and scenarios can exercise the escalation path with
    /// a *genuine* CG failure rather than a mocked one.
    faulted: bool,
}

/// A prioritized chain of preconditioners with automatic escalation.
///
/// See the [module docs](self) for semantics. Construction builds only the
/// first usable rung; later rungs are built on demand when escalation
/// reaches them, so a healthy ladder costs exactly one factorization.
#[derive(Clone)]
pub struct SolveLadder {
    rungs: Vec<Rung>,
    active: usize,
    saved_guess: Vec<f64>,
    attempts: Vec<RungAttempt>,
    parallel_apply: Option<bool>,
    apply_threads: Option<usize>,
    /// Telemetry handle: rung-build spans, per-attempt and escalation
    /// events. Defaults to the process-wide sink; engines and tests
    /// inject their own via [`SolveLadder::set_telemetry`].
    telemetry: TelemetrySink,
}

impl std::fmt::Debug for SolveLadder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveLadder")
            .field("rungs", &self.rungs.iter().map(|r| kind_label(&r.kind)).collect::<Vec<_>>())
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl SolveLadder {
    /// Builds a ladder over `kinds`, tried in order.
    ///
    /// `strict` controls how a rung-0 construction failure is handled:
    /// strict ladders (an explicitly requested preconditioner) propagate
    /// the error so the caller hears about the exact kind it asked for;
    /// non-strict ladders (engine defaults) record a
    /// [`RungOutcome::BuildFailed`] attempt and fall through to the next
    /// rung.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::BadInput`] if `kinds` is empty,
    /// * the first rung's construction error when `strict`,
    /// * [`NumericsError::BadMatrix`] if no rung at all can be built.
    pub fn new(
        a: &Arc<CsrMatrix>,
        kinds: &[PreconditionerKind],
        strict: bool,
    ) -> Result<Self, NumericsError> {
        if kinds.is_empty() {
            return Err(NumericsError::BadInput {
                reason: "solve ladder needs at least one preconditioner kind".into(),
            });
        }
        let mut ladder = Self {
            rungs: kinds.iter().map(|&kind| Rung { kind, precond: None, faulted: false }).collect(),
            active: 0,
            saved_guess: Vec::new(),
            attempts: Vec::new(),
            parallel_apply: None,
            apply_threads: None,
            telemetry: vcsel_telemetry::global().clone(),
        };
        // Activate the first buildable rung now so construction-time
        // errors surface at construction, not mid-solve.
        loop {
            match ladder.build_rung(a, ladder.active) {
                Ok(()) => break,
                Err(err) if strict && ladder.active == 0 => return Err(err),
                Err(err) => {
                    ladder.record_build_failure(ladder.active, &err);
                    if ladder.active + 1 >= ladder.rungs.len() {
                        return Err(NumericsError::BadMatrix {
                            reason: format!(
                                "no rung of the solve ladder could be built (last: {err})"
                            ),
                        });
                    }
                    ladder.active += 1;
                }
            }
        }
        Ok(ladder)
    }

    /// Builds a ladder whose first rung adopts `prebuilt` instead of
    /// factoring anything — the engine-cache restore path: a cache hit
    /// hands the deserialized preconditioner straight to rung 0, so the
    /// ladder performs **zero** factorizations. Later rungs stay lazy and
    /// are only built if escalation ever reaches them, exactly as after
    /// [`SolveLadder::new`]. Like `new`, the ladder retains no reference
    /// to the operator.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::BadInput`] if `kinds` is empty, or if
    ///   `prebuilt`'s kind does not match `kinds[0]` (the restored bytes
    ///   answered a different escalation chain than the caller wants).
    pub fn with_prebuilt(
        prebuilt: AnyPreconditioner,
        kinds: &[PreconditionerKind],
    ) -> Result<Self, NumericsError> {
        if kinds.is_empty() {
            return Err(NumericsError::BadInput {
                reason: "solve ladder needs at least one preconditioner kind".into(),
            });
        }
        let expected = kind_label(&kinds[0]);
        if prebuilt.name() != expected {
            return Err(NumericsError::BadInput {
                reason: format!(
                    "prebuilt preconditioner is '{}' but the ladder's first rung is '{expected}'",
                    prebuilt.name()
                ),
            });
        }
        let mut rungs: Vec<Rung> =
            kinds.iter().map(|&kind| Rung { kind, precond: None, faulted: false }).collect();
        rungs[0].precond = Some(prebuilt);
        Ok(Self {
            rungs,
            active: 0,
            saved_guess: Vec::new(),
            attempts: Vec::new(),
            parallel_apply: None,
            apply_threads: None,
            telemetry: vcsel_telemetry::global().clone(),
        })
    }

    /// The preconditioner kinds of the rungs, in priority order.
    pub fn kinds(&self) -> Vec<PreconditionerKind> {
        self.rungs.iter().map(|r| r.kind).collect()
    }

    /// Name of the rung currently answering solves.
    pub fn active_name(&self) -> &'static str {
        kind_label(&self.rungs[self.active].kind)
    }

    /// The active rung's preconditioner.
    pub fn active_preconditioner(&self) -> &AnyPreconditioner {
        self.rungs[self.active].precond.as_ref().expect("active rung is always built")
    }

    /// Mutable access to the active rung's preconditioner.
    pub fn active_preconditioner_mut(&mut self) -> &mut AnyPreconditioner {
        self.rungs[self.active].precond.as_mut().expect("active rung is always built")
    }

    /// Diagnostics of every attempt made by the most recent
    /// [`solve`](SolveLadder::solve) call.
    pub fn attempts(&self) -> &[RungAttempt] {
        &self.attempts
    }

    /// Replaces the ladder's telemetry sink (engines forward theirs; tests
    /// inject private sinks so parallel tests never share buffers).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// The ladder's telemetry sink.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// The initial guess captured at the start of the most recent solve —
    /// what `x` held before any rung touched it. Steppers use it to roll
    /// their state back when even the last rung fails.
    pub fn saved_guess(&self) -> &[f64] {
        &self.saved_guess
    }

    /// Forwards [`AnyPreconditioner::set_parallel_apply`] to the active
    /// rung and remembers the setting for rungs built by later
    /// escalations. Returns whether the active rung honors it.
    pub fn set_parallel_apply(&mut self, on: bool) -> bool {
        self.parallel_apply = Some(on);
        self.active_preconditioner_mut().set_parallel_apply(on)
    }

    /// Forwards [`AnyPreconditioner::set_apply_threads`] to the active
    /// rung and remembers the setting for rungs built by later
    /// escalations. Returns whether the active rung honors it.
    pub fn set_apply_threads(&mut self, threads: usize) -> bool {
        self.apply_threads = Some(threads);
        self.active_preconditioner_mut().set_apply_threads(threads)
    }

    /// Corrupts the active rung's preconditioner apply (an
    /// order-reversing, sign-alternating `CorruptApply` wrapper) until
    /// [`clear_apply_faults`](SolveLadder::clear_apply_faults) is called.
    /// The next solve on that rung will genuinely stall or diverge and the
    /// ladder will escalate past it. Test/scenario hook.
    pub fn inject_apply_fault(&mut self) {
        self.rungs[self.active].faulted = true;
    }

    /// Clears every injected apply fault (already-retired rungs stay
    /// retired).
    pub fn clear_apply_faults(&mut self) {
        for rung in &mut self.rungs {
            rung.faulted = false;
        }
    }

    /// Solves `A x = b` through the ladder, escalating on failure.
    ///
    /// On a converged return, `x` holds the solution of the rung that
    /// succeeded. On an `Ok` with [`LadderSummary::converged`] `false`,
    /// every remaining rung failed; `x` holds the last rung's final
    /// iterate and the per-rung story is in
    /// [`attempts`](SolveLadder::attempts). Escalations persist across
    /// calls: the next solve starts on the rung that last worked.
    ///
    /// # Errors
    ///
    /// Input-shape errors ([`NumericsError::DimensionMismatch`],
    /// [`NumericsError::BadInput`]) propagate immediately — no rung can
    /// fix a malformed system. Preconditioner breakdowns
    /// ([`NumericsError::BadMatrix`]) are consumed as
    /// [`RungOutcome::Breakdown`] attempts and trigger escalation.
    pub fn solve(
        &mut self,
        a: &Arc<CsrMatrix>,
        b: &[f64],
        x: &mut [f64],
        opts: &SolveOptions,
        ws: &mut CgWorkspace,
    ) -> Result<LadderSummary, NumericsError> {
        self.attempts.clear();
        self.saved_guess.resize(x.len(), 0.0);
        self.saved_guess.copy_from_slice(x);

        // Telemetry full mode captures per-iteration residuals. The CG
        // loop only pushes into the history, so reserve the worst case
        // here — the cold path — and the hot loop never reallocates.
        ws.log_residuals = self.telemetry.capture_residuals();
        if ws.log_residuals {
            ws.residual_history.reserve(opts.max_iterations + 2);
        }

        let mut total_iterations = 0usize;
        let mut escalations = 0usize;
        loop {
            let rung = &mut self.rungs[self.active];
            let label = kind_label(&rung.kind);
            let precond = rung.precond.as_mut().expect("active rung is always built");
            match solve_on_rung(a, b, x, precond, rung.faulted, opts, ws) {
                Ok(stats) => {
                    total_iterations += stats.iterations;
                    let outcome = match stats.stop {
                        CgStop::Converged => RungOutcome::Converged,
                        CgStop::IterationCap => RungOutcome::IterationCap,
                        CgStop::Stalled => RungOutcome::Stalled,
                        CgStop::Diverged => RungOutcome::Diverged,
                    };
                    self.telemetry.instant(
                        "solver",
                        "rung_attempt",
                        &[
                            Arg::str("rung", label),
                            Arg::u64("iterations", stats.iterations as u64),
                            Arg::str("outcome", outcome.label()),
                            Arg::f64("residual", stats.residual),
                        ],
                    );
                    self.attempts.push(RungAttempt {
                        rung: label,
                        iterations: stats.iterations,
                        residual: stats.residual,
                        outcome,
                        detail: None,
                    });
                    if stats.converged {
                        return Ok(LadderSummary {
                            iterations: stats.iterations,
                            total_iterations,
                            residual: stats.residual,
                            converged: true,
                            escalations,
                        });
                    }
                }
                Err(err @ NumericsError::BadMatrix { .. }) => {
                    self.telemetry.instant(
                        "solver",
                        "rung_attempt",
                        &[Arg::str("rung", label), Arg::str("outcome", "breakdown")],
                    );
                    self.attempts.push(RungAttempt {
                        rung: label,
                        iterations: 0,
                        residual: f64::INFINITY,
                        outcome: RungOutcome::Breakdown,
                        detail: Some(err.to_string()),
                    });
                }
                Err(err) => return Err(err),
            }

            let failed_rung = self.active_name();
            if !self.escalate(a) {
                let last = self.attempts.last().expect("at least one attempt was recorded");
                return Ok(LadderSummary {
                    iterations: last.iterations,
                    total_iterations,
                    residual: last.residual,
                    converged: false,
                    escalations,
                });
            }
            escalations += 1;
            self.telemetry.instant(
                "solver",
                "escalation",
                &[Arg::str("from", failed_rung), Arg::str("to", self.active_name())],
            );
            // A failed rung may have scrambled x (a diverged iterate is
            // poison as a warm start); restart the next rung from the
            // caller's original guess.
            x.copy_from_slice(&self.saved_guess);
        }
    }

    /// Assembles a telemetry [`SolveSample`] for the most recent
    /// [`solve`](SolveLadder::solve) call: rung attempts, warm-start
    /// quality, the residual history (when captured into `ws`) and the
    /// derived work counters — one SpMV per CG iteration plus the
    /// warm-start residual evaluation, one preconditioner apply per
    /// iteration plus the initial apply, V-cycles for multigrid rungs and
    /// two triangular solves per IC(0)/SSOR apply. The caller owns the
    /// label, category, timing and system-size fields.
    pub fn telemetry_sample(&self, summary: &LadderSummary, ws: &CgWorkspace) -> SolveSample {
        let mut sample = SolveSample {
            solver: self.active_name(),
            unknowns: self.saved_guess.len() as u64,
            iterations: summary.iterations as u64,
            total_iterations: summary.total_iterations as u64,
            escalations: summary.escalations as u64,
            converged: summary.converged,
            residual: summary.residual,
            initial_residual: ws.residual_history.first().copied().unwrap_or(f64::NAN),
            ..SolveSample::default()
        };
        if ws.log_residuals {
            sample.residual_history = ws.residual_history.clone();
        }
        for attempt in &self.attempts {
            let iterations = attempt.iterations as u64;
            sample.attempts.push(AttemptSample {
                rung: attempt.rung,
                iterations,
                residual: attempt.residual,
                outcome: attempt.outcome.label(),
            });
            if matches!(attempt.outcome, RungOutcome::BuildFailed) {
                continue;
            }
            let applies = iterations + 1;
            sample.spmv += iterations + 1;
            sample.precond_applies += applies;
            match attempt.rung {
                "multigrid" => sample.vcycles += applies,
                "ic0" | "ssor" => sample.trisolves += 2 * applies,
                _ => {}
            }
        }
        sample
    }

    /// Solves `A X = B` for a block of right-hand sides on the **active
    /// rung** with [`block_preconditioned_cg`], honouring an injected
    /// apply fault exactly like the scalar path (the block runs against
    /// the same `CorruptApply` wrapper, so fault scenarios see the same
    /// stall/divergence behaviour batched as sequential).
    ///
    /// Unlike [`solve`](SolveLadder::solve) there is **no escalation**:
    /// per-column failures come back as typed [`CgSummary`] outcomes and
    /// the caller decides which columns to re-solve through the scalar
    /// ladder. This keeps batched throughput predictable — one rung, one
    /// pass — while the self-healing story stays available per column.
    ///
    /// # Errors
    ///
    /// Propagates [`block_preconditioned_cg`]'s shape/definiteness errors.
    pub fn solve_block(
        &mut self,
        a: &CsrMatrix,
        b: &BlockVector,
        x: &mut BlockVector,
        opts: &SolveOptions,
        ws: &mut BlockCgWorkspace,
    ) -> Result<Vec<CgSummary>, NumericsError> {
        let faulted = self.rungs[self.active].faulted;
        let precond =
            self.rungs[self.active].precond.as_mut().expect("active rung is always built");
        if faulted {
            let mut corrupted = CorruptApply(precond);
            block_preconditioned_cg(a, b, x, &mut corrupted, opts, ws)
        } else {
            block_preconditioned_cg(a, b, x, precond, opts, ws)
        }
    }

    /// Retires the active rung and activates the next buildable one.
    /// Returns `false` when no rung is left.
    fn escalate(&mut self, a: &Arc<CsrMatrix>) -> bool {
        let mut next = self.active + 1;
        while next < self.rungs.len() {
            match self.build_rung(a, next) {
                Ok(()) => {
                    self.active = next;
                    return true;
                }
                Err(err) => {
                    self.record_build_failure(next, &err);
                    next += 1;
                }
            }
        }
        false
    }

    fn build_rung(&mut self, a: &Arc<CsrMatrix>, index: usize) -> Result<(), NumericsError> {
        if self.rungs[index].precond.is_some() {
            return Ok(());
        }
        let mut span = self.telemetry.span("solver", "rung_build");
        span.arg("rung", vcsel_telemetry::ArgValue::Str(kind_label(&self.rungs[index].kind)));
        let mut built = self.rungs[index].kind.build_shared(a)?;
        if let Some(on) = self.parallel_apply {
            built.set_parallel_apply(on);
        }
        if let Some(threads) = self.apply_threads {
            built.set_apply_threads(threads);
        }
        self.rungs[index].precond = Some(built);
        Ok(())
    }

    fn record_build_failure(&mut self, index: usize, err: &NumericsError) {
        self.telemetry.instant(
            "solver",
            "rung_attempt",
            &[
                Arg::str("rung", kind_label(&self.rungs[index].kind)),
                Arg::str("outcome", "build_failed"),
            ],
        );
        self.attempts.push(RungAttempt {
            rung: kind_label(&self.rungs[index].kind),
            iterations: 0,
            residual: f64::INFINITY,
            outcome: RungOutcome::BuildFailed,
            detail: Some(err.to_string()),
        });
    }
}

/// Wrapper that models a corrupted preconditioner apply: the healthy
/// result is reversed and every other entry sign-flipped, so the effective
/// `M⁻¹` is neither symmetric nor definite. (A uniform sign flip would not
/// do — CG is invariant under `M → cM`, the flipped `α` and `p` cancel.)
/// CG's search directions lose conjugacy and the residual stalls or runs
/// away — a real failure for the stall/divergence detectors to catch, not
/// a mock.
struct CorruptApply<'a>(&'a mut AnyPreconditioner);

impl Preconditioner for CorruptApply<'_> {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        self.0.apply(r, z);
        z.reverse();
        for zi in z.iter_mut().skip(1).step_by(2) {
            *zi = -*zi;
        }
    }

    fn name(&self) -> &'static str {
        "fault-injected"
    }
}

/// Runs one rung's CG attempt. Registered as a hot path (lint.toml): it
/// sits between the stepper loop and [`preconditioned_cg`], so it must not
/// allocate — all diagnostics recording happens in the caller.
fn solve_on_rung(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    precond: &mut AnyPreconditioner,
    faulted: bool,
    opts: &SolveOptions,
    ws: &mut CgWorkspace,
) -> Result<CgSummary, NumericsError> {
    if faulted {
        let mut corrupted = CorruptApply(precond);
        preconditioned_cg(a, b, x, &mut corrupted, opts, ws)
    } else {
        preconditioned_cg(a, b, x, precond, opts, ws)
    }
}

fn kind_label(kind: &PreconditionerKind) -> &'static str {
    match kind {
        PreconditionerKind::Jacobi => "jacobi",
        PreconditionerKind::IncompleteCholesky => "ic0",
        PreconditionerKind::Ssor { .. } => "ssor",
        PreconditionerKind::Multigrid { .. } => "multigrid",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    /// 1-D Laplacian with Dirichlet ends: SPD, well conditioned at n = 50.
    fn laplacian(n: usize) -> Arc<CsrMatrix> {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        Arc::new(b.build())
    }

    const CHAIN: &[PreconditionerKind] =
        &[PreconditionerKind::IncompleteCholesky, PreconditionerKind::Jacobi];

    #[test]
    fn healthy_ladder_converges_on_first_rung() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let mut x = vec![0.0; 50];
        let mut ladder = SolveLadder::new(&a, CHAIN, true).unwrap();
        let mut ws = CgWorkspace::new();
        let summary = ladder.solve(&a, &b, &mut x, &SolveOptions::default(), &mut ws).unwrap();
        assert!(summary.converged);
        assert_eq!(summary.escalations, 0);
        assert_eq!(ladder.attempts().len(), 1);
        assert_eq!(ladder.attempts()[0].outcome, RungOutcome::Converged);
        assert_eq!(ladder.active_name(), "ic0");
    }

    #[test]
    fn injected_fault_escalates_and_recovers_to_same_answer() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let opts = SolveOptions::default();
        let mut ws = CgWorkspace::new();

        let mut healthy = vec![0.0; 50];
        let mut ladder = SolveLadder::new(&a, CHAIN, true).unwrap();
        ladder.solve(&a, &b, &mut healthy, &opts, &mut ws).unwrap();

        let mut faulted = vec![0.0; 50];
        let mut ladder = SolveLadder::new(&a, CHAIN, true).unwrap();
        ladder.inject_apply_fault();
        let summary = ladder.solve(&a, &b, &mut faulted, &opts, &mut ws).unwrap();
        assert!(summary.converged, "ladder must recover through the Jacobi rung");
        assert_eq!(summary.escalations, 1);
        assert_eq!(ladder.active_name(), "jacobi");
        let first = &ladder.attempts()[0];
        assert_eq!(first.rung, "ic0");
        assert!(
            matches!(first.outcome, RungOutcome::Stalled | RungOutcome::Diverged),
            "corrupted apply must be caught by the stall/divergence detectors, got {:?}",
            first.outcome
        );
        for (h, f) in healthy.iter().zip(&faulted) {
            assert!((h - f).abs() <= 1e-9 * h.abs().max(1.0));
        }
    }

    #[test]
    fn escalation_is_sticky_across_solves() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let opts = SolveOptions::default();
        let mut ws = CgWorkspace::new();
        let mut x = vec![0.0; 50];
        let mut ladder = SolveLadder::new(&a, CHAIN, true).unwrap();
        ladder.inject_apply_fault();
        ladder.solve(&a, &b, &mut x, &opts, &mut ws).unwrap();
        assert_eq!(ladder.active_name(), "jacobi");
        // The retired IC(0) rung stays retired even after the fault clears.
        ladder.clear_apply_faults();
        x.fill(0.0);
        let summary = ladder.solve(&a, &b, &mut x, &opts, &mut ws).unwrap();
        assert!(summary.converged);
        assert_eq!(summary.escalations, 0);
        assert_eq!(ladder.active_name(), "jacobi");
        assert_eq!(ladder.attempts().len(), 1);
    }

    #[test]
    fn last_rung_failure_returns_unconverged_summary() {
        let a = laplacian(50);
        let b = vec![1.0; 50];
        let opts = SolveOptions::default();
        let mut ws = CgWorkspace::new();
        let mut x = vec![0.0; 50];
        // Single-rung ladder with its only rung corrupted: nothing to
        // escalate to, so the failure must surface as a typed summary.
        let mut ladder = SolveLadder::new(&a, &[PreconditionerKind::Jacobi], true).unwrap();
        ladder.inject_apply_fault();
        let summary = ladder.solve(&a, &b, &mut x, &opts, &mut ws).unwrap();
        assert!(!summary.converged);
        assert_eq!(summary.escalations, 0);
        assert_eq!(ladder.attempts().len(), 1);
    }

    #[test]
    fn strict_ladder_propagates_rung_zero_build_errors() {
        let a = laplacian(10);
        let bad = &[PreconditionerKind::Ssor { omega: 5.0 }, PreconditionerKind::Jacobi];
        assert!(SolveLadder::new(&a, bad, true).is_err());
        // Non-strict falls through to Jacobi and records the failure.
        let ladder = SolveLadder::new(&a, bad, false).unwrap();
        assert_eq!(ladder.active_name(), "jacobi");
        assert_eq!(ladder.attempts()[0].outcome, RungOutcome::BuildFailed);
    }

    #[test]
    fn ladder_does_not_retain_the_operator() {
        let a = laplacian(10);
        let _ladder = SolveLadder::new(&a, &[PreconditionerKind::Jacobi], true).unwrap();
        // Jacobi keeps only the inverse diagonal; the ladder itself must
        // not clone the Arc, or engines sharing one operator would see
        // phantom owners.
        assert_eq!(Arc::strong_count(&a), 1);
    }
}
