//! Numerical kernels for the vcsel-onoc toolchain.
//!
//! The thermal simulator in `vcsel-thermal` discretizes the steady-state
//! heat equation with the Finite Volume Method, producing large sparse
//! symmetric-positive-definite systems. This crate provides everything that
//! solver needs — and the small interpolation/optimization helpers the device
//! models and design-space exploration use — without pulling in a heavyweight
//! linear-algebra dependency:
//!
//! * [`CsrMatrix`]: compressed-sparse-row matrices with a triplet builder
//!   and a row-partitioned, nnz-balanced threaded SpMV for large systems,
//! * [`solver`]: preconditioned conjugate gradient with warm starts and
//!   caller-owned scratch buffers, plus SOR/Gauss-Seidel and BiCGSTAB
//!   cross-check solvers,
//! * [`precond`]: Jacobi, SSOR and IC(0) incomplete-Cholesky
//!   preconditioners behind the [`Preconditioner`] trait. Engines that
//!   own their matrix behind an [`std::sync::Arc`] build through
//!   [`PreconditionerKind::build_shared`], so the operator-holding
//!   preconditioners alias the caller's allocation instead of cloning it.
//!   IC(0) analyzes its factor into dependency levels at factorization
//!   time and applies the two triangular solves as level-scheduled
//!   (wavefront) parallel sweeps on large systems — bitwise-deterministic
//!   for every worker count, exact-serial below the SpMV size gate,
//! * [`block_solver`]: multi-RHS block CG — k independent recurrences in
//!   lockstep over a [`BlockVector`] bundle, one operator stream per
//!   iteration shared by every active column, converged columns deflated
//!   from the sweep — the engine behind batched design-space sweeps,
//! * [`multigrid`]: a smoothed-aggregation algebraic multigrid hierarchy
//!   (V-/F-cycles, Galerkin coarse operators, dense coarsest solve,
//!   size-gated threaded smoothers and transfers) usable standalone or as
//!   a mesh-independent CG preconditioner,
//! * [`artifact`]: a dependency-free, versioned, checksummed binary codec
//!   for solver-engine state — `to_artifact`/`from_artifact` on
//!   [`CsrMatrix`], [`IncompleteCholesky`] and [`MultigridHierarchy`] —
//!   behind the persistent engine cache, with typed [`ArtifactError`]
//!   failures and full structural revalidation on restore,
//! * [`Interp1d`] / [`Interp2d`]: piecewise-linear lookup tables (the paper's
//!   "VCSEL model library" is consumed in this form),
//! * [`golden_section_min`] / [`grid_argmin`]: 1-D minimizers used by the
//!   heater-power design-space exploration,
//! * [`Summary`]: descriptive statistics for thermal maps.
//!
//! # Example
//!
//! ```
//! use vcsel_numerics::{CsrMatrix, TripletBuilder, solver};
//!
//! // Solve the 1-D Poisson system  [2 -1; -1 2] x = [1, 1]  (x = [1, 1]).
//! let mut b = TripletBuilder::new(2, 2);
//! b.add(0, 0, 2.0); b.add(0, 1, -1.0);
//! b.add(1, 0, -1.0); b.add(1, 1, 2.0);
//! let a = b.build();
//! let x = solver::conjugate_gradient(&a, &[1.0, 1.0], &solver::SolveOptions::default())?;
//! assert!((x.solution[0] - 1.0).abs() < 1e-8);
//! # Ok::<(), vcsel_numerics::NumericsError>(())
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

pub mod artifact;
pub mod block_solver;
mod error;
mod interp;
pub mod ladder;
pub mod multigrid;
mod optimize;
pub mod precond;
pub mod solver;
mod sparse;
pub mod special;
mod stats;

pub use artifact::{content_hash, ArtifactError, ArtifactReader, ArtifactWriter, ContentHasher};
pub use block_solver::{block_preconditioned_cg, BlockCgWorkspace, BlockVector};
pub use error::NumericsError;
pub use interp::{Interp1d, Interp2d};
pub use ladder::{LadderSummary, RungAttempt, RungOutcome, SolveLadder};
pub use multigrid::{
    CycleKind, MgWorkspace, Multigrid, MultigridConfig, MultigridHierarchy, SmootherKind,
};
pub use optimize::{golden_section_min, grid_argmin, Minimum};
pub use precond::{
    AnyPreconditioner, IncompleteCholesky, Jacobi, LevelScheduleStats, Preconditioner,
    PreconditionerKind, Ssor,
};
pub use sparse::{hardware_threads, CsrMatrix, TripletBuilder};
pub use stats::Summary;
