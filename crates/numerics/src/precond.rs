//! Preconditioners for the conjugate-gradient solver.
//!
//! The FVM conduction matrices this workspace produces are symmetric
//! positive definite and diagonally dominant, but far from well-conditioned:
//! the paper's meshes mix 5–60 µm cells over the optical network interfaces
//! with millimetre cells over the package, so face conductances span four
//! orders of magnitude. Four preconditioners are provided, in increasing
//! setup cost and decreasing iteration count:
//!
//! * [`Jacobi`] — `M = diag(A)`; free to build, the seed behaviour,
//! * [`Ssor`] — symmetric SOR splitting; no factorization, uses `A` itself,
//! * [`IncompleteCholesky`] — IC(0), a zero-fill `L·Lᵀ ≈ A` factorization;
//!   the strongest *one-level* option and the default for cached transient
//!   engines, because one factorization amortizes over many right-hand
//!   sides. Large factors apply their two triangular solves as
//!   level-scheduled (wavefront) parallel sweeps — see the type docs,
//! * [`Multigrid`] — a smoothed-aggregation algebraic
//!   multigrid V-cycle (see [`crate::multigrid`]); the only option whose
//!   iteration counts stay (nearly) mesh-independent, and the default for
//!   large steady solves.
//!
//! All applications are allocation-free so they can sit inside the CG
//! iteration loop.

use std::sync::Arc;

use crate::multigrid::{Multigrid, MultigridConfig};
use crate::sparse::{
    hardware_threads, nnz_balanced_chunk, SharedF64, SpinBarrier, WavefrontFactor,
};
use crate::{CsrMatrix, NumericsError};

/// Applies `z = M⁻¹ r` for some SPD approximation `M ≈ A`.
///
/// Implementations must be allocation-free in [`Preconditioner::apply`] so
/// the solver's inner loop stays allocation-free; `&mut self` exists for
/// implementations that cycle internal workspaces (multigrid), not for
/// changing the operator.
///
/// # Example
///
/// Select a kind, build it for a matrix, and hand it to CG — the same
/// three steps every cached solve engine performs:
///
/// ```
/// use vcsel_numerics::solver::{preconditioned_cg, CgWorkspace, SolveOptions};
/// use vcsel_numerics::{Preconditioner, PreconditionerKind, TripletBuilder};
///
/// let n = 40;
/// let mut b = TripletBuilder::new(n, n);
/// for i in 0..n {
///     b.add(i, i, 2.001);
///     if i > 0 { b.add(i, i - 1, -1.0); }
///     if i + 1 < n { b.add(i, i + 1, -1.0); }
/// }
/// let a = b.build();
/// let mut m = PreconditionerKind::Ssor { omega: 1.2 }.build(&a)?;
/// assert_eq!(m.name(), "ssor");
///
/// let rhs = vec![1.0; n];
/// let mut x = vec![0.0; n];
/// let mut ws = CgWorkspace::with_capacity(n);
/// let stats = preconditioned_cg(&a, &rhs, &mut x, &mut m, &SolveOptions::default(), &mut ws)?;
/// assert!(stats.residual <= 1e-9);
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
pub trait Preconditioner {
    /// Computes `z = M⁻¹ r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `z` have the wrong length.
    fn apply(&mut self, r: &[f64], z: &mut [f64]);

    /// Short identifier for benches and logs (`"jacobi"`, `"ic0"`, …).
    fn name(&self) -> &'static str;
}

fn checked_diagonal(a: &CsrMatrix) -> Result<Vec<f64>, NumericsError> {
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("non-positive or non-finite diagonal entry {} at row {i}", diag[i]),
        });
    }
    Ok(diag)
}

/// Diagonal (Jacobi) preconditioner: `M = diag(A)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Element count above which [`Jacobi::apply`] splits the scaling loop
    /// across threads. The result is bitwise identical to the serial loop
    /// (each entry is one independent multiply), so the gate is purely a
    /// spawn-cost amortization threshold.
    pub const PARALLEL_LEN_THRESHOLD: usize = 1 << 18;

    /// Extracts the inverse diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadMatrix`] if `a` is not square or has a
    /// non-positive or non-finite diagonal entry.
    pub fn new(a: &CsrMatrix) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            });
        }
        Ok(Self { inv_diag: checked_diagonal(a)?.iter().map(|&d| 1.0 / d).collect() })
    }
}

impl Jacobi {
    /// The scaling loop with an explicit worker count (1 = in-place
    /// serial). Chunk results are independent, so every count produces
    /// bitwise-identical output.
    fn apply_with_threads(&self, r: &[f64], z: &mut [f64], threads: usize) {
        let n = self.inv_diag.len();
        assert_eq!(r.len(), n);
        assert_eq!(z.len(), n);
        if threads < 2 {
            for i in 0..n {
                z[i] = r[i] * self.inv_diag[i];
            }
            return;
        }
        // Equal chunks are already balanced (one multiply per element).
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for ((zc, rc), dc) in
                z.chunks_mut(chunk).zip(r.chunks(chunk)).zip(self.inv_diag.chunks(chunk))
            {
                scope.spawn(move || {
                    for ((zi, ri), di) in zc.iter_mut().zip(rc).zip(dc) {
                        *zi = ri * di;
                    }
                });
            }
        });
    }
}

impl Preconditioner for Jacobi {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        let threads = if self.inv_diag.len() < Self::PARALLEL_LEN_THRESHOLD {
            1
        } else {
            hardware_threads().min(CsrMatrix::MAX_SPMV_THREADS)
        };
        self.apply_with_threads(r, z, threads);
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Level-set (wavefront) schedule of an IC(0) factor: the rows of `L`
/// partitioned into dependency levels — a row's level is one past the
/// deepest level among its lower-triangular neighbours, so all rows of one
/// level are mutually independent in the forward solve. Processing the same
/// levels back-to-front is a valid schedule for the transposed (backward)
/// solve: `l_ji ≠ 0` with `j > i` forces `level(j) > level(i)`, so every
/// dependency of a backward row lives in a later level.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LevelSchedule {
    /// `levels + 1` boundaries into the forward permuted rows.
    pub(crate) fwd_level_ptr: Vec<usize>,
    /// `L` with rows gathered into level order (within a level: ascending
    /// natural index, so the schedule is deterministic).
    pub(crate) fwd: WavefrontFactor,
    /// `levels + 1` boundaries into the backward permuted rows.
    pub(crate) bwd_level_ptr: Vec<usize>,
    /// `Lᵀ` with rows gathered into backward processing order (levels
    /// descending, ascending natural index within a level).
    pub(crate) bwd: WavefrontFactor,
}

impl LevelSchedule {
    /// Analyzes the factor's dependency levels and gathers both triangular
    /// factors into wavefront processing order. `O(nnz)` time and two
    /// permuted copies of the factor in memory.
    fn analyze(row_ptr: &[usize], col_idx: &[u32], values: &[f64]) -> Self {
        let n = row_ptr.len() - 1;
        let mut level_of = vec![0u32; n];
        let mut levels = 0usize;
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            let mut lvl = 0;
            for &c in &col_idx[lo..hi - 1] {
                lvl = lvl.max(level_of[c as usize] + 1);
            }
            level_of[i] = lvl;
            levels = levels.max(lvl as usize + 1);
        }

        // Counting sort: forward order = (level ascending, row ascending).
        let mut fwd_level_ptr = vec![0usize; levels + 1];
        for &l in &level_of {
            fwd_level_ptr[l as usize + 1] += 1;
        }
        for l in 0..levels {
            fwd_level_ptr[l + 1] += fwd_level_ptr[l];
        }
        let mut order = vec![0u32; n];
        let mut next = fwd_level_ptr.clone();
        for (i, &l) in level_of.iter().enumerate() {
            order[next[l as usize]] = i as u32;
            next[l as usize] += 1;
        }
        let fwd = WavefrontFactor::gather(&order, row_ptr, col_idx, values);

        // Lᵀ in CSR (upper triangular, diagonal first in each row), then
        // gathered in backward processing order: levels descending.
        let (t_ptr, t_idx, t_val) = transpose_triangular(row_ptr, col_idx, values);
        let mut bwd_order = Vec::with_capacity(n);
        let mut bwd_level_ptr = Vec::with_capacity(levels + 1);
        bwd_level_ptr.push(0usize);
        for l in (0..levels).rev() {
            bwd_order.extend_from_slice(&order[fwd_level_ptr[l]..fwd_level_ptr[l + 1]]);
            bwd_level_ptr.push(bwd_order.len());
        }
        let bwd = WavefrontFactor::gather(&bwd_order, &t_ptr, &t_idx, &t_val);

        Self { fwd_level_ptr, fwd, bwd_level_ptr, bwd }
    }

    fn levels(&self) -> usize {
        self.fwd_level_ptr.len() - 1
    }
}

/// Rows per dependency level of a triangular factor (diagonal last per
/// row), without materializing the schedule — the cheap form behind
/// [`IncompleteCholesky::level_stats`].
fn level_row_counts(row_ptr: &[usize], col_idx: &[u32]) -> Vec<usize> {
    let n = row_ptr.len() - 1;
    let mut level_of = vec![0u32; n];
    let mut counts: Vec<usize> = Vec::new();
    for i in 0..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        let mut lvl = 0;
        for &c in &col_idx[lo..hi - 1] {
            lvl = lvl.max(level_of[c as usize] + 1);
        }
        level_of[i] = lvl;
        if counts.len() <= lvl as usize {
            counts.resize(lvl as usize + 1, 0);
        }
        counts[lvl as usize] += 1;
    }
    counts
}

/// Transposes a square triangular CSR factor (counting sort over columns,
/// `O(nnz)`; source rows ascending keep each output row's columns
/// ascending).
fn transpose_triangular(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let n = row_ptr.len() - 1;
    let mut t_ptr = vec![0usize; n + 1];
    for &c in col_idx {
        t_ptr[c as usize + 1] += 1;
    }
    for i in 0..n {
        t_ptr[i + 1] += t_ptr[i];
    }
    let mut t_idx = vec![0u32; values.len()];
    let mut t_val = vec![0.0; values.len()];
    let mut next = t_ptr.clone();
    for r in 0..n {
        for k in row_ptr[r]..row_ptr[r + 1] {
            let c = col_idx[k] as usize;
            t_idx[next[c]] = r as u32;
            t_val[next[c]] = values[k];
            next[c] += 1;
        }
    }
    (t_ptr, t_idx, t_val)
}

/// Shape statistics of an IC(0) level schedule — how much wavefront
/// parallelism the factor exposes. Reported by `perf_record`'s
/// `trisolve_fast` section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelScheduleStats {
    /// Number of dependency levels (sequential stages per sweep).
    pub levels: usize,
    /// Rows of the widest level (peak available parallelism).
    pub max_level_rows: usize,
    /// Mean rows per level (`n / levels`).
    pub mean_level_rows: f64,
}

/// Zero-fill incomplete Cholesky factorization IC(0): `L·Lᵀ ≈ A` with `L`
/// restricted to the sparsity pattern of the lower triangle of `A`.
///
/// For the M-matrices FVM conduction assembly produces the factorization
/// exists and is stable; applying it costs two sparse triangular solves,
/// roughly the price of one extra matrix-vector product per CG iteration,
/// and typically cuts the iteration count by 2–6× on anisotropic meshes.
///
/// # Level-scheduled parallel application
///
/// The two triangular solves are inherently sequential row-by-row, but not
/// row-by-row *dense*: a row only depends on the rows its off-diagonal
/// columns name. The factor is analyzed once into dependency **levels**
/// (rows whose lower-triangular neighbours all live in earlier levels) —
/// lazily at the first threaded application, cached alongside the factor
/// from then on, so serial-only consumers never pay the analysis. Rows of
/// one level solve in parallel, dispatched as contiguous nnz-balanced
/// blocks of a level-permuted copy of the factor over the same
/// scoped-thread partitioning the SpMV gate uses. Each row's
/// arithmetic is identical to the serial gather kernel, so the parallel
/// apply is **bitwise deterministic** for every worker count.
///
/// The threaded path engages only when all of the following hold, and runs
/// the exact serial solves otherwise:
///
/// * [`IncompleteCholesky::set_parallel_apply`] is on (the default; the
///   `false` setting is the measurable A/B baseline, mirroring
///   [`MultigridConfig::parallel_sweeps`]),
/// * at least two workers are available ([`hardware_threads`], or the
///   explicit [`IncompleteCholesky::set_apply_threads`] override), and
/// * one apply's work (both sweeps, ≈ nnz of `A`) reaches
///   [`CsrMatrix::PARALLEL_NNZ_THRESHOLD`] — small factors stay serial so
///   test-scale meshes never pay thread-spawn cost. An explicit
///   [`IncompleteCholesky::set_apply_threads`] override bypasses the size
///   gate (tests force multi-level scheduling on tiny systems with it).
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    /// CSR of `L` (lower triangular, diagonal stored last in each row,
    /// columns ascending) — the serial-apply form.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Wavefront execution plan, built when the parallel path is in play
    /// (boxed so the serial-only factor stays lean inside
    /// [`AnyPreconditioner`]).
    schedule: Option<Box<LevelSchedule>>,
    /// Scratch vector the wavefront workers share (length `n` whenever
    /// `schedule` is present), so `apply` stays allocation-free.
    scratch: SharedF64,
    /// The A/B knob: `false` forces the serial solves everywhere.
    parallel_apply: bool,
    /// Explicit worker-count override (benches and forced-schedule tests);
    /// `None` means [`hardware_threads`] capped like the threaded SpMV.
    apply_threads: Option<usize>,
    /// Applications run so far (each is one forward + one backward
    /// triangular sweep) — a plain counter read by telemetry, incremented
    /// in the apply dispatcher, never inside the sweep loops.
    applies: u64,
}

impl PartialEq for IncompleteCholesky {
    fn eq(&self, other: &Self) -> bool {
        // The schedule and scratch are derived from the factor, and the
        // apply counter is run history, not identity; equality is the
        // factor plus the apply configuration.
        self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
            && self.parallel_apply == other.parallel_apply
            && self.apply_threads == other.apply_threads
    }
}

impl IncompleteCholesky {
    /// Factors the lower triangle of `a` in place of a full Cholesky.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadMatrix`] if `a` is not square, a row has
    /// no diagonal entry, or a pivot turns non-positive (breakdown — `a` is
    /// not SPD enough for IC(0)).
    pub fn new(a: &CsrMatrix) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        row_ptr.push(0);

        for i in 0..n {
            let row_start = values.len();
            let mut saw_diagonal = false;
            for (j, aij) in a.row(i) {
                if j > i {
                    continue;
                }
                // s = a_ij − Σ_{k<j} l_ik · l_jk over the already-built rows
                // i (entries so far this row) and j, both column-ascending.
                let mut s = aij;
                let (mut p, mut q) = (row_start, row_ptr[j]);
                // Row j is complete for j < i; for the diagonal (j == i) the
                // partner row is the one being built right now.
                let (p_end, q_end) =
                    (values.len(), if j < i { row_ptr[j + 1] } else { values.len() });
                while p < p_end && q < q_end {
                    let (cp, cq) = (col_idx[p], col_idx[q]);
                    if cp as usize >= j || cq as usize >= j {
                        break;
                    }
                    match cp.cmp(&cq) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            s -= values[p] * values[q];
                            p += 1;
                            q += 1;
                        }
                    }
                }
                if j < i {
                    // Diagonal of row j is its last stored entry.
                    let djj = values[row_ptr[j + 1] - 1];
                    col_idx.push(j as u32);
                    values.push(s / djj);
                } else {
                    if !(s > 0.0) || !s.is_finite() {
                        return Err(NumericsError::BadMatrix {
                            reason: format!(
                                "IC(0) breakdown at row {i}: pivot {s:.3e} is not positive"
                            ),
                        });
                    }
                    col_idx.push(i as u32);
                    values.push(s.sqrt());
                    saw_diagonal = true;
                }
            }
            if !saw_diagonal {
                return Err(NumericsError::BadMatrix {
                    reason: format!("row {i} has no diagonal entry; cannot factor"),
                });
            }
            row_ptr.push(values.len());
        }

        // The level schedule is built lazily on the first parallel apply,
        // so serial-only consumers (explicit baselines, single-core
        // machines, below-gate factors) never pay its analysis or memory.
        Ok(Self {
            row_ptr,
            col_idx,
            values,
            schedule: None,
            scratch: SharedF64::new(0),
            parallel_apply: true,
            apply_threads: None,
            applies: 0,
        })
    }

    /// Applications run since construction: each apply is one forward and
    /// one backward triangular sweep, so telemetry counts `2 × applies`
    /// triangular solves.
    pub fn applies(&self) -> u64 {
        self.applies
    }

    /// The serial factor arrays `(row_ptr, col_idx, values)` — lower
    /// triangular, diagonal stored last per row (the artifact codec's
    /// source of truth).
    pub(crate) fn factor_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// The level schedule, when one has been built (lazily, on the first
    /// parallel apply).
    pub(crate) fn schedule_ref(&self) -> Option<&LevelSchedule> {
        self.schedule.as_deref()
    }

    /// The apply configuration `(parallel_apply, apply_threads)` the
    /// artifact codec persists alongside the factor.
    pub(crate) fn apply_config(&self) -> (bool, Option<usize>) {
        (self.parallel_apply, self.apply_threads)
    }

    /// Reassembles a factor from artifact-validated parts: the apply
    /// counter restarts at zero, scratch is sized for the carried schedule,
    /// and — matching [`IncompleteCholesky::set_parallel_apply`] — a
    /// schedule the current configuration would never use is dropped.
    pub(crate) fn from_restored_parts(
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
        schedule: Option<LevelSchedule>,
        parallel_apply: bool,
        apply_threads: Option<usize>,
    ) -> Self {
        let n = row_ptr.len().saturating_sub(1);
        let scratch = if schedule.is_some() { SharedF64::new(n) } else { SharedF64::new(0) };
        let mut restored = Self {
            row_ptr,
            col_idx,
            values,
            schedule: schedule.map(Box::new),
            scratch,
            parallel_apply,
            apply_threads,
            applies: 0,
        };
        restored.drop_stale_schedule();
        restored
    }

    /// Enables/disables the level-scheduled parallel triangular solves
    /// (builder style); `false` forces the exact serial solves everywhere —
    /// the A/B baseline, mirroring [`MultigridConfig::parallel_sweeps`].
    /// On by default (the size gate still applies).
    #[must_use]
    pub fn with_parallel_apply(mut self, on: bool) -> Self {
        self.set_parallel_apply(on);
        self
    }

    /// In-place form of [`IncompleteCholesky::with_parallel_apply`], for
    /// factors already cached inside a solve engine.
    pub fn set_parallel_apply(&mut self, on: bool) {
        self.parallel_apply = on;
        self.drop_stale_schedule();
    }

    /// Pins the wavefront worker count (builder style), clamped to ≥ 1. An
    /// explicit count bypasses the [`CsrMatrix::PARALLEL_NNZ_THRESHOLD`]
    /// size gate, so tests can force multi-level scheduling (and real
    /// thread spawning) on tiny systems even on one core.
    #[must_use]
    pub fn with_apply_threads(mut self, threads: usize) -> Self {
        self.set_apply_threads(threads);
        self
    }

    /// In-place form of [`IncompleteCholesky::with_apply_threads`].
    pub fn set_apply_threads(&mut self, threads: usize) {
        self.apply_threads = Some(threads.max(1));
        self.drop_stale_schedule();
    }

    /// The worker count an apply will use right now: 1 on the serial path,
    /// the (possibly pinned) thread count on the wavefront path.
    pub fn apply_threads(&self) -> usize {
        if self.runs_parallel() {
            self.configured_threads()
        } else {
            1
        }
    }

    /// Whether the next apply takes the level-scheduled parallel path
    /// (the schedule itself is built lazily on that first apply).
    pub fn runs_parallel(&self) -> bool {
        self.wants_parallel()
    }

    /// Level-schedule shape statistics (levels, widest level, mean width).
    /// Reads the stored schedule when present, otherwise counts level
    /// widths directly — `O(nnz)` time, `O(n)` memory, no permuted factor
    /// copies.
    pub fn level_stats(&self) -> LevelScheduleStats {
        let n = self.row_ptr.len() - 1;
        let counts = match &self.schedule {
            Some(s) => s.fwd_level_ptr.windows(2).map(|w| w[1] - w[0]).collect(),
            None => level_row_counts(&self.row_ptr, &self.col_idx),
        };
        let levels = counts.len();
        let max = counts.into_iter().max().unwrap_or(0);
        LevelScheduleStats {
            levels,
            max_level_rows: max,
            mean_level_rows: n as f64 / levels.max(1) as f64,
        }
    }

    fn configured_threads(&self) -> usize {
        self.apply_threads
            .unwrap_or_else(|| hardware_threads().min(CsrMatrix::MAX_SPMV_THREADS))
            .max(1)
    }

    /// The auto policy: both sweeps together touch ≈ nnz(A) stored values,
    /// so the parallel path engages at the same total work as the threaded
    /// SpMV. A pinned thread count bypasses the gate.
    fn wants_parallel(&self) -> bool {
        self.parallel_apply
            && self.configured_threads() >= 2
            && (self.apply_threads.is_some()
                || 2 * self.values.len() >= CsrMatrix::PARALLEL_NNZ_THRESHOLD)
    }

    /// Frees the schedule (and its scratch) when the current configuration
    /// no longer wants the parallel path; re-enabling rebuilds lazily.
    fn drop_stale_schedule(&mut self) {
        if !self.wants_parallel() {
            self.schedule = None;
            self.scratch = SharedF64::new(0);
        }
    }

    /// Builds the level schedule on first parallel use.
    fn ensure_schedule(&mut self) {
        if self.schedule.is_none() {
            self.schedule =
                Some(Box::new(LevelSchedule::analyze(&self.row_ptr, &self.col_idx, &self.values)));
            self.scratch = SharedF64::new(self.row_ptr.len() - 1);
        }
    }

    /// The exact serial solves (gather forward, scatter backward in place).
    fn apply_serial(&self, r: &[f64], z: &mut [f64]) {
        let n = self.row_ptr.len() - 1;
        // Forward solve L y = r (gather; y lands in z).
        for i in 0..n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut s = r[i];
            for k in lo..hi - 1 {
                s -= self.values[k] * z[self.col_idx[k] as usize];
            }
            z[i] = s / self.values[hi - 1];
        }
        // Backward solve Lᵀ x = y in place (scatter: once row i is final,
        // push its contribution into every earlier unknown).
        for i in (0..n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            z[i] /= self.values[hi - 1];
            let xi = z[i];
            for k in lo..hi - 1 {
                z[self.col_idx[k] as usize] -= self.values[k] * xi;
            }
        }
    }

    /// The level-scheduled solves: one persistent worker pool per apply
    /// (not per level), with a spin barrier between levels. Workers carve
    /// each level into nnz-balanced contiguous blocks of the permuted
    /// factor; the barrier (and finally the scope join) orders the levels.
    fn apply_wavefront(&self, r: &[f64], z: &mut [f64], threads: usize) {
        let schedule = self.schedule.as_ref().expect("wavefront apply needs a schedule");
        let y = &self.scratch;
        debug_assert_eq!(y.len(), z.len());
        let levels = schedule.levels();
        let barrier = SpinBarrier::new(threads);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let barrier = &barrier;
                scope.spawn(move || {
                    for level in 0..levels {
                        let (ls, le) =
                            (schedule.fwd_level_ptr[level], schedule.fwd_level_ptr[level + 1]);
                        let (lo, hi) =
                            nnz_balanced_chunk(&schedule.fwd.row_ptr, ls, le, worker, threads);
                        schedule.fwd.solve_lower_block(lo, hi, r, y);
                        barrier.wait();
                    }
                    for level in 0..levels {
                        let (ls, le) =
                            (schedule.bwd_level_ptr[level], schedule.bwd_level_ptr[level + 1]);
                        let (lo, hi) =
                            nnz_balanced_chunk(&schedule.bwd.row_ptr, ls, le, worker, threads);
                        schedule.bwd.solve_upper_block(lo, hi, y);
                        if level + 1 < levels {
                            barrier.wait();
                        }
                    }
                });
            }
        });
        for (i, zi) in z.iter_mut().enumerate() {
            *zi = y.load(i);
        }
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        let n = self.row_ptr.len() - 1;
        assert_eq!(r.len(), n);
        assert_eq!(z.len(), n);
        self.applies += 1;
        if self.runs_parallel() {
            self.ensure_schedule();
            self.apply_wavefront(r, z, self.configured_threads());
        } else {
            self.apply_serial(r, z);
        }
    }

    fn name(&self) -> &'static str {
        "ic0"
    }
}

/// Symmetric SOR preconditioner,
/// `M = (D + ωL) D⁻¹ (D + ωLᵀ) / (ω(2 − ω))`.
///
/// Needs no factorization — the two triangular solves run directly on `A`,
/// held behind an [`Arc`] so a solve engine, a multigrid level and this
/// preconditioner can all reference **one** copy of the operator — and
/// sits between Jacobi and IC(0) in strength.
///
/// # Band-parallel variant
///
/// Triangular solves are inherently sequential, so the exact SSOR sweep
/// cannot be threaded. [`Ssor::shared_banded`] instead partitions the rows
/// into contiguous nnz-balanced bands (the same partition as
/// [`CsrMatrix::mul_vec_into_threaded`]) and applies the SSOR splitting of
/// each band's *diagonal block* independently — additive block-SSOR.
/// Couplings that cross a band boundary are dropped from `M` (never from
/// `A`), which keeps `M` block-diagonal with SPD blocks: still a legal CG
/// preconditioner, marginally weaker than exact SSOR, and each band solves
/// on its own thread. With one band the sweep is bitwise-identical to the
/// classic serial SSOR.
#[derive(Debug, Clone, PartialEq)]
pub struct Ssor {
    a: Arc<CsrMatrix>,
    diag: Vec<f64>,
    omega: f64,
    /// `bands + 1` ascending row boundaries; two entries = exact serial
    /// SSOR, more = additive block-SSOR solved band-parallel.
    band_bounds: Vec<usize>,
}

impl Ssor {
    /// Builds the exact (serial, single-band) SSOR splitting of `a` with
    /// relaxation factor `omega`, cloning the operator.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadInput`] for `omega` outside `(0, 2)` and
    /// [`NumericsError::BadMatrix`] for a non-square matrix or non-positive
    /// diagonal.
    pub fn new(a: &CsrMatrix, omega: f64) -> Result<Self, NumericsError> {
        Self::shared(Arc::new(a.clone()), omega)
    }

    /// Like [`Ssor::new`] but sharing an already-owned operator instead of
    /// cloning it — the form the cached solve engines use.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ssor::new`].
    pub fn shared(a: Arc<CsrMatrix>, omega: f64) -> Result<Self, NumericsError> {
        Self::shared_banded(a, omega, 1)
    }

    /// Builds the additive block-SSOR splitting over `bands` contiguous
    /// nnz-balanced row bands, each applied on its own thread (see the
    /// type-level docs). `bands = 1` is the exact serial sweep; the band
    /// count is clamped to the row count.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ssor::new`], plus [`NumericsError::BadInput`] for
    /// `bands = 0`.
    pub fn shared_banded(
        a: Arc<CsrMatrix>,
        omega: f64,
        bands: usize,
    ) -> Result<Self, NumericsError> {
        if !(omega > 0.0 && omega < 2.0) {
            return Err(NumericsError::BadInput {
                reason: format!("SSOR relaxation factor must be in (0,2), got {omega}"),
            });
        }
        if bands == 0 {
            return Err(NumericsError::BadInput {
                reason: "block-SSOR needs at least one band".into(),
            });
        }
        if a.rows() != a.cols() {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            });
        }
        let diag = checked_diagonal(&a)?;
        let band_bounds = a.nnz_balanced_rows(bands.min(a.rows()).max(1));
        Ok(Self { a, diag, omega, band_bounds })
    }

    /// The band count the *auto* policy picks for `a`: one (exact serial
    /// SSOR) below [`CsrMatrix::PARALLEL_NNZ_THRESHOLD`] stored non-zeros
    /// — so small systems keep bitwise-deterministic sweeps — and the
    /// hardware thread count (capped like the threaded SpMV) above it.
    pub fn auto_bands(a: &CsrMatrix) -> usize {
        if a.nnz() < CsrMatrix::PARALLEL_NNZ_THRESHOLD {
            1
        } else {
            hardware_threads().clamp(1, CsrMatrix::MAX_SPMV_THREADS)
        }
    }

    /// Number of independent SSOR bands (1 = exact serial sweep).
    pub fn bands(&self) -> usize {
        self.band_bounds.len() - 1
    }

    /// One band's forward/diagonal/backward SSOR sweep restricted to the
    /// band's diagonal block of `A`. `z_band` is the band's slice of the
    /// output; row/column indices are global.
    fn apply_band(&self, start: usize, end: usize, r: &[f64], z_band: &mut [f64]) {
        let w = self.omega;
        let c = w * (2.0 - w);
        // (D + ωL) y = c·r (forward, y lands in z).
        for i in start..end {
            let mut s = c * r[i];
            for (j, v) in self.a.row(i) {
                if (start..i).contains(&j) {
                    s -= w * v * z_band[j - start];
                }
            }
            z_band[i - start] = s / self.diag[i];
        }
        // w = D y.
        for (zi, d) in z_band.iter_mut().zip(&self.diag[start..end]) {
            *zi *= d;
        }
        // (D + ωLᵀ) x = w (backward, in place).
        for i in (start..end).rev() {
            let mut s = z_band[i - start];
            for (j, v) in self.a.row(i) {
                if j > i && j < end {
                    s -= w * v * z_band[j - start];
                }
            }
            z_band[i - start] = s / self.diag[i];
        }
    }
}

impl Preconditioner for Ssor {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        let n = self.diag.len();
        assert_eq!(r.len(), n);
        assert_eq!(z.len(), n);
        if self.bands() == 1 {
            self.apply_band(0, n, r, z);
            return;
        }
        std::thread::scope(|scope| {
            let mut rest = z;
            for pair in self.band_bounds.windows(2) {
                let (start, end) = (pair[0], pair[1]);
                let (band, tail) = rest.split_at_mut(end - start);
                rest = tail;
                if band.is_empty() {
                    continue;
                }
                let this = &*self;
                scope.spawn(move || this.apply_band(start, end, r, band));
            }
        });
    }

    fn name(&self) -> &'static str {
        "ssor"
    }
}

/// Selects which preconditioner a solve engine should build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreconditionerKind {
    /// `M = diag(A)` — cheapest setup, most iterations.
    Jacobi,
    /// Zero-fill incomplete Cholesky — strongest, default for cached
    /// engines where one factorization serves many right-hand sides.
    IncompleteCholesky,
    /// Symmetric SOR with the given relaxation factor in `(0, 2)`.
    Ssor {
        /// Over-relaxation factor ω.
        omega: f64,
    },
    /// Smoothed-aggregation algebraic multigrid (one V-cycle per
    /// application) — mesh-independent iteration counts at `O(n)` setup,
    /// the default for large steady solves. See [`crate::multigrid`].
    Multigrid {
        /// Hierarchy construction and cycling parameters.
        config: MultigridConfig,
    },
}

/// An owned preconditioner of any supported kind (so caches can hold one
/// without trait objects).
#[derive(Debug, Clone, PartialEq)]
pub enum AnyPreconditioner {
    /// Diagonal scaling.
    Jacobi(Jacobi),
    /// IC(0) factorization.
    IncompleteCholesky(IncompleteCholesky),
    /// SSOR splitting.
    Ssor(Ssor),
    /// Smoothed-aggregation multigrid V-cycle (boxed — the hierarchy is
    /// far larger than the one-level variants).
    Multigrid(Box<Multigrid>),
}

impl PreconditionerKind {
    /// Builds the selected preconditioner for `a`.
    ///
    /// The operator-holding variants (SSOR, multigrid) clone `a` here;
    /// engines that already own the matrix behind an [`Arc`] should use
    /// [`PreconditionerKind::build_shared`] so one copy serves both.
    ///
    /// # Errors
    ///
    /// Propagates the constructor errors of the selected implementation
    /// (non-square matrix, bad diagonal, IC(0) breakdown, ω out of range).
    pub fn build(&self, a: &CsrMatrix) -> Result<AnyPreconditioner, NumericsError> {
        match *self {
            // Jacobi and IC(0) derive their own compact data and never
            // retain the operator, so no sharing arises.
            PreconditionerKind::Jacobi | PreconditionerKind::IncompleteCholesky => {
                self.build_from_parts(a, None)
            }
            _ => self.build_from_parts(a, Some(Arc::new(a.clone()))),
        }
    }

    /// Like [`PreconditionerKind::build`] but referencing a shared
    /// operator instead of cloning it: the SSOR splitting and every
    /// multigrid fine level alias `a`, so a cached solve engine and its
    /// preconditioner hold **one** copy of the (potentially
    /// hundreds-of-MB) matrix.
    ///
    /// # Errors
    ///
    /// Same contract as [`PreconditionerKind::build`].
    pub fn build_shared(&self, a: &Arc<CsrMatrix>) -> Result<AnyPreconditioner, NumericsError> {
        self.build_from_parts(a, Some(Arc::clone(a)))
    }

    fn build_from_parts(
        &self,
        a: &CsrMatrix,
        shared: Option<Arc<CsrMatrix>>,
    ) -> Result<AnyPreconditioner, NumericsError> {
        Ok(match *self {
            PreconditionerKind::Jacobi => AnyPreconditioner::Jacobi(Jacobi::new(a)?),
            PreconditionerKind::IncompleteCholesky => {
                AnyPreconditioner::IncompleteCholesky(IncompleteCholesky::new(a)?)
            }
            PreconditionerKind::Ssor { omega } => AnyPreconditioner::Ssor(Ssor::shared(
                shared.expect("operator-holding kinds receive the shared handle"),
                omega,
            )?),
            PreconditionerKind::Multigrid { config } => {
                AnyPreconditioner::Multigrid(Box::new(Multigrid::new_shared(
                    shared.expect("operator-holding kinds receive the shared handle"),
                    &config,
                )?))
            }
        })
    }
}

impl AnyPreconditioner {
    /// The multigrid wrapper, when this is the multigrid variant — benches
    /// and tests use it to inspect the hierarchy (level counts, operator
    /// sharing) behind a cached engine.
    pub fn as_multigrid(&self) -> Option<&Multigrid> {
        match self {
            AnyPreconditioner::Multigrid(m) => Some(m),
            _ => None,
        }
    }

    /// The IC(0) factor, when this is the incomplete-Cholesky variant —
    /// benches and tests use it to inspect the level schedule behind a
    /// cached engine.
    pub fn as_incomplete_cholesky(&self) -> Option<&IncompleteCholesky> {
        match self {
            AnyPreconditioner::IncompleteCholesky(p) => Some(p),
            _ => None,
        }
    }

    /// Applies the IC(0) `parallel_apply` knob when this is the
    /// incomplete-Cholesky variant; a no-op for the other kinds (whose
    /// threading is governed by their own gates). Returns whether the knob
    /// landed on an IC(0) factor.
    pub fn set_parallel_apply(&mut self, on: bool) -> bool {
        match self {
            AnyPreconditioner::IncompleteCholesky(p) => {
                p.set_parallel_apply(on);
                true
            }
            _ => false,
        }
    }

    /// Pins the IC(0) wavefront worker count when this is the
    /// incomplete-Cholesky variant (forcing the level-scheduled path past
    /// the size gate — see [`IncompleteCholesky::with_apply_threads`]); a
    /// no-op for the other kinds. Returns whether the pin landed.
    pub fn set_apply_threads(&mut self, threads: usize) -> bool {
        match self {
            AnyPreconditioner::IncompleteCholesky(p) => {
                p.set_apply_threads(threads);
                true
            }
            _ => false,
        }
    }
}

impl Preconditioner for AnyPreconditioner {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        match self {
            AnyPreconditioner::Jacobi(p) => p.apply(r, z),
            AnyPreconditioner::IncompleteCholesky(p) => p.apply(r, z),
            AnyPreconditioner::Ssor(p) => p.apply(r, z),
            AnyPreconditioner::Multigrid(p) => p.apply(r, z),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyPreconditioner::Jacobi(p) => p.name(),
            AnyPreconditioner::IncompleteCholesky(p) => p.name(),
            AnyPreconditioner::Ssor(p) => p.name(),
            AnyPreconditioner::Multigrid(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    /// Applies M (not M⁻¹) by solving: checks apply ∘ M = identity through
    /// the residual of A-ish test vectors.
    fn apply_inverse(p: &mut dyn Preconditioner, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; r.len()];
        p.apply(r, &mut z);
        z
    }

    #[test]
    fn jacobi_is_diagonal_scaling() {
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 2.0);
        b.add(1, 1, 4.0);
        b.add(2, 2, 8.0);
        let a = b.build();
        let mut p = Jacobi::new(&a).unwrap();
        let z = apply_inverse(&mut p, &[2.0, 4.0, 8.0]);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
        assert_eq!(p.name(), "jacobi");
    }

    #[test]
    fn ic0_is_exact_on_tridiagonal() {
        // A tridiagonal SPD matrix has a bidiagonal Cholesky factor — no
        // fill — so IC(0) is the exact factorization and applying it solves
        // the system outright.
        let n = 20;
        let a = laplacian_1d(n);
        let mut p = IncompleteCholesky::new(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let z = apply_inverse(&mut p, &b);
        for (zi, xi) in z.iter().zip(&x_true) {
            assert!((zi - xi).abs() < 1e-12, "IC(0) must be exact here: {zi} vs {xi}");
        }
        assert_eq!(p.name(), "ic0");
    }

    #[test]
    fn ic0_rejects_indefinite() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 3.0);
        b.add(1, 0, 3.0);
        b.add(1, 1, 1.0);
        let a = b.build();
        assert!(matches!(IncompleteCholesky::new(&a), Err(NumericsError::BadMatrix { .. })));
    }

    #[test]
    fn ic0_rejects_missing_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, -0.5);
        b.add(1, 0, -0.5);
        let a = b.build();
        assert!(IncompleteCholesky::new(&a).is_err());
    }

    #[test]
    fn ssor_application_is_spd() {
        // M⁻¹ of an SPD splitting must itself be SPD: check xᵀM⁻¹x > 0 on a
        // few vectors and symmetry ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩.
        let a = laplacian_1d(12);
        let mut p = Ssor::new(&a, 1.3).unwrap();
        let u: Vec<f64> = (0..12).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let v: Vec<f64> = (0..12).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let mu = apply_inverse(&mut p, &u);
        let mv = apply_inverse(&mut p, &v);
        let dot = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>();
        assert!(dot(&u, &mu) > 0.0);
        assert!((dot(&mu, &v) - dot(&u, &mv)).abs() < 1e-9, "M⁻¹ must stay symmetric");
        assert_eq!(p.name(), "ssor");
    }

    #[test]
    fn ssor_validates_omega() {
        let a = laplacian_1d(3);
        assert!(Ssor::new(&a, 0.0).is_err());
        assert!(Ssor::new(&a, 2.0).is_err());
        assert!(Ssor::new(&a, 1.0).is_ok());
    }

    #[test]
    fn kind_builds_every_variant() {
        let a = laplacian_1d(5);
        for (kind, name) in [
            (PreconditionerKind::Jacobi, "jacobi"),
            (PreconditionerKind::IncompleteCholesky, "ic0"),
            (PreconditionerKind::Ssor { omega: 1.5 }, "ssor"),
            (
                PreconditionerKind::Multigrid { config: crate::MultigridConfig::default() },
                "multigrid",
            ),
        ] {
            let mut p = kind.build(&a).unwrap();
            assert_eq!(p.name(), name);
            // All must act as approximate inverses: z ≈ A⁻¹r at least in
            // direction (positive alignment with the true solution).
            let r = vec![1.0; 5];
            let z = apply_inverse(&mut p, &r);
            assert!(z.iter().all(|v| v.is_finite()));
            assert!(z.iter().sum::<f64>() > 0.0);
        }
    }

    #[test]
    fn jacobi_chunked_apply_is_bitwise_serial() {
        let n = 1037; // deliberately not a multiple of any chunk count
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 1.0 + (i as f64 * 0.37).sin().abs() + 0.1);
        }
        let p = Jacobi::new(&b.build()).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() * 3.0).collect();
        let mut serial = vec![0.0; n];
        p.apply_with_threads(&r, &mut serial, 1);
        for threads in [2, 3, 7, 16] {
            let mut par = vec![0.0; n];
            p.apply_with_threads(&r, &mut par, threads);
            assert_eq!(par, serial, "mismatch with {threads} threads");
        }
    }

    #[test]
    fn single_band_ssor_matches_legacy_serial_sweep() {
        let a = std::sync::Arc::new(laplacian_1d(50));
        let mut legacy = Ssor::new(&a, 1.3).unwrap();
        let mut banded = Ssor::shared_banded(std::sync::Arc::clone(&a), 1.3, 1).unwrap();
        assert_eq!(legacy.bands(), 1);
        assert_eq!(banded.bands(), 1);
        let r: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut z1 = vec![0.0; 50];
        let mut z2 = vec![0.0; 50];
        legacy.apply(&r, &mut z1);
        banded.apply(&r, &mut z2);
        assert_eq!(z1, z2, "one band must be the exact serial sweep");
    }

    #[test]
    fn banded_block_ssor_is_spd_and_preconditions_cg() {
        use crate::solver::{preconditioned_cg, CgWorkspace, SolveOptions};
        let n = 600;
        let a = std::sync::Arc::new(laplacian_1d(n));
        let mut banded = Ssor::shared_banded(std::sync::Arc::clone(&a), 1.2, 4).unwrap();
        assert_eq!(banded.bands(), 4);

        // SPD: symmetry ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩ and positivity of xᵀM⁻¹x.
        let u: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let mu = apply_inverse(&mut banded, &u);
        let mv = apply_inverse(&mut banded, &v);
        let dot = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>();
        assert!((dot(&mu, &v) - dot(&u, &mv)).abs() < 1e-9, "block-SSOR must stay symmetric");
        assert!(dot(&u, &mu) > 0.0);

        // As a CG preconditioner it must reach the same solution as the
        // exact serial sweep (it is a weaker M, never a wrong one).
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let rhs = a.mul_vec(&x_true).unwrap();
        let opts = SolveOptions { tolerance: 1e-12, ..Default::default() };
        let mut solutions = Vec::new();
        for mut m in [Ssor::new(&a, 1.2).unwrap(), banded] {
            let mut x = vec![0.0; n];
            let mut ws = CgWorkspace::new();
            preconditioned_cg(&a, &rhs, &mut x, &mut m, &opts, &mut ws).expect("converges");
            solutions.push(x);
        }
        for (s, b) in solutions[0].iter().zip(&solutions[1]) {
            assert!((s - b).abs() < 1e-8, "serial {s} vs banded {b}");
        }
    }

    #[test]
    fn ssor_banded_validation_and_sharing() {
        let a = std::sync::Arc::new(laplacian_1d(10));
        assert!(Ssor::shared_banded(std::sync::Arc::clone(&a), 1.0, 0).is_err());
        // More bands than rows is clamped, not rejected.
        let s = Ssor::shared_banded(std::sync::Arc::clone(&a), 1.0, 64).unwrap();
        assert!(s.bands() <= 10);
        // Shared construction aliases the operator instead of cloning it.
        assert_eq!(std::sync::Arc::strong_count(&a), 2);
        assert_eq!(Ssor::auto_bands(&a), 1, "tiny operators stay serial");
    }

    /// 3-D 7-point SPD stencil with mildly varying conductances — the FVM
    /// system shape, small enough for forced-schedule tests.
    fn stencil_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let n = nx * ny * nz;
        let mut b = TripletBuilder::with_capacity(n, n, 7 * n);
        let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
        let mut diag = vec![0.0; n];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = idx(i, j, k);
                    let mut couple = |d: usize, g: f64| {
                        b.add(c, d, -g);
                        b.add(d, c, -g);
                        diag[c] += g;
                        diag[d] += g;
                    };
                    if i + 1 < nx {
                        couple(idx(i + 1, j, k), 0.4 + 0.3 * ((c * 3) as f64 * 0.7).sin().abs());
                    }
                    if j + 1 < ny {
                        couple(idx(i, j + 1, k), 0.2 + 0.5 * ((c * 5) as f64 * 0.3).cos().abs());
                    }
                    if k + 1 < nz {
                        couple(idx(i, j, k + 1), 0.1 + 0.2 * ((c * 7) as f64 * 0.9).sin().abs());
                    }
                }
            }
        }
        for (c, d) in diag.iter().enumerate() {
            b.add(c, c, d + 0.05 + 0.01 * (c as f64 * 0.11).cos().abs());
        }
        b.build()
    }

    #[test]
    fn level_schedule_shape_on_known_factors() {
        // Diagonal matrix: no dependencies, one level holding every row.
        let mut b = TripletBuilder::new(5, 5);
        for i in 0..5 {
            b.add(i, i, 2.0 + i as f64);
        }
        let diag = IncompleteCholesky::new(&b.build()).unwrap();
        let s = diag.level_stats();
        assert_eq!((s.levels, s.max_level_rows), (1, 5));

        // 1-D Laplacian: bidiagonal factor, strictly sequential — n levels
        // of one row each (no wavefront parallelism to exploit).
        let chain = IncompleteCholesky::new(&laplacian_1d(9)).unwrap();
        let s = chain.level_stats();
        assert_eq!((s.levels, s.max_level_rows), (9, 1));
        assert!((s.mean_level_rows - 1.0).abs() < 1e-12);

        // 3-D stencil: levels are the i+j+k wavefronts, far fewer than n.
        let stencil = IncompleteCholesky::new(&stencil_3d(5, 4, 3)).unwrap();
        let s = stencil.level_stats();
        assert_eq!(s.levels, 5 + 4 + 3 - 2, "grid wavefront count");
        assert!(s.max_level_rows > 1);
    }

    #[test]
    fn wavefront_apply_is_bitwise_serial_for_every_worker_count() {
        // Forced thread counts bypass the size gate and spawn real workers
        // even on one core; each row's arithmetic is identical to the
        // serial gather kernel, so outputs must match bitwise.
        let a = stencil_3d(6, 5, 4);
        let mut serial = IncompleteCholesky::new(&a).unwrap().with_parallel_apply(false);
        assert_eq!(serial.apply_threads(), 1);
        let n = a.rows();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() * 2.0).collect();
        let mut z_serial = vec![0.0; n];
        serial.apply(&r, &mut z_serial);

        for threads in [2, 3, 5, 8] {
            let mut forced = IncompleteCholesky::new(&a).unwrap().with_apply_threads(threads);
            assert!(forced.runs_parallel(), "pinned {threads} workers must take the wavefront");
            assert_eq!(forced.apply_threads(), threads);
            let mut z_par = vec![0.0; n];
            forced.apply(&r, &mut z_par);
            // The parallel backward sweep gathers over Lᵀ where the serial
            // sweep scatters, so orderings differ only there; both solve
            // the same triangular systems.
            for (s, p) in z_serial.iter().zip(&z_par) {
                let scale = s.abs().max(1.0);
                assert!((s - p).abs() <= 1e-14 * scale, "{threads} workers: {s} vs {p}");
            }
            // And the wavefront itself is deterministic: every worker count
            // produces bitwise-identical output.
            let mut z_again = vec![0.0; n];
            let mut two = IncompleteCholesky::new(&a).unwrap().with_apply_threads(2);
            two.apply(&r, &mut z_again);
            assert_eq!(z_par, z_again, "wavefront output must not depend on worker count");
        }
    }

    #[test]
    fn parallel_apply_knob_and_size_gate() {
        let a = stencil_3d(4, 4, 3);
        // Small factor + no pinned threads: the size gate keeps it serial.
        let auto = IncompleteCholesky::new(&a).unwrap();
        assert!(!auto.runs_parallel(), "below the nnz gate the apply stays exact-serial");
        // Pinning workers forces the schedule; the knob drops it again.
        let mut forced = auto.clone().with_apply_threads(4);
        assert!(forced.runs_parallel());
        forced.set_parallel_apply(false);
        assert!(!forced.runs_parallel(), "parallel_apply = false is the serial A/B baseline");
        assert_eq!(forced.apply_threads(), 1);
        forced.set_parallel_apply(true);
        assert!(forced.runs_parallel(), "re-enabling restores the pinned wavefront");
        // The enum-level knob reaches a cached IC(0) and ignores others.
        let mut any = PreconditionerKind::IncompleteCholesky.build(&a).unwrap();
        assert!(any.set_parallel_apply(false));
        assert!(any.as_incomplete_cholesky().is_some());
        let mut jac = PreconditionerKind::Jacobi.build(&a).unwrap();
        assert!(!jac.set_parallel_apply(false));
        assert!(jac.as_incomplete_cholesky().is_none());
    }

    #[test]
    fn wavefront_ic0_preconditions_cg_to_the_same_field() {
        use crate::solver::{preconditioned_cg, CgWorkspace, SolveOptions};
        let a = stencil_3d(6, 6, 3);
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let rhs = a.mul_vec(&x_true).unwrap();
        let opts = SolveOptions { tolerance: 1e-12, ..Default::default() };
        let mut fields = Vec::new();
        let mut iterations = Vec::new();
        for m in [
            IncompleteCholesky::new(&a).unwrap().with_parallel_apply(false),
            IncompleteCholesky::new(&a).unwrap().with_apply_threads(3),
        ] {
            let mut m = m;
            let mut x = vec![0.0; n];
            let mut ws = CgWorkspace::new();
            let stats = preconditioned_cg(&a, &rhs, &mut x, &mut m, &opts, &mut ws).unwrap();
            fields.push(x);
            iterations.push(stats.iterations);
        }
        assert_eq!(iterations[0], iterations[1], "same preconditioner, same trajectory");
        for (s, p) in fields[0].iter().zip(&fields[1]) {
            assert!((s - p).abs() < 1e-10, "serial {s} vs wavefront {p}");
        }
    }

    #[test]
    fn non_square_rejected_everywhere() {
        let mut b = TripletBuilder::new(2, 3);
        b.add(0, 0, 1.0);
        b.add(1, 1, 1.0);
        let a = b.build();
        assert!(Jacobi::new(&a).is_err());
        assert!(IncompleteCholesky::new(&a).is_err());
        assert!(Ssor::new(&a, 1.0).is_err());
    }
}
