//! Preconditioners for the conjugate-gradient solver.
//!
//! The FVM conduction matrices this workspace produces are symmetric
//! positive definite and diagonally dominant, but far from well-conditioned:
//! the paper's meshes mix 5–60 µm cells over the optical network interfaces
//! with millimetre cells over the package, so face conductances span four
//! orders of magnitude. Three preconditioners are provided, in increasing
//! setup cost and decreasing iteration count:
//!
//! * [`Jacobi`] — `M = diag(A)`; free to build, the seed behaviour,
//! * [`Ssor`] — symmetric SOR splitting; no factorization, uses `A` itself,
//! * [`IncompleteCholesky`] — IC(0), a zero-fill `L·Lᵀ ≈ A` factorization;
//!   the strongest *one-level* option and the default for cached transient
//!   engines, because one factorization amortizes over many right-hand
//!   sides,
//! * [`Multigrid`](crate::Multigrid) — a smoothed-aggregation algebraic
//!   multigrid V-cycle (see [`crate::multigrid`]); the only option whose
//!   iteration counts stay (nearly) mesh-independent, and the default for
//!   large steady solves.
//!
//! All applications are allocation-free so they can sit inside the CG
//! iteration loop.

use crate::multigrid::{Multigrid, MultigridConfig};
use crate::{CsrMatrix, NumericsError};

/// Applies `z = M⁻¹ r` for some SPD approximation `M ≈ A`.
///
/// Implementations must be allocation-free in [`Preconditioner::apply`] so
/// the solver's inner loop stays allocation-free; `&mut self` exists for
/// implementations that cycle internal workspaces (multigrid), not for
/// changing the operator.
pub trait Preconditioner {
    /// Computes `z = M⁻¹ r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `z` have the wrong length.
    fn apply(&mut self, r: &[f64], z: &mut [f64]);

    /// Short identifier for benches and logs (`"jacobi"`, `"ic0"`, …).
    fn name(&self) -> &'static str;
}

fn checked_diagonal(a: &CsrMatrix) -> Result<Vec<f64>, NumericsError> {
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("non-positive or non-finite diagonal entry {} at row {i}", diag[i]),
        });
    }
    Ok(diag)
}

/// Diagonal (Jacobi) preconditioner: `M = diag(A)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Extracts the inverse diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadMatrix`] if `a` is not square or has a
    /// non-positive or non-finite diagonal entry.
    pub fn new(a: &CsrMatrix) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            });
        }
        Ok(Self { inv_diag: checked_diagonal(a)?.iter().map(|&d| 1.0 / d).collect() })
    }
}

impl Preconditioner for Jacobi {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len());
        assert_eq!(z.len(), self.inv_diag.len());
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Zero-fill incomplete Cholesky factorization IC(0): `L·Lᵀ ≈ A` with `L`
/// restricted to the sparsity pattern of the lower triangle of `A`.
///
/// For the M-matrices FVM conduction assembly produces the factorization
/// exists and is stable; applying it costs two sparse triangular solves,
/// roughly the price of one extra matrix-vector product per CG iteration,
/// and typically cuts the iteration count by 2–6× on anisotropic meshes.
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteCholesky {
    /// CSR of `L` (lower triangular, diagonal stored last in each row,
    /// columns ascending).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl IncompleteCholesky {
    /// Factors the lower triangle of `a` in place of a full Cholesky.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadMatrix`] if `a` is not square, a row has
    /// no diagonal entry, or a pivot turns non-positive (breakdown — `a` is
    /// not SPD enough for IC(0)).
    pub fn new(a: &CsrMatrix) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        row_ptr.push(0);

        for i in 0..n {
            let row_start = values.len();
            let mut saw_diagonal = false;
            for (j, aij) in a.row(i) {
                if j > i {
                    continue;
                }
                // s = a_ij − Σ_{k<j} l_ik · l_jk over the already-built rows
                // i (entries so far this row) and j, both column-ascending.
                let mut s = aij;
                let (mut p, mut q) = (row_start, row_ptr[j]);
                // Row j is complete for j < i; for the diagonal (j == i) the
                // partner row is the one being built right now.
                let (p_end, q_end) =
                    (values.len(), if j < i { row_ptr[j + 1] } else { values.len() });
                while p < p_end && q < q_end {
                    let (cp, cq) = (col_idx[p], col_idx[q]);
                    if cp as usize >= j || cq as usize >= j {
                        break;
                    }
                    match cp.cmp(&cq) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            s -= values[p] * values[q];
                            p += 1;
                            q += 1;
                        }
                    }
                }
                if j < i {
                    // Diagonal of row j is its last stored entry.
                    let djj = values[row_ptr[j + 1] - 1];
                    col_idx.push(j as u32);
                    values.push(s / djj);
                } else {
                    if !(s > 0.0) || !s.is_finite() {
                        return Err(NumericsError::BadMatrix {
                            reason: format!(
                                "IC(0) breakdown at row {i}: pivot {s:.3e} is not positive"
                            ),
                        });
                    }
                    col_idx.push(i as u32);
                    values.push(s.sqrt());
                    saw_diagonal = true;
                }
            }
            if !saw_diagonal {
                return Err(NumericsError::BadMatrix {
                    reason: format!("row {i} has no diagonal entry; cannot factor"),
                });
            }
            row_ptr.push(values.len());
        }

        Ok(Self { row_ptr, col_idx, values })
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        let n = self.row_ptr.len() - 1;
        assert_eq!(r.len(), n);
        assert_eq!(z.len(), n);

        // Forward solve L y = r (gather; y lands in z).
        for i in 0..n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut s = r[i];
            for k in lo..hi - 1 {
                s -= self.values[k] * z[self.col_idx[k] as usize];
            }
            z[i] = s / self.values[hi - 1];
        }
        // Backward solve Lᵀ x = y in place (scatter: once row i is final,
        // push its contribution into every earlier unknown).
        for i in (0..n).rev() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            z[i] /= self.values[hi - 1];
            let xi = z[i];
            for k in lo..hi - 1 {
                z[self.col_idx[k] as usize] -= self.values[k] * xi;
            }
        }
    }

    fn name(&self) -> &'static str {
        "ic0"
    }
}

/// Symmetric SOR preconditioner,
/// `M = (D + ωL) D⁻¹ (D + ωLᵀ) / (ω(2 − ω))`.
///
/// Needs no factorization — the two triangular solves run directly on `A`
/// (stored here so the preconditioner owns everything it touches) — and
/// sits between Jacobi and IC(0) in strength.
#[derive(Debug, Clone, PartialEq)]
pub struct Ssor {
    a: CsrMatrix,
    diag: Vec<f64>,
    omega: f64,
}

impl Ssor {
    /// Builds the SSOR splitting of `a` with relaxation factor `omega`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadInput`] for `omega` outside `(0, 2)` and
    /// [`NumericsError::BadMatrix`] for a non-square matrix or non-positive
    /// diagonal.
    pub fn new(a: &CsrMatrix, omega: f64) -> Result<Self, NumericsError> {
        if !(omega > 0.0 && omega < 2.0) {
            return Err(NumericsError::BadInput {
                reason: format!("SSOR relaxation factor must be in (0,2), got {omega}"),
            });
        }
        if a.rows() != a.cols() {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            });
        }
        let diag = checked_diagonal(a)?;
        Ok(Self { a: a.clone(), diag, omega })
    }
}

impl Preconditioner for Ssor {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        let n = self.diag.len();
        assert_eq!(r.len(), n);
        assert_eq!(z.len(), n);
        let w = self.omega;
        let c = w * (2.0 - w);

        // (D + ωL) y = c·r (forward, y lands in z).
        for i in 0..n {
            let mut s = c * r[i];
            for (j, v) in self.a.row(i) {
                if j < i {
                    s -= w * v * z[j];
                }
            }
            z[i] = s / self.diag[i];
        }
        // w = D y.
        for (zi, d) in z.iter_mut().zip(&self.diag) {
            *zi *= d;
        }
        // (D + ωLᵀ) x = w (backward, in place).
        for i in (0..n).rev() {
            let mut s = z[i];
            for (j, v) in self.a.row(i) {
                if j > i {
                    s -= w * v * z[j];
                }
            }
            z[i] = s / self.diag[i];
        }
    }

    fn name(&self) -> &'static str {
        "ssor"
    }
}

/// Selects which preconditioner a solve engine should build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreconditionerKind {
    /// `M = diag(A)` — cheapest setup, most iterations.
    Jacobi,
    /// Zero-fill incomplete Cholesky — strongest, default for cached
    /// engines where one factorization serves many right-hand sides.
    IncompleteCholesky,
    /// Symmetric SOR with the given relaxation factor in `(0, 2)`.
    Ssor {
        /// Over-relaxation factor ω.
        omega: f64,
    },
    /// Smoothed-aggregation algebraic multigrid (one V-cycle per
    /// application) — mesh-independent iteration counts at `O(n)` setup,
    /// the default for large steady solves. See [`crate::multigrid`].
    Multigrid {
        /// Hierarchy construction and cycling parameters.
        config: MultigridConfig,
    },
}

/// An owned preconditioner of any supported kind (so caches can hold one
/// without trait objects).
#[derive(Debug, Clone, PartialEq)]
pub enum AnyPreconditioner {
    /// Diagonal scaling.
    Jacobi(Jacobi),
    /// IC(0) factorization.
    IncompleteCholesky(IncompleteCholesky),
    /// SSOR splitting.
    Ssor(Ssor),
    /// Smoothed-aggregation multigrid V-cycle (boxed — the hierarchy is
    /// far larger than the one-level variants).
    Multigrid(Box<Multigrid>),
}

impl PreconditionerKind {
    /// Builds the selected preconditioner for `a`.
    ///
    /// # Errors
    ///
    /// Propagates the constructor errors of the selected implementation
    /// (non-square matrix, bad diagonal, IC(0) breakdown, ω out of range).
    pub fn build(&self, a: &CsrMatrix) -> Result<AnyPreconditioner, NumericsError> {
        Ok(match *self {
            PreconditionerKind::Jacobi => AnyPreconditioner::Jacobi(Jacobi::new(a)?),
            PreconditionerKind::IncompleteCholesky => {
                AnyPreconditioner::IncompleteCholesky(IncompleteCholesky::new(a)?)
            }
            PreconditionerKind::Ssor { omega } => AnyPreconditioner::Ssor(Ssor::new(a, omega)?),
            PreconditionerKind::Multigrid { config } => {
                AnyPreconditioner::Multigrid(Box::new(Multigrid::new(a, &config)?))
            }
        })
    }
}

impl Preconditioner for AnyPreconditioner {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        match self {
            AnyPreconditioner::Jacobi(p) => p.apply(r, z),
            AnyPreconditioner::IncompleteCholesky(p) => p.apply(r, z),
            AnyPreconditioner::Ssor(p) => p.apply(r, z),
            AnyPreconditioner::Multigrid(p) => p.apply(r, z),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyPreconditioner::Jacobi(p) => p.name(),
            AnyPreconditioner::IncompleteCholesky(p) => p.name(),
            AnyPreconditioner::Ssor(p) => p.name(),
            AnyPreconditioner::Multigrid(p) => p.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    /// Applies M (not M⁻¹) by solving: checks apply ∘ M = identity through
    /// the residual of A-ish test vectors.
    fn apply_inverse(p: &mut dyn Preconditioner, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; r.len()];
        p.apply(r, &mut z);
        z
    }

    #[test]
    fn jacobi_is_diagonal_scaling() {
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 2.0);
        b.add(1, 1, 4.0);
        b.add(2, 2, 8.0);
        let a = b.build();
        let mut p = Jacobi::new(&a).unwrap();
        let z = apply_inverse(&mut p, &[2.0, 4.0, 8.0]);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
        assert_eq!(p.name(), "jacobi");
    }

    #[test]
    fn ic0_is_exact_on_tridiagonal() {
        // A tridiagonal SPD matrix has a bidiagonal Cholesky factor — no
        // fill — so IC(0) is the exact factorization and applying it solves
        // the system outright.
        let n = 20;
        let a = laplacian_1d(n);
        let mut p = IncompleteCholesky::new(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).cos()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let z = apply_inverse(&mut p, &b);
        for (zi, xi) in z.iter().zip(&x_true) {
            assert!((zi - xi).abs() < 1e-12, "IC(0) must be exact here: {zi} vs {xi}");
        }
        assert_eq!(p.name(), "ic0");
    }

    #[test]
    fn ic0_rejects_indefinite() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 3.0);
        b.add(1, 0, 3.0);
        b.add(1, 1, 1.0);
        let a = b.build();
        assert!(matches!(IncompleteCholesky::new(&a), Err(NumericsError::BadMatrix { .. })));
    }

    #[test]
    fn ic0_rejects_missing_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, -0.5);
        b.add(1, 0, -0.5);
        let a = b.build();
        assert!(IncompleteCholesky::new(&a).is_err());
    }

    #[test]
    fn ssor_application_is_spd() {
        // M⁻¹ of an SPD splitting must itself be SPD: check xᵀM⁻¹x > 0 on a
        // few vectors and symmetry ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩.
        let a = laplacian_1d(12);
        let mut p = Ssor::new(&a, 1.3).unwrap();
        let u: Vec<f64> = (0..12).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let v: Vec<f64> = (0..12).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let mu = apply_inverse(&mut p, &u);
        let mv = apply_inverse(&mut p, &v);
        let dot = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>();
        assert!(dot(&u, &mu) > 0.0);
        assert!((dot(&mu, &v) - dot(&u, &mv)).abs() < 1e-9, "M⁻¹ must stay symmetric");
        assert_eq!(p.name(), "ssor");
    }

    #[test]
    fn ssor_validates_omega() {
        let a = laplacian_1d(3);
        assert!(Ssor::new(&a, 0.0).is_err());
        assert!(Ssor::new(&a, 2.0).is_err());
        assert!(Ssor::new(&a, 1.0).is_ok());
    }

    #[test]
    fn kind_builds_every_variant() {
        let a = laplacian_1d(5);
        for (kind, name) in [
            (PreconditionerKind::Jacobi, "jacobi"),
            (PreconditionerKind::IncompleteCholesky, "ic0"),
            (PreconditionerKind::Ssor { omega: 1.5 }, "ssor"),
            (
                PreconditionerKind::Multigrid { config: crate::MultigridConfig::default() },
                "multigrid",
            ),
        ] {
            let mut p = kind.build(&a).unwrap();
            assert_eq!(p.name(), name);
            // All must act as approximate inverses: z ≈ A⁻¹r at least in
            // direction (positive alignment with the true solution).
            let r = vec![1.0; 5];
            let z = apply_inverse(&mut p, &r);
            assert!(z.iter().all(|v| v.is_finite()));
            assert!(z.iter().sum::<f64>() > 0.0);
        }
    }

    #[test]
    fn non_square_rejected_everywhere() {
        let mut b = TripletBuilder::new(2, 3);
        b.add(0, 0, 1.0);
        b.add(1, 1, 1.0);
        let a = b.build();
        assert!(Jacobi::new(&a).is_err());
        assert!(IncompleteCholesky::new(&a).is_err());
        assert!(Ssor::new(&a, 1.0).is_err());
    }
}
