//! Scalar minimizers for design-space exploration.
//!
//! The paper explores the MR heater power P_heater to minimize the intra-ONI
//! gradient temperature (Figure 9-b). That objective is unimodal in
//! P_heater, so a golden-section search is the right tool; a plain grid
//! sweep is also provided for plotting the whole curve.

use crate::NumericsError;

/// Location and value of a scalar minimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Argument at which the minimum was found.
    pub argmin: f64,
    /// Objective value at [`Minimum::argmin`].
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Golden-section search for the minimum of a unimodal function on `[a, b]`.
///
/// # Errors
///
/// Returns [`NumericsError::BadInput`] if the interval is empty/reversed,
/// the tolerance is non-positive, or the objective returns a non-finite
/// value.
///
/// # Example
///
/// ```
/// use vcsel_numerics::golden_section_min;
///
/// let m = golden_section_min(0.0, 4.0, 1e-9, |x| (x - 1.3) * (x - 1.3))?;
/// assert!((m.argmin - 1.3).abs() < 1e-6);
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
pub fn golden_section_min(
    a: f64,
    b: f64,
    tol: f64,
    mut f: impl FnMut(f64) -> f64,
) -> Result<Minimum, NumericsError> {
    if !(a < b) || !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::BadInput { reason: format!("invalid interval [{a}, {b}]") });
    }
    if !(tol > 0.0) {
        return Err(NumericsError::BadInput {
            reason: format!("tolerance must be positive, got {tol}"),
        });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8; // (sqrt(5) - 1) / 2

    let mut lo = a;
    let mut hi = b;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2;
    if !f1.is_finite() || !f2.is_finite() {
        return Err(NumericsError::BadInput {
            reason: "objective returned non-finite value".into(),
        });
    }

    while hi - lo > tol {
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
        evals += 1;
        if !f1.is_finite() || !f2.is_finite() {
            return Err(NumericsError::BadInput {
                reason: "objective returned non-finite value".into(),
            });
        }
        // The interval shrinks geometrically; 200 iterations would shrink any
        // finite interval below f64 resolution, so this cannot loop forever.
        if evals > 400 {
            break;
        }
    }
    let (argmin, value) = if f1 <= f2 { (x1, f1) } else { (x2, f2) };
    Ok(Minimum { argmin, value, evaluations: evals })
}

/// Evaluates `f` on `n` evenly spaced points of `[a, b]` (inclusive) and
/// returns the minimizing sample.
///
/// Unlike [`golden_section_min`] this makes no unimodality assumption; it is
/// what the figure-regeneration binaries use to trace whole curves.
///
/// # Errors
///
/// Returns [`NumericsError::BadInput`] if `n < 2`, the interval is
/// reversed, or the objective returns NaN everywhere.
pub fn grid_argmin(
    a: f64,
    b: f64,
    n: usize,
    mut f: impl FnMut(f64) -> f64,
) -> Result<Minimum, NumericsError> {
    if n < 2 {
        return Err(NumericsError::BadInput {
            reason: format!("need at least 2 samples, got {n}"),
        });
    }
    if !(a <= b) || !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::BadInput { reason: format!("invalid interval [{a}, {b}]") });
    }
    let mut best: Option<(f64, f64)> = None;
    for i in 0..n {
        let x = a + (b - a) * i as f64 / (n - 1) as f64;
        let y = f(x);
        if y.is_finite() && best.is_none_or(|(_, by)| y < by) {
            best = Some((x, y));
        }
    }
    match best {
        Some((argmin, value)) => Ok(Minimum { argmin, value, evaluations: n }),
        None => Err(NumericsError::BadInput {
            reason: "objective returned non-finite values at every sample".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_vertex() {
        let m = golden_section_min(-10.0, 10.0, 1e-10, |x| 3.0 * (x - 2.5).powi(2) + 7.0).unwrap();
        assert!((m.argmin - 2.5).abs() < 1e-6);
        assert!((m.value - 7.0).abs() < 1e-9);
    }

    #[test]
    fn golden_section_handles_edge_minimum() {
        // Monotonically increasing: minimum at the left edge.
        let m = golden_section_min(1.0, 5.0, 1e-9, |x| x).unwrap();
        assert!((m.argmin - 1.0).abs() < 1e-6);
    }

    #[test]
    fn golden_section_validates() {
        assert!(golden_section_min(1.0, 0.0, 1e-9, |x| x).is_err());
        assert!(golden_section_min(0.0, 1.0, -1.0, |x| x).is_err());
        assert!(golden_section_min(0.0, 1.0, 1e-9, |_| f64::NAN).is_err());
    }

    #[test]
    fn grid_argmin_traces_curve() {
        // Minimum of |x - 0.3| on [0, 1] with 11 samples lands on x = 0.3.
        let m = grid_argmin(0.0, 1.0, 11, |x| (x - 0.3).abs()).unwrap();
        assert!((m.argmin - 0.3).abs() < 1e-12);
        assert_eq!(m.evaluations, 11);
    }

    #[test]
    fn grid_argmin_skips_nan_samples() {
        let m = grid_argmin(0.0, 1.0, 3, |x| if x == 0.0 { f64::NAN } else { x }).unwrap();
        assert_eq!(m.argmin, 0.5);
    }

    #[test]
    fn grid_argmin_validates() {
        assert!(grid_argmin(0.0, 1.0, 1, |x| x).is_err());
        assert!(grid_argmin(1.0, 0.0, 5, |x| x).is_err());
        assert!(grid_argmin(0.0, 1.0, 5, |_| f64::NAN).is_err());
    }
}
