//! Algebraic multigrid by smoothed aggregation — mesh-independent solves
//! for the FVM conduction systems this workspace produces.
//!
//! One-level preconditioners (Jacobi, SSOR, IC(0)) all share a scaling
//! wall: their CG iteration counts grow with mesh resolution, because a
//! point-local operator can only damp error components whose wavelength is
//! comparable to a cell. The paper-fidelity meshes are ~40× larger than
//! the test meshes, so steady cold solves need an operator whose work is
//! `O(n)` **and** whose iteration count is (nearly) independent of `n`.
//! That is exactly what a multigrid hierarchy provides.
//!
//! # Design
//!
//! The hierarchy is built *algebraically* from the assembled [`CsrMatrix`]
//! — no mesh access — by smoothed aggregation (Vaněk/Mandel/Brezina):
//!
//! 1. **Strength of connection**: `j` is a strong neighbour of `i` when
//!    `|a_ij| ≥ θ √(a_ii · a_jj)`. The FVM face conductances span four
//!    orders of magnitude (60 µm cells against 3 mm cells, copper against
//!    oxide), and this scaled test keeps aggregation focused on the stiff
//!    couplings no smoother can handle.
//! 2. **Aggregation**: greedy root-based clustering of the strength graph
//!    (roots grab their whole strong neighbourhood; stragglers join their
//!    strongest aggregated neighbour; isolated cells become singletons).
//! 3. **Tentative prolongation** `P₀`: piecewise-constant injection, one
//!    column per aggregate, so coarse constants interpolate fine constants
//!    — the near-null space of a pure conduction operator.
//! 4. **Smoothed prolongation** `P = (I − ω/λ̂ · D_F⁻¹ A_F) P₀`, where
//!    `A_F` is the strength-filtered operator (weak couplings lumped onto
//!    the diagonal) and `λ̂` a power-iteration estimate of
//!    `ρ(D_F⁻¹ A_F)`. One damped-Jacobi sweep on the columns turns the
//!    blocky tentative interpolation into the smooth basis functions that
//!    give multigrid its mesh-independent convergence.
//! 5. **Galerkin coarse operator** `A_c = Pᵀ A P`, computed with the
//!    [`CsrMatrix::transpose`] / [`CsrMatrix::multiply_matrix`] kernels.
//!    Repeat from 1 until the operator is small enough for a dense
//!    Cholesky (or the coarsening stalls, where a Jacobi-CG fallback
//!    solves the coarsest level).
//!
//! Smoothing on every level reuses the [`Preconditioner`] trait from the
//! solve engine: a sweep is one preconditioned Richardson step
//! `x ← x + s·M⁻¹(b − A x)` with `M` a damped [`Jacobi`] or
//! [`Ssor`] application. Both are symmetric, and the V-cycle
//! runs equal pre-/post-sweeps over a Galerkin hierarchy, so the cycle is
//! itself a symmetric positive-definite operator — a legal CG
//! preconditioner.
//!
//! # Drivers
//!
//! [`MultigridHierarchy::cycle`] runs one V- or F-cycle against
//! caller-owned, allocation-free [`MgWorkspace`] buffers;
//! [`MultigridHierarchy::solve`] iterates cycles as a standalone solver.
//! The usual entry point, though, is [`Multigrid`]: one V-cycle per
//! application behind the [`Preconditioner`] trait, selected via
//! [`PreconditionerKind::Multigrid`](crate::PreconditionerKind::Multigrid)
//! so it drops into
//! [`preconditioned_cg`] and every
//! cached solve engine unchanged.

use std::sync::Arc;

use vcsel_telemetry::{Arg, ArgValue, TelemetrySink};

use crate::precond::{AnyPreconditioner, Jacobi, Preconditioner, Ssor};
use crate::solver::{preconditioned_cg, CgWorkspace, SolveOptions};
use crate::{CsrMatrix, NumericsError};

/// Relaxation scheme used on every non-coarsest level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmootherKind {
    /// Damped Jacobi: `x ← x + ω D⁻¹ (b − A x)`. Cheapest sweep; `ω`
    /// must lie in `(0, 1]` (values near `2/3` suit Poisson-like
    /// operators).
    DampedJacobi {
        /// Relaxation damping factor.
        omega: f64,
    },
    /// Symmetric SOR: `x ← x + M_SSOR⁻¹ (b − A x)` with relaxation `ω` in
    /// `(0, 2)`. Twice the cost of Jacobi per sweep but markedly stronger
    /// on the anisotropic cell aspect ratios FVM meshing produces.
    Ssor {
        /// Over-relaxation factor.
        omega: f64,
    },
}

/// Cycle shape of one hierarchy traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleKind {
    /// One coarse-grid correction per level — the standard symmetric
    /// preconditioner cycle.
    V,
    /// An F-cycle: after the first coarse correction each level re-solves
    /// the remaining residual with a V-cycle. Roughly twice the work of a
    /// V-cycle for a visibly better single-cycle contraction — but **not a
    /// symmetric operator** (the two coarse corrections are not
    /// palindromic), so it is only used by the standalone
    /// [`MultigridHierarchy::solve`] driver; [`Multigrid`] always
    /// preconditions CG with V-cycles.
    F,
}

/// Construction and cycling parameters of a [`MultigridHierarchy`].
///
/// The defaults are tuned for the workspace's FVM conduction systems and
/// are what [`PreconditionerKind::Multigrid`](crate::PreconditionerKind::Multigrid) with
/// [`MultigridConfig::default`] selects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultigridConfig {
    /// Strength-of-connection threshold `θ` in `[0, 1)`: `j` is strong for
    /// `i` when `|a_ij| ≥ θ √(a_ii a_jj)`.
    pub strength_threshold: f64,
    /// Prolongation-smoothing damping `ω` (applied as `ω/λ̂` with `λ̂` the
    /// estimated spectral radius of `D_F⁻¹ A_F`). The classical smoothed-
    /// aggregation choice is `4/3`.
    pub prolongation_damping: f64,
    /// Level smoother.
    pub smoother: SmootherKind,
    /// Relaxation sweeps before restricting.
    pub pre_sweeps: usize,
    /// Relaxation sweeps after prolongating. Keep equal to
    /// [`MultigridConfig::pre_sweeps`] when the hierarchy serves as a CG
    /// preconditioner, so the cycle stays symmetric.
    pub post_sweeps: usize,
    /// Hard cap on hierarchy depth (including the coarsest level).
    pub max_levels: usize,
    /// Coarsen until an operator has at most this many unknowns, then
    /// factor it densely.
    pub direct_cells: usize,
    /// Cycle shape used by the standalone [`MultigridHierarchy::solve`]
    /// driver. The [`Preconditioner`] path ignores this and always runs
    /// V-cycles: an F-cycle is not symmetric, and CG requires an SPD
    /// preconditioner.
    pub cycle: CycleKind,
    /// Thread the cycle hot paths on levels large enough to amortize
    /// spawn cost (above [`CsrMatrix::PARALLEL_NNZ_THRESHOLD`] stored
    /// non-zeros): residual and transfer SpMVs row-partition across
    /// workers, and SSOR smoothers switch to the band-parallel additive
    /// block variant ([`Ssor::shared_banded`]). Levels below the threshold
    /// always run the bitwise-deterministic serial path regardless of this
    /// flag, so test-scale meshes are unaffected. Set `false` to force the
    /// serial path everywhere — the A/B baseline `perf_record` measures
    /// the V-cycle threading win against.
    pub parallel_sweeps: bool,
}

impl Default for MultigridConfig {
    fn default() -> Self {
        Self {
            strength_threshold: 0.08,
            prolongation_damping: 4.0 / 3.0,
            smoother: SmootherKind::Ssor { omega: 1.0 },
            pre_sweeps: 1,
            post_sweeps: 1,
            max_levels: 16,
            direct_cells: 500,
            cycle: CycleKind::V,
            parallel_sweeps: true,
        }
    }
}

/// One non-coarsest level: its operator, smoother and grid transfers.
#[derive(Debug, Clone, PartialEq)]
struct MgLevel {
    /// The level operator, shared rather than owned: on the finest level
    /// this aliases the caller's matrix (see
    /// [`MultigridHierarchy::build_shared`]), and on every level the SSOR
    /// smoother references the same allocation instead of cloning it.
    a: Arc<CsrMatrix>,
    /// Relaxation operator `M` of the Richardson sweep, reused from the
    /// solve engine's preconditioner implementations.
    smoother: AnyPreconditioner,
    /// Scale `s` of the sweep `x ← x + s·M⁻¹(b − A x)` (the Jacobi
    /// damping; 1 for SSOR, which damps internally).
    damping: f64,
    /// Prolongation to **this** level from the next-coarser one
    /// (`n_l × n_{l+1}`).
    p: CsrMatrix,
    /// Restriction `R = Pᵀ`, stored explicitly so both transfer directions
    /// run as row-major SpMV.
    r: CsrMatrix,
}

/// Dense Cholesky factorization of the coarsest operator.
#[derive(Debug, Clone, PartialEq)]
struct DenseCholesky {
    n: usize,
    /// Row-major lower factor `L` with `A = L Lᵀ`.
    l: Vec<f64>,
}

impl DenseCholesky {
    fn new(a: &CsrMatrix) -> Result<Self, NumericsError> {
        let n = a.rows();
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for (j, v) in a.row(i) {
                if j <= i {
                    l[i * n + j] = v;
                }
            }
        }
        for j in 0..n {
            for k in 0..j {
                let ljk = l[j * n + k];
                if ljk != 0.0 {
                    for i in j..n {
                        l[i * n + j] -= l[i * n + k] * ljk;
                    }
                }
            }
            let pivot = l[j * n + j];
            if !(pivot > 0.0) || !pivot.is_finite() {
                return Err(NumericsError::BadMatrix {
                    reason: format!(
                        "dense Cholesky breakdown at row {j}: pivot {pivot:.3e} is not positive"
                    ),
                });
            }
            let d = pivot.sqrt();
            for i in j..n {
                l[i * n + j] /= d;
            }
        }
        Ok(Self { n, l })
    }

    /// Adopts an already-computed row-major lower factor from the artifact
    /// restore path, re-checking the invariants [`DenseCholesky::solve`]
    /// divides by: `n²` entries, all finite, strictly positive diagonal.
    fn from_restored(n: usize, l: Vec<f64>) -> Result<Self, NumericsError> {
        let expected = n.checked_mul(n).ok_or_else(|| NumericsError::BadMatrix {
            reason: format!("dense factor dimension {n} overflows"),
        })?;
        if l.len() != expected {
            return Err(NumericsError::BadMatrix {
                reason: format!(
                    "dense factor holds {} entries, a {n}x{n} factor needs {expected}",
                    l.len()
                ),
            });
        }
        if let Some(i) = l.iter().position(|v| !v.is_finite()) {
            return Err(NumericsError::BadMatrix {
                reason: format!("dense factor entry {i} is not finite"),
            });
        }
        if let Some(j) = (0..n).find(|&j| !(l[j * n + j] > 0.0)) {
            return Err(NumericsError::BadMatrix {
                reason: format!("dense factor pivot {j} is not positive"),
            });
        }
        Ok(Self { n, l })
    }

    // Indexed loops are deliberate: the backward pass reads the strided
    // column `l[j*n + i]`, which has no contiguous-slice form.
    #[allow(clippy::needless_range_loop)]
    fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        // Forward: L y = b (y lands in x).
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[i * n + j] * x[j];
            }
            x[i] = s / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y in place.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.l[j * n + i] * x[j];
            }
            x[i] = s / self.l[i * n + i];
        }
    }
}

/// How the coarsest level is solved.
#[derive(Debug, Clone, PartialEq)]
enum CoarseSolver {
    /// Dense Cholesky — the normal case once coarsening reaches
    /// [`MultigridConfig::direct_cells`].
    Direct(DenseCholesky),
    /// Jacobi-CG fallback for a coarsest operator that is still large
    /// (coarsening stalled) or resists the dense factorization.
    Iterative { m: Jacobi, opts: SolveOptions, ws: CgWorkspace },
}

/// Per-level scratch vectors for [`MultigridHierarchy::cycle`].
///
/// Owned by the caller (or by a [`Multigrid`] preconditioner) so repeated
/// cycles allocate nothing: the buffers are sized once against a hierarchy
/// and reused for every subsequent cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MgWorkspace {
    levels: Vec<LevelBufs>,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct LevelBufs {
    b: Vec<f64>,
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
}

impl MgWorkspace {
    /// An empty workspace; buffers are sized lazily on the first cycle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes every level buffer for `h`.
    pub fn for_hierarchy(h: &MultigridHierarchy) -> Self {
        let mut ws = Self::new();
        ws.ensure(h);
        ws
    }

    fn ensure(&mut self, h: &MultigridHierarchy) {
        let sizes = h.level_sizes();
        if self.levels.len() != sizes.len()
            || self.levels.iter().zip(&sizes).any(|(l, &n)| l.b.len() != n)
        {
            self.levels = sizes
                .iter()
                .map(|&n| LevelBufs {
                    b: vec![0.0; n],
                    x: vec![0.0; n],
                    r: vec![0.0; n],
                    z: vec![0.0; n],
                })
                .collect();
        }
    }
}

/// A smoothed-aggregation multigrid hierarchy over one SPD operator.
///
/// Build once per matrix with [`MultigridHierarchy::build`], then run
/// [`cycle`](MultigridHierarchy::cycle) /
/// [`solve`](MultigridHierarchy::solve) against a caller-owned
/// [`MgWorkspace`]. For use inside CG, wrap it in [`Multigrid`] (or select
/// [`PreconditionerKind::Multigrid`](crate::PreconditionerKind::Multigrid)).
#[derive(Debug, Clone, PartialEq)]
pub struct MultigridHierarchy {
    /// The finest operator — always the same [`Arc`] as `levels[0].a`
    /// (or as `coarse_a` when the hierarchy is degenerate), stored
    /// explicitly so residual checks against "the operator being solved"
    /// need no positional reasoning about which level holds it.
    fine: Arc<CsrMatrix>,
    /// Fine-to-coarse chain of smoothed levels (possibly empty when the
    /// operator is already small enough to factor directly).
    levels: Vec<MgLevel>,
    /// The coarsest operator (kept for residuals and the CG fallback).
    coarse_a: Arc<CsrMatrix>,
    coarse: CoarseSolver,
    config: MultigridConfig,
}

impl MultigridHierarchy {
    /// Builds the hierarchy for SPD `a`, cloning it for the finest level.
    ///
    /// Callers that already hold the operator behind an [`Arc`] — every
    /// cached solve engine does — should use
    /// [`MultigridHierarchy::build_shared`] instead, which aliases the
    /// caller's matrix (at paper scale the fine operator is ~215 MB, and
    /// this clone used to be duplicated a third time inside the fine-level
    /// SSOR smoother).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadMatrix`] for a non-square matrix or a
    /// non-positive diagonal, and [`NumericsError::BadInput`] for
    /// out-of-range configuration values.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_numerics::solver::SolveOptions;
    /// use vcsel_numerics::{MgWorkspace, MultigridConfig, MultigridHierarchy, TripletBuilder};
    ///
    /// // 1-D Poisson chain with a Robin-like shift: SPD and coarsenable.
    /// let n = 1200;
    /// let mut b = TripletBuilder::new(n, n);
    /// for i in 0..n {
    ///     b.add(i, i, 2.001);
    ///     if i > 0 { b.add(i, i - 1, -1.0); }
    ///     if i + 1 < n { b.add(i, i + 1, -1.0); }
    /// }
    /// let a = b.build();
    /// let mut h = MultigridHierarchy::build(&a, &MultigridConfig::default())?;
    /// assert!(h.level_count() >= 2, "1200 unknowns must coarsen");
    ///
    /// let rhs = vec![1.0; n];
    /// let mut x = vec![0.0; n];
    /// let mut ws = MgWorkspace::for_hierarchy(&h);
    /// let stats = h.solve(&rhs, &mut x, &SolveOptions::default(), &mut ws)?;
    /// assert!(stats.residual <= 1e-9);
    /// # Ok::<(), vcsel_numerics::NumericsError>(())
    /// ```
    pub fn build(a: &CsrMatrix, config: &MultigridConfig) -> Result<Self, NumericsError> {
        Self::build_shared(Arc::new(a.clone()), config)
    }

    /// Builds the hierarchy for SPD `a` without copying it: the finest
    /// level (and its SSOR smoother) keep references to the caller's
    /// allocation, which [`MultigridHierarchy::fine_operator`] exposes for
    /// identity checks.
    ///
    /// # Errors
    ///
    /// Same contract as [`MultigridHierarchy::build`].
    pub fn build_shared(
        a: Arc<CsrMatrix>,
        config: &MultigridConfig,
    ) -> Result<Self, NumericsError> {
        Self::build_shared_with(a, config, vcsel_telemetry::global())
    }

    /// Like [`MultigridHierarchy::build_shared`], but recording build
    /// telemetry (per-level coarsening spans, coarsest-solver choice, grid
    /// and operator complexities) into an explicit sink instead of the
    /// process-wide one — the hook tests use to observe the build without
    /// touching the environment. The legacy `MG_DEBUG` stderr lines are
    /// mirrored when the sink asks for them
    /// (see [`TelemetrySink::mg_debug_mirror`](vcsel_telemetry::TelemetrySink::mg_debug_mirror)).
    ///
    /// # Errors
    ///
    /// Same contract as [`MultigridHierarchy::build`].
    pub fn build_shared_with(
        a: Arc<CsrMatrix>,
        config: &MultigridConfig,
        sink: &TelemetrySink,
    ) -> Result<Self, NumericsError> {
        if a.rows() != a.cols() {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
            });
        }
        validate_config(config)?;

        // Per-level construction telemetry: structured `multigrid` span
        // events for aggregation-quality diagnosis, with the historical
        // `MG_DEBUG` stderr lines mirrored when that alias is active.
        let mirror = sink.mg_debug_mirror();
        let mut build_span = sink.span("multigrid", "mg_build");
        let fine = Arc::clone(&a);
        let mut levels = Vec::new();
        let mut current = a;
        while current.rows() > config.direct_cells && levels.len() + 1 < config.max_levels {
            let start_ns = vcsel_telemetry::now_ns();
            let t = std::time::Instant::now();
            let Some((p, coarse)) = coarsen(&current, config)? else {
                break; // Coarsening stalled; solve this level iteratively.
            };
            if sink.is_enabled() {
                let mut ev = vcsel_telemetry::Event::new(
                    vcsel_telemetry::EventKind::Span,
                    "multigrid",
                    "mg_level",
                )
                .with_args(&[
                    Arg::u64("level", levels.len() as u64),
                    Arg::u64("cells", current.rows() as u64),
                    Arg::u64("nnz", current.nnz() as u64),
                    Arg::u64("coarse_cells", coarse.rows() as u64),
                ]);
                ev.start_ns = start_ns;
                ev.dur_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                ev.tid = vcsel_telemetry::thread_id();
                sink.record_event(ev);
            }
            if mirror {
                eprintln!(
                    "[multigrid] level {}: {} cells / {} nnz -> {} cells / {} nnz ({:.2} s)",
                    levels.len(),
                    current.rows(),
                    current.nnz(),
                    coarse.rows(),
                    coarse.nnz(),
                    t.elapsed().as_secs_f64(),
                );
            }
            let r = p.transpose();
            let (smoother, damping) = build_smoother(&current, config)?;
            levels.push(MgLevel { a: current, smoother, damping, p, r });
            current = Arc::new(coarse);
        }

        // Only *attempt* the dense factorization on a small enough
        // operator — an O(n³) Cholesky on a stalled multi-thousand-cell
        // coarsest level would dwarf the rest of the build.
        let coarse = match &*current {
            a if a.rows() <= config.direct_cells => match DenseCholesky::new(a) {
                Ok(ch) => CoarseSolver::Direct(ch),
                Err(_) => iterative_coarse(a)?,
            },
            // Too large for a dense factor (coarsening stall / level cap):
            // fall back to Jacobi-CG per visit.
            a => iterative_coarse(a)?,
        };
        let coarse_kind = match &coarse {
            CoarseSolver::Direct(_) => "dense Cholesky",
            CoarseSolver::Iterative { .. } => "Jacobi-CG",
        };
        sink.instant(
            "multigrid",
            "mg_coarsest",
            &[
                Arg::u64("cells", current.rows() as u64),
                Arg::u64("nnz", current.nnz() as u64),
                Arg::str("solver", coarse_kind),
            ],
        );
        if mirror {
            eprintln!(
                "[multigrid] coarsest: {} cells / {} nnz ({coarse_kind})",
                current.rows(),
                current.nnz(),
            );
        }
        let built = Self { fine, levels, coarse_a: current, coarse, config: *config };
        if build_span.is_armed() {
            // Grid complexity Σ level cells / fine cells, operator
            // complexity Σ level nnz / fine nnz: the aggregation-health
            // numbers the module docs quote (1.2–1.6 is healthy).
            let fine_cells = built.fine_unknowns().max(1);
            let grid_cells: usize = built.level_sizes().iter().sum();
            build_span.arg("levels", ArgValue::U64(built.level_count() as u64));
            build_span.arg("cells", ArgValue::U64(built.fine_unknowns() as u64));
            build_span.arg("grid_complexity", ArgValue::F64(grid_cells as f64 / fine_cells as f64));
            build_span.arg(
                "operator_complexity",
                ArgValue::F64(built.total_nnz() as f64 / built.fine.nnz().max(1) as f64),
            );
        }
        drop(build_span);
        Ok(built)
    }

    /// Number of operator levels, including the coarsest.
    pub fn level_count(&self) -> usize {
        self.levels.len() + 1
    }

    /// Unknowns per level, fine to coarse.
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.levels.iter().map(|l| l.a.rows()).collect();
        sizes.push(self.coarse_a.rows());
        sizes
    }

    /// Unknowns of the finest operator.
    pub fn fine_unknowns(&self) -> usize {
        self.fine.rows()
    }

    /// The finest-level operator — the same allocation the caller passed
    /// to [`MultigridHierarchy::build_shared`] (check with
    /// [`Arc::ptr_eq`]), whichever level slot it occupies.
    pub fn fine_operator(&self) -> &Arc<CsrMatrix> {
        &self.fine
    }

    /// Stored non-zeros summed over every level operator — the hierarchy's
    /// *operator complexity* numerator (divide by the fine nnz; values
    /// around 1.2–1.6 are healthy for aggregation-based coarsening).
    pub fn total_nnz(&self) -> usize {
        self.levels.iter().map(|l| l.a.nnz()).sum::<usize>() + self.coarse_a.nnz()
    }

    /// The construction parameters.
    pub fn config(&self) -> &MultigridConfig {
        &self.config
    }

    /// `(operator, prolongator)` per non-coarsest level, fine to coarse —
    /// the state the artifact codec persists (restrictions and smoothers
    /// are deterministic functions of these and are rebuilt on restore).
    pub(crate) fn transfer_pairs(&self) -> impl Iterator<Item = (&Arc<CsrMatrix>, &CsrMatrix)> {
        self.levels.iter().map(|l| (&l.a, &l.p))
    }

    /// The coarsest-level operator.
    pub(crate) fn coarse_matrix(&self) -> &CsrMatrix {
        &self.coarse_a
    }

    /// The dense Cholesky factor of the coarsest level as `(n, row-major
    /// L)`, or `None` when the coarsest solve is the Jacobi-CG fallback.
    pub(crate) fn coarse_dense_factor(&self) -> Option<(usize, &[f64])> {
        match &self.coarse {
            CoarseSolver::Direct(ch) => Some((ch.n, &ch.l)),
            CoarseSolver::Iterative { .. } => None,
        }
    }

    /// Reassembles a hierarchy from artifact-validated parts without any
    /// coarsening, factorization or spectral estimation: restrictions are
    /// re-transposed from the prolongators, smoothers rebuilt from the
    /// restored level operators (sharing their [`Arc`]s), and the coarse
    /// solver either adopts the stored dense factor or re-creates the
    /// cheap Jacobi-CG fallback.
    pub(crate) fn from_restored_parts(
        ops: Vec<Arc<CsrMatrix>>,
        prolongators: Vec<CsrMatrix>,
        coarse_a: CsrMatrix,
        coarse_dense: Option<Vec<f64>>,
        config: MultigridConfig,
    ) -> Result<Self, NumericsError> {
        validate_config(&config)?;
        if ops.len() != prolongators.len() {
            return Err(NumericsError::BadMatrix {
                reason: format!(
                    "restored hierarchy has {} operators but {} prolongators",
                    ops.len(),
                    prolongators.len()
                ),
            });
        }
        for (idx, (a, p)) in ops.iter().zip(&prolongators).enumerate() {
            let next_rows = ops.get(idx + 1).map_or(coarse_a.rows(), |coarser| coarser.rows());
            if p.rows() != a.rows() || p.cols() != next_rows {
                return Err(NumericsError::BadMatrix {
                    reason: format!(
                        "restored prolongator {idx} is {}x{}, transfer chain needs {}x{next_rows}",
                        p.rows(),
                        p.cols(),
                        a.rows()
                    ),
                });
            }
        }
        let mut levels = Vec::with_capacity(ops.len());
        for (a, p) in ops.into_iter().zip(prolongators) {
            let r = p.transpose();
            let (smoother, damping) = build_smoother(&a, &config)?;
            levels.push(MgLevel { a, smoother, damping, p, r });
        }
        let coarse_a = Arc::new(coarse_a);
        let coarse = match coarse_dense {
            Some(l) => CoarseSolver::Direct(DenseCholesky::from_restored(coarse_a.rows(), l)?),
            None => iterative_coarse(&coarse_a)?,
        };
        let fine = match levels.first() {
            Some(l) => Arc::clone(&l.a),
            None => Arc::clone(&coarse_a),
        };
        Ok(Self { fine, levels, coarse_a, coarse, config })
    }

    /// Runs one multigrid cycle on `A x = b`, improving `x` in place from
    /// its incoming value (pass zeros for a pure preconditioner
    /// application).
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` have the wrong length.
    pub fn cycle(&mut self, kind: CycleKind, b: &[f64], x: &mut [f64], ws: &mut MgWorkspace) {
        let n = self.fine_unknowns();
        assert_eq!(b.len(), n, "right-hand side length");
        assert_eq!(x.len(), n, "solution length");
        ws.ensure(self);
        ws.levels[0].b.copy_from_slice(b);
        ws.levels[0].x.copy_from_slice(x);
        self.cycle_rec(0, &mut ws.levels, kind);
        x.copy_from_slice(&ws.levels[0].x);
    }

    /// Iterates cycles until the relative residual drops below
    /// `opts.tolerance` — the standalone stationary-solver driver.
    /// Warm-starts from the incoming `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NoConvergence`] when `opts.max_iterations`
    /// cycles do not reach the tolerance, and
    /// [`NumericsError::DimensionMismatch`] for wrong buffer lengths.
    pub fn solve(
        &mut self,
        b: &[f64],
        x: &mut [f64],
        opts: &SolveOptions,
        ws: &mut MgWorkspace,
    ) -> Result<crate::solver::CgSummary, NumericsError> {
        let n = self.fine_unknowns();
        if b.len() != n || x.len() != n {
            return Err(NumericsError::DimensionMismatch {
                what: "multigrid solve operand",
                expected: n,
                got: if b.len() != n { b.len() } else { x.len() },
            });
        }
        let b_norm = norm2(b);
        if b_norm == 0.0 {
            x.fill(0.0);
            return Ok(crate::solver::CgSummary {
                iterations: 0,
                residual: 0.0,
                converged: true,
                stop: crate::solver::CgStop::Converged,
            });
        }
        ws.ensure(self);
        let kind = self.config.cycle;
        let mut residual = f64::INFINITY;
        for cycles in 0..=opts.max_iterations {
            // Residual check against the fine operator, which `self.fine`
            // aliases explicitly whether or not the hierarchy coarsened.
            {
                let bufs = &mut ws.levels[0];
                spmv(self.config.parallel_sweeps, &self.fine, x, &mut bufs.r);
                residual =
                    bufs.r.iter().zip(b).map(|(ax, bi)| (bi - ax) * (bi - ax)).sum::<f64>().sqrt()
                        / b_norm;
            }
            if residual <= opts.tolerance {
                return Ok(crate::solver::CgSummary {
                    iterations: cycles,
                    residual,
                    converged: true,
                    stop: crate::solver::CgStop::Converged,
                });
            }
            if cycles == opts.max_iterations {
                break;
            }
            self.cycle(kind, b, x, ws);
        }
        Err(NumericsError::NoConvergence {
            iterations: opts.max_iterations,
            residual,
            tolerance: opts.tolerance,
        })
    }

    /// One recursion step: `bufs[0]` holds this level's `b`/`x` (in/out)
    /// and scratch; `bufs[1..]` belong to the coarser levels.
    fn cycle_rec(&mut self, level: usize, bufs: &mut [LevelBufs], kind: CycleKind) {
        if level == self.levels.len() {
            self.solve_coarsest_into(&mut bufs[0]);
            return;
        }
        let parallel = self.config.parallel_sweeps;
        let (cur, rest) = bufs.split_at_mut(1);
        let cur = &mut cur[0];

        for _ in 0..self.config.pre_sweeps {
            smooth(parallel, &mut self.levels[level], cur);
        }
        residual_into(parallel, &self.levels[level].a, cur);
        spmv(parallel, &self.levels[level].r, &cur.r, &mut rest[0].b);
        rest[0].x.fill(0.0);
        self.cycle_rec(level + 1, rest, kind);
        prolong_correct(parallel, &self.levels[level].p, &rest[0].x, cur);

        if kind == CycleKind::F {
            // F-cycle: after the first correction, polish what remains
            // with one V-cycle before post-smoothing.
            residual_into(parallel, &self.levels[level].a, cur);
            spmv(parallel, &self.levels[level].r, &cur.r, &mut rest[0].b);
            rest[0].x.fill(0.0);
            self.cycle_rec(level + 1, rest, CycleKind::V);
            prolong_correct(parallel, &self.levels[level].p, &rest[0].x, cur);
        }

        for _ in 0..self.config.post_sweeps {
            smooth(parallel, &mut self.levels[level], cur);
        }
    }

    fn solve_coarsest_into(&mut self, bufs: &mut LevelBufs) {
        let Self { coarse_a, coarse, .. } = self;
        match coarse {
            CoarseSolver::Direct(ch) => ch.solve(&bufs.b, &mut bufs.x),
            CoarseSolver::Iterative { m, opts, ws } => {
                bufs.x.fill(0.0);
                // An inexact coarse solve only weakens the cycle, so a
                // convergence failure here is deliberately non-fatal: CG
                // leaves its best iterate in `x`.
                let _ = preconditioned_cg(coarse_a, &bufs.b, &mut bufs.x, m, opts, ws);
            }
        }
    }
}

/// Range checks on [`MultigridConfig`], shared by the build path and the
/// artifact restore path (which must re-reject a config that a newer or
/// corrupted artifact smuggles in).
fn validate_config(config: &MultigridConfig) -> Result<(), NumericsError> {
    if !(0.0..1.0).contains(&config.strength_threshold) {
        return Err(NumericsError::BadInput {
            reason: format!(
                "strength threshold must lie in [0,1), got {}",
                config.strength_threshold
            ),
        });
    }
    if !(config.prolongation_damping >= 0.0) || !config.prolongation_damping.is_finite() {
        return Err(NumericsError::BadInput {
            reason: format!(
                "prolongation damping must be non-negative, got {}",
                config.prolongation_damping
            ),
        });
    }
    match config.smoother {
        SmootherKind::DampedJacobi { omega } => {
            if !(omega > 0.0 && omega <= 1.0) {
                return Err(NumericsError::BadInput {
                    reason: format!("Jacobi smoother damping must be in (0,1], got {omega}"),
                });
            }
        }
        SmootherKind::Ssor { omega } => {
            if !(omega > 0.0 && omega < 2.0 && omega.is_finite()) {
                return Err(NumericsError::BadInput {
                    reason: format!("SSOR smoother relaxation must be in (0,2), got {omega}"),
                });
            }
        }
    }
    if config.max_levels == 0 || config.direct_cells == 0 {
        return Err(NumericsError::BadInput {
            reason: "max_levels and direct_cells must be positive".into(),
        });
    }
    Ok(())
}

/// The CG fallback for a coarsest level that resisted dense factorization
/// (stall or breakdown). Solved tightly enough to act as an exact-solve
/// surrogate on the small stalled levels the θ=0 aggregation retry leaves
/// behind, but hard-capped so a pathologically large coarsest level (e.g.
/// a user-set `max_levels` truncating the hierarchy early) bounds the
/// per-cycle cost instead of re-running a full fine-scale solve. A
/// truncated inner solve makes the preconditioner slightly inexact —
/// weaker convergence, surfaced by `MG_DEBUG=1` showing a large coarsest
/// level — which is the deliberate trade against unbounded cycle cost.
fn iterative_coarse(a: &CsrMatrix) -> Result<CoarseSolver, NumericsError> {
    Ok(CoarseSolver::Iterative {
        m: Jacobi::new(a)?,
        opts: SolveOptions {
            tolerance: 1e-12,
            max_iterations: a.rows().clamp(16, 500),
            relaxation: 1.0,
        },
        ws: CgWorkspace::with_capacity(a.rows()),
    })
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// `y = M · x`, auto-threading above the SpMV size gate when `parallel`
/// and always serial otherwise — the one dispatch point every cycle-path
/// matrix product goes through.
fn spmv(parallel: bool, m: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    if parallel {
        m.multiply_into(x, y);
    } else {
        m.mul_vec_into(x, y);
    }
}

/// `cur.r = cur.b − A · cur.x`.
fn residual_into(parallel: bool, a: &CsrMatrix, cur: &mut LevelBufs) {
    spmv(parallel, a, &cur.x, &mut cur.r);
    for (r, b) in cur.r.iter_mut().zip(&cur.b) {
        *r = b - *r;
    }
}

/// One Richardson sweep `x ← x + s·M⁻¹(b − A x)`.
fn smooth(parallel: bool, level: &mut MgLevel, cur: &mut LevelBufs) {
    residual_into(parallel, &level.a, cur);
    level.smoother.apply(&cur.r, &mut cur.z);
    for (x, z) in cur.x.iter_mut().zip(&cur.z) {
        *x += level.damping * z;
    }
}

/// `cur.x += P · coarse_x` (uses `cur.z` as the fine-size scratch).
fn prolong_correct(parallel: bool, p: &CsrMatrix, coarse_x: &[f64], cur: &mut LevelBufs) {
    spmv(parallel, p, coarse_x, &mut cur.z);
    for (x, z) in cur.x.iter_mut().zip(&cur.z) {
        *x += z;
    }
}

/// Builds one level's relaxation operator, sharing the level matrix with
/// the smoother. SSOR smoothers honour `config.parallel_sweeps` through
/// [`Ssor::auto_bands`]: serial (one band) below the SpMV size gate,
/// band-parallel block-SSOR above it. Jacobi's application threads
/// internally (bitwise-identically) whatever the flag says, so no banding
/// decision arises.
fn build_smoother(
    a: &Arc<CsrMatrix>,
    config: &MultigridConfig,
) -> Result<(AnyPreconditioner, f64), NumericsError> {
    Ok(match config.smoother {
        SmootherKind::DampedJacobi { omega } => (AnyPreconditioner::Jacobi(Jacobi::new(a)?), omega),
        SmootherKind::Ssor { omega } => {
            let bands = if config.parallel_sweeps { Ssor::auto_bands(a) } else { 1 };
            (AnyPreconditioner::Ssor(Ssor::shared_banded(Arc::clone(a), omega, bands)?), 1.0)
        }
    })
}

/// One smoothed-aggregation coarsening step: returns the prolongation and
/// the Galerkin coarse operator, or `None` when aggregation fails to
/// shrink the operator meaningfully.
fn coarsen(
    a: &CsrMatrix,
    config: &MultigridConfig,
) -> Result<Option<(CsrMatrix, CsrMatrix)>, NumericsError> {
    let n = a.rows();
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("non-positive or non-finite diagonal entry {} at row {i}", diag[i]),
        });
    }

    // --- strength graph + aggregation ------------------------------------
    // The retained graph is the one actually used, so the prolongation
    // filter below stays consistent with the aggregation.
    let (agg, n_agg, strong_ptr, strong_idx, strong_val) = {
        let theta = config.strength_threshold;
        let (ptr, idx, val) = strength_graph(a, &diag, theta);
        let (agg, n_agg) = aggregate(n, &ptr, &idx, &val);
        if theta > 0.0 && (n_agg as f64) > 0.6 * n as f64 {
            // Strength filtering stranded most cells as singletons —
            // Galerkin stencils on deep coarse levels fall below any fixed
            // threshold long before their couplings stop mattering. Retry
            // treating every coupling as strong; keep whichever
            // aggregation coarsens harder.
            let (ptr0, idx0, val0) = strength_graph(a, &diag, 0.0);
            let (agg0, n0) = aggregate(n, &ptr0, &idx0, &val0);
            if n0 < n_agg {
                (agg0, n0, ptr0, idx0, val0)
            } else {
                (agg, n_agg, ptr, idx, val)
            }
        } else {
            (agg, n_agg, ptr, idx, val)
        }
    };
    if n_agg == 0 || (n_agg as f64) > 0.9 * n as f64 {
        return Ok(None);
    }

    // --- tentative prolongation P0 (piecewise constant) ------------------
    let p0 = {
        let row_ptr: Vec<usize> = (0..=n).collect();
        let col_idx: Vec<u32> = agg.clone();
        let values = vec![1.0; n];
        CsrMatrix::from_sorted_parts(n, n_agg, row_ptr, col_idx, values)
    };

    // --- prolongation smoothing ------------------------------------------
    // Filtered Jacobi operator S = D_F⁻¹ A_F: strong couplings scaled by
    // the filtered diagonal (weak couplings lumped into it), unit
    // diagonal. Built directly in CSR form from the retained strength
    // graph, so the √(a_ii·a_jj) test is never re-evaluated.
    let s = {
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(strong_idx.len() + n);
        let mut values: Vec<f64> = Vec::with_capacity(strong_idx.len() + n);
        row_ptr.push(0usize);
        for i in 0..n {
            let row = strong_ptr[i]..strong_ptr[i + 1];
            // d_F = a_ii + Σ_weak a_ij = a_ii + (Σ_offdiag − Σ_strong);
            // guard against the (pathological) fully-weak zero-row-sum
            // case.
            let offdiag: f64 = a.row(i).filter(|&(j, _)| j != i).map(|(_, v)| v).sum();
            let strong_sum: f64 = strong_val[row.clone()].iter().sum();
            let mut d_f = diag[i] + offdiag - strong_sum;
            if !(d_f > 0.0) {
                d_f = diag[i];
            }
            // Graph rows are column-ascending and exclude the diagonal:
            // splice the unit diagonal entry into its sorted slot.
            let mut pushed_diag = false;
            for k in row {
                let j = strong_idx[k];
                if !pushed_diag && j as usize > i {
                    col_idx.push(i as u32);
                    values.push(1.0);
                    pushed_diag = true;
                }
                col_idx.push(j);
                values.push(strong_val[k] / d_f);
            }
            if !pushed_diag {
                col_idx.push(i as u32);
                values.push(1.0);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_sorted_parts(n, n, row_ptr, col_idx, values)
    };

    let lambda = estimate_spectral_radius(&s, 10).max(1.0);
    let sp0 = s.multiply_matrix(&p0)?;
    let p = p0.add_scaled(&sp0, -config.prolongation_damping / lambda)?;

    // --- Galerkin coarse operator ----------------------------------------
    let ap = a.multiply_matrix(&p)?;
    let coarse = p.transpose().multiply_matrix(&ap)?;
    // RAP of a valid symmetric fine operator must stay structurally valid
    // and symmetric; a failure here means the transfer construction above
    // is broken (debug builds only).
    debug_assert!(
        coarse.validate_symmetric().is_ok(),
        "Galerkin product produced an invalid coarse operator: {:?}",
        coarse.validate_symmetric().err()
    );
    Ok(Some((p, coarse)))
}

/// CSR-shaped strength-of-connection graph: off-diagonal `j` appears in
/// row `i` when `|a_ij| ≥ θ √(a_ii a_jj)` (θ = 0 keeps every coupling).
/// Values are the **signed** couplings `a_ij`, so the prolongation filter
/// can reuse them; aggregation compares magnitudes.
fn strength_graph(a: &CsrMatrix, diag: &[f64], theta: f64) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let n = a.rows();
    let mut ptr = Vec::with_capacity(n + 1);
    let mut idx: Vec<u32> = Vec::new();
    let mut val: Vec<f64> = Vec::new();
    ptr.push(0usize);
    for i in 0..n {
        for (j, v) in a.row(i) {
            if j != i && v.abs() >= theta * (diag[i] * diag[j]).sqrt() {
                idx.push(j as u32);
                val.push(v);
            }
        }
        ptr.push(idx.len());
    }
    (ptr, idx, val)
}

/// Greedy root-based aggregation over the strength graph. Returns the
/// node→aggregate map and the aggregate count.
fn aggregate(
    n: usize,
    strong_ptr: &[usize],
    strong_idx: &[u32],
    strong_val: &[f64],
) -> (Vec<u32>, usize) {
    const UNASSIGNED: u32 = u32::MAX;
    let mut agg = vec![UNASSIGNED; n];
    let mut count: u32 = 0;

    // Pass 1: a node whose strong neighbourhood is fully unassigned roots
    // a new aggregate and claims that whole neighbourhood.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let nbrs = &strong_idx[strong_ptr[i]..strong_ptr[i + 1]];
        if !nbrs.is_empty() && nbrs.iter().all(|&j| agg[j as usize] == UNASSIGNED) {
            agg[i] = count;
            for &j in nbrs {
                agg[j as usize] = count;
            }
            count += 1;
        }
    }

    // Pass 2 (twice, to let chains resolve): stragglers join the aggregate
    // of their strongest already-assigned neighbour.
    for _ in 0..2 {
        for i in 0..n {
            if agg[i] != UNASSIGNED {
                continue;
            }
            let mut best: Option<(f64, u32)> = None;
            for k in strong_ptr[i]..strong_ptr[i + 1] {
                let j = strong_idx[k] as usize;
                if agg[j] != UNASSIGNED && best.is_none_or(|(w, _)| strong_val[k].abs() > w) {
                    best = Some((strong_val[k].abs(), agg[j]));
                }
            }
            if let Some((_, target)) = best {
                agg[i] = target;
            }
        }
    }

    // Pass 3: whatever remains (cells with no strong couplings) becomes a
    // singleton aggregate.
    for a in agg.iter_mut() {
        if *a == UNASSIGNED {
            *a = count;
            count += 1;
        }
    }
    (agg, count as usize)
}

/// Crude power-iteration estimate of `ρ(S)` from a deterministic start
/// vector — accurate to the few percent prolongation smoothing needs.
fn estimate_spectral_radius(s: &CsrMatrix, iterations: usize) -> f64 {
    let n = s.rows();
    let mut v: Vec<f64> =
        (0..n).map(|i| 1.0 + 0.4 * (((i * 7919) % 1000) as f64 / 1000.0 - 0.5)).collect();
    let mut sv = vec![0.0; n];
    let mut lambda = 1.0;
    for _ in 0..iterations {
        s.multiply_into(&v, &mut sv);
        let norm = norm2(&sv);
        if !(norm > 0.0) || !norm.is_finite() {
            return 1.0;
        }
        let vnorm = norm2(&v).max(1e-300);
        lambda = norm / vnorm;
        let inv = 1.0 / norm;
        for (vi, svi) in v.iter_mut().zip(&sv) {
            *vi = svi * inv;
        }
    }
    lambda
}

/// One multigrid cycle as a [`Preconditioner`]: the form the solve engines
/// consume via [`PreconditionerKind::Multigrid`](crate::PreconditionerKind::Multigrid).
///
/// Owns its hierarchy and workspace, so every application is
/// allocation-free after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Multigrid {
    hierarchy: MultigridHierarchy,
    ws: MgWorkspace,
}

impl Multigrid {
    /// Builds the hierarchy for `a` and pre-sizes the cycle workspace.
    ///
    /// # Errors
    ///
    /// Propagates [`MultigridHierarchy::build`] failures, and additionally
    /// rejects sweep configurations that would make the V-cycle an invalid
    /// CG preconditioner: `pre_sweeps` must equal `post_sweeps` (symmetry)
    /// and be at least 1 (a smoother-free cycle is rank-deficient). The
    /// standalone [`MultigridHierarchy`] drivers accept asymmetric sweeps;
    /// only the [`Preconditioner`] wrapper enforces the SPD contract.
    pub fn new(a: &CsrMatrix, config: &MultigridConfig) -> Result<Self, NumericsError> {
        Self::new_shared(Arc::new(a.clone()), config)
    }

    /// Like [`Multigrid::new`] but referencing a shared operator instead
    /// of cloning it (see [`MultigridHierarchy::build_shared`]); the form
    /// [`PreconditionerKind::Multigrid`](crate::PreconditionerKind::Multigrid)
    /// builds through
    /// [`build_shared`](crate::PreconditionerKind::build_shared).
    ///
    /// # Errors
    ///
    /// Same contract as [`Multigrid::new`].
    pub fn new_shared(a: Arc<CsrMatrix>, config: &MultigridConfig) -> Result<Self, NumericsError> {
        require_symmetric_sweeps(config)?;
        let hierarchy = MultigridHierarchy::build_shared(a, config)?;
        let ws = MgWorkspace::for_hierarchy(&hierarchy);
        Ok(Self { hierarchy, ws })
    }

    /// Wraps an already-built (typically artifact-restored) hierarchy as a
    /// CG preconditioner, paying only the workspace sizing — the
    /// zero-factorization path of the engine cache.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadInput`] when the hierarchy's sweep
    /// configuration violates the SPD contract (`pre_sweeps` must equal
    /// `post_sweeps` and be at least 1), same as [`Multigrid::new`].
    pub fn from_hierarchy(hierarchy: MultigridHierarchy) -> Result<Self, NumericsError> {
        require_symmetric_sweeps(hierarchy.config())?;
        let ws = MgWorkspace::for_hierarchy(&hierarchy);
        Ok(Self { hierarchy, ws })
    }

    /// The underlying hierarchy (level counts, complexity — for benches
    /// and logs).
    pub fn hierarchy(&self) -> &MultigridHierarchy {
        &self.hierarchy
    }
}

/// The SPD-preconditioner sweep contract [`Multigrid`] enforces on both
/// its build and restore constructors.
fn require_symmetric_sweeps(config: &MultigridConfig) -> Result<(), NumericsError> {
    if config.pre_sweeps != config.post_sweeps || config.pre_sweeps == 0 {
        return Err(NumericsError::BadInput {
            reason: format!(
                "a CG-preconditioning V-cycle needs equal, non-zero pre/post sweeps \
                 (got {}/{}): asymmetry breaks M's symmetry, zero sweeps its rank",
                config.pre_sweeps, config.post_sweeps
            ),
        });
    }
    Ok(())
}

impl Preconditioner for Multigrid {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        z.fill(0.0);
        // Always a V-cycle, whatever `config.cycle` says: with symmetric
        // smoothers and equal pre-/post-sweeps the V-cycle is an SPD
        // operator, which CG requires; the F-cycle is not.
        self.hierarchy.cycle(CycleKind::V, r, z, &mut self.ws);
    }

    fn name(&self) -> &'static str {
        "multigrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    /// 2-D 5-point Poisson operator with a small Robin-like shift.
    fn poisson_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut b = TripletBuilder::with_capacity(n, n, 5 * n);
        for j in 0..ny {
            for i in 0..nx {
                let c = j * nx + i;
                let mut diag = 1e-3;
                if i + 1 < nx {
                    b.add(c, c + 1, -1.0);
                    b.add(c + 1, c, -1.0);
                    diag += 1.0;
                }
                if i > 0 {
                    diag += 1.0;
                }
                if j + 1 < ny {
                    b.add(c, c + nx, -1.0);
                    b.add(c + nx, c, -1.0);
                    diag += 1.0;
                }
                if j > 0 {
                    diag += 1.0;
                }
                b.add(c, c, diag);
            }
        }
        b.build()
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.17).sin() + 0.4).collect()
    }

    fn rel_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x).unwrap();
        let num: f64 = ax.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        num / norm2(b)
    }

    #[test]
    fn hierarchy_coarsens_poisson() {
        let a = poisson_2d(40, 40);
        let h = MultigridHierarchy::build(&a, &MultigridConfig::default()).unwrap();
        assert!(h.level_count() >= 2, "1600 unknowns must coarsen at least once");
        let sizes = h.level_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "levels must shrink: {sizes:?}");
        }
        assert!(*sizes.last().unwrap() <= 500);
        // Operator complexity stays bounded.
        assert!((h.total_nnz() as f64) < 2.5 * a.nnz() as f64, "complexity blow-up");
    }

    #[test]
    fn v_cycles_solve_standalone() {
        let a = poisson_2d(30, 30);
        let b = rhs(a.rows());
        let mut h = MultigridHierarchy::build(&a, &MultigridConfig::default()).unwrap();
        let mut ws = MgWorkspace::for_hierarchy(&h);
        let mut x = vec![0.0; a.rows()];
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 60, relaxation: 1.0 };
        let stats = h.solve(&b, &mut x, &opts, &mut ws).expect("stationary multigrid converges");
        assert!(stats.iterations < 40, "took {} cycles", stats.iterations);
        assert!(rel_residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn f_cycle_contracts_at_least_as_fast_as_v() {
        let a = poisson_2d(30, 30);
        let b = rhs(a.rows());
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 60, relaxation: 1.0 };
        let mut cycles = Vec::new();
        for kind in [CycleKind::V, CycleKind::F] {
            let config = MultigridConfig { cycle: kind, ..Default::default() };
            let mut h = MultigridHierarchy::build(&a, &config).unwrap();
            let mut ws = MgWorkspace::for_hierarchy(&h);
            let mut x = vec![0.0; a.rows()];
            let stats = h.solve(&b, &mut x, &opts, &mut ws).expect("converges");
            assert!(rel_residual(&a, &x, &b) < 1e-9);
            cycles.push(stats.iterations);
        }
        assert!(cycles[1] <= cycles[0], "F {} vs V {} cycles", cycles[1], cycles[0]);
    }

    #[test]
    fn cycle_counts_are_mesh_independent() {
        // The multigrid promise: refining the mesh must not blow up the
        // cycle count. 16× more unknowns may cost at most ~1.5× cycles.
        let opts = SolveOptions { tolerance: 1e-8, max_iterations: 80, relaxation: 1.0 };
        let mut counts = Vec::new();
        for nx in [40usize, 160] {
            // Both sizes must traverse a genuine multi-level hierarchy (the
            // coarse direct solve alone would trivially win at small n).
            let a = poisson_2d(nx, nx);
            let b = rhs(a.rows());
            let mut h = MultigridHierarchy::build(&a, &MultigridConfig::default()).unwrap();
            assert!(h.level_count() >= 2);
            let mut ws = MgWorkspace::for_hierarchy(&h);
            let mut x = vec![0.0; a.rows()];
            let stats = h.solve(&b, &mut x, &opts, &mut ws).expect("converges");
            counts.push(stats.iterations.max(1));
        }
        assert!(
            (counts[1] as f64) <= 1.5 * counts[0] as f64,
            "cycle counts grew with the mesh: {counts:?}"
        );
    }

    #[test]
    fn tiny_matrix_degenerates_to_direct_solve() {
        let a = poisson_2d(4, 4); // 16 unknowns < direct_cells
        let b = rhs(16);
        let mut m = Multigrid::new(&a, &MultigridConfig::default()).unwrap();
        assert_eq!(m.hierarchy().level_count(), 1);
        let mut z = vec![0.0; 16];
        m.apply(&b, &mut z);
        // Degenerate hierarchy = dense Cholesky = exact solve.
        assert!(rel_residual(&a, &z, &b) < 1e-12);
        assert_eq!(m.name(), "multigrid");
    }

    #[test]
    fn preconditioner_application_is_symmetric_and_positive() {
        // A legal CG preconditioner must be SPD: check ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩
        // and xᵀM⁻¹x > 0 for the V-cycle with symmetric smoothing.
        let a = poisson_2d(12, 12);
        let n = a.rows();
        let config = MultigridConfig { direct_cells: 20, ..Default::default() };
        let mut m = Multigrid::new(&a, &config).unwrap();
        assert!(m.hierarchy().level_count() >= 2);
        let u: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 3 % 13) as f64) - 6.0).collect();
        let mut mu = vec![0.0; n];
        let mut mv = vec![0.0; n];
        m.apply(&u, &mut mu);
        m.apply(&v, &mut mv);
        let dot = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>();
        let (umv, vmu) = (dot(&u, &mv), dot(&v, &mu));
        let scale = umv.abs().max(vmu.abs()).max(1e-300);
        assert!((umv - vmu).abs() / scale < 1e-10, "not symmetric: {umv} vs {vmu}");
        assert!(dot(&u, &mu) > 0.0, "not positive definite");
    }

    #[test]
    fn jacobi_smoother_variant_works() {
        let a = poisson_2d(25, 25);
        let b = rhs(a.rows());
        let config = MultigridConfig {
            smoother: SmootherKind::DampedJacobi { omega: 0.67 },
            pre_sweeps: 2,
            post_sweeps: 2,
            ..Default::default()
        };
        let mut h = MultigridHierarchy::build(&a, &config).unwrap();
        let mut ws = MgWorkspace::new();
        let mut x = vec![0.0; a.rows()];
        let opts = SolveOptions { tolerance: 1e-9, max_iterations: 100, relaxation: 1.0 };
        h.solve(&b, &mut x, &opts, &mut ws).expect("Jacobi-smoothed multigrid converges");
        assert!(rel_residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn validation_rejects_bad_config() {
        let a = poisson_2d(5, 5);
        for config in [
            MultigridConfig { strength_threshold: 1.0, ..Default::default() },
            MultigridConfig { strength_threshold: -0.1, ..Default::default() },
            MultigridConfig { prolongation_damping: f64::NAN, ..Default::default() },
            MultigridConfig { max_levels: 0, ..Default::default() },
            MultigridConfig { direct_cells: 0, ..Default::default() },
            MultigridConfig {
                smoother: SmootherKind::DampedJacobi { omega: 0.0 },
                ..Default::default()
            },
        ] {
            assert!(MultigridHierarchy::build(&a, &config).is_err(), "{config:?} must fail");
        }
        let mut nonsquare = TripletBuilder::new(2, 3);
        nonsquare.add(0, 0, 1.0);
        let nonsquare = nonsquare.build();
        assert!(MultigridHierarchy::build(&nonsquare, &MultigridConfig::default()).is_err());
    }

    #[test]
    fn hierarchy_shares_the_fine_operator_instead_of_cloning() {
        let a = Arc::new(poisson_2d(40, 40));
        let h =
            MultigridHierarchy::build_shared(Arc::clone(&a), &MultigridConfig::default()).unwrap();
        assert!(h.level_count() >= 2);
        assert!(
            Arc::ptr_eq(h.fine_operator(), &a),
            "the finest level must alias the caller's allocation"
        );
        // The fine level and its SSOR smoother both reference `a`; with the
        // caller's own handle that is at least 3 strong counts and zero
        // extra copies of the operator payload.
        assert!(Arc::strong_count(&a) >= 3, "got {}", Arc::strong_count(&a));

        // Degenerate (direct-solve) hierarchies alias it too.
        let tiny = Arc::new(poisson_2d(4, 4));
        let h = MultigridHierarchy::build_shared(Arc::clone(&tiny), &MultigridConfig::default())
            .unwrap();
        assert_eq!(h.level_count(), 1);
        assert!(Arc::ptr_eq(h.fine_operator(), &tiny));

        // The legacy borrowing entry point still owns an independent copy.
        let owned = MultigridHierarchy::build(&a, &MultigridConfig::default()).unwrap();
        assert!(!Arc::ptr_eq(owned.fine_operator(), &a));
    }

    #[test]
    fn parallel_and_serial_sweep_configs_agree() {
        // Below the SpMV size gate both configurations must run the same
        // serial code (bitwise-identical fields); this pins the gating
        // promise that test-scale meshes are unaffected by threading.
        let a = poisson_2d(40, 40);
        let b = rhs(a.rows());
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 60, relaxation: 1.0 };
        let mut results = Vec::new();
        for parallel_sweeps in [true, false] {
            let config = MultigridConfig { parallel_sweeps, ..Default::default() };
            let mut h = MultigridHierarchy::build(&a, &config).unwrap();
            let mut ws = MgWorkspace::for_hierarchy(&h);
            let mut x = vec![0.0; a.rows()];
            let stats = h.solve(&b, &mut x, &opts, &mut ws).expect("converges");
            results.push((stats.iterations, x));
        }
        assert_eq!(results[0].0, results[1].0, "cycle counts must match below the gate");
        assert_eq!(results[0].1, results[1].1, "fields must be bitwise identical below the gate");
    }

    #[test]
    fn solve_validates_and_handles_zero_rhs() {
        let a = poisson_2d(6, 6);
        let mut h = MultigridHierarchy::build(&a, &MultigridConfig::default()).unwrap();
        let mut ws = MgWorkspace::new();
        let mut x = vec![1.0; 36];
        let opts = SolveOptions::default();
        let stats = h.solve(&[0.0; 36], &mut x, &opts, &mut ws).unwrap();
        assert_eq!(stats.iterations, 0);
        assert_eq!(x, vec![0.0; 36]);
        let mut short = vec![0.0; 5];
        assert!(h.solve(&[0.0; 36], &mut short, &opts, &mut ws).is_err());
    }
}
