//! Error type for numerical routines.

use core::fmt;

/// Errors produced by the numerical kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// A matrix/vector dimension did not match (`expected`, `got`).
    DimensionMismatch {
        /// Description of the operand whose size is wrong.
        what: &'static str,
        /// Size required by the operation.
        expected: usize,
        /// Size actually supplied.
        got: usize,
    },
    /// An iterative solver hit its iteration cap before converging.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Relative residual norm when the solver gave up.
        residual: f64,
        /// Relative residual norm requested.
        tolerance: f64,
    },
    /// The system matrix is unusable (zero/negative diagonal, NaN entry, …).
    BadMatrix {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// An input table or argument is empty or malformed.
    BadInput {
        /// Explanation of what is wrong.
        reason: String,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { what, expected, got } => {
                write!(f, "dimension mismatch for {what}: expected {expected}, got {got}")
            }
            Self::NoConvergence { iterations, residual, tolerance } => write!(
                f,
                "solver failed to converge after {iterations} iterations \
                 (relative residual {residual:.3e}, tolerance {tolerance:.3e})"
            ),
            Self::BadMatrix { reason } => write!(f, "bad matrix: {reason}"),
            Self::BadInput { reason } => write!(f, "bad input: {reason}"),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = NumericsError::NoConvergence { iterations: 100, residual: 1e-3, tolerance: 1e-9 };
        let msg = err.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("1.000e-3"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<NumericsError>();
    }
}
