//! Iterative solvers for the sparse SPD systems produced by FVM assembly.
//!
//! The workhorse is [`preconditioned_cg`]: conjugate gradient with a
//! pluggable [`Preconditioner`], a warm-start initial
//! guess, and caller-owned scratch buffers ([`CgWorkspace`]) so the
//! iteration loop performs **zero allocations** — the shape repeated
//! transient stepping and multi-right-hand-side calibration need. Around it:
//!
//! * [`conjugate_gradient`] — the legacy cold-start Jacobi-CG entry point,
//!   now a thin wrapper over [`preconditioned_cg`],
//! * [`sor`] — successive over-relaxation (ω = 1 gives Gauss-Seidel); slower
//!   but simple, used as a cross-check and in ablation benchmarks,
//! * [`bicgstab`] — for mildly non-symmetric systems (e.g. upwinded
//!   convection terms if a user extends the solver).

use crate::precond::{Jacobi, Preconditioner};
use crate::{CsrMatrix, NumericsError};

/// Convergence controls for the iterative solvers.
///
/// # Example
///
/// ```
/// use vcsel_numerics::solver::SolveOptions;
///
/// let opts = SolveOptions { tolerance: 1e-10, max_iterations: 20_000, ..Default::default() };
/// assert!(opts.tolerance < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Relative residual tolerance ‖b − Ax‖₂ / ‖b‖₂ at which to stop.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Over-relaxation factor for [`sor`] (ignored by the Krylov methods).
    /// Must lie in `(0, 2)`.
    pub relaxation: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self { tolerance: 1e-9, max_iterations: 10_000, relaxation: 1.6 }
    }
}

/// Outcome of a successful iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The computed solution vector.
    pub solution: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual norm.
    pub residual: f64,
    /// Whether the residual met the requested tolerance. The one-shot
    /// drivers ([`conjugate_gradient`], [`sor`], [`bicgstab`]) error on
    /// non-convergence, so their `Ok` solutions always carry `true`; the
    /// field exists so callers that forward a [`Solution`] never have to
    /// re-derive convergence from `residual` themselves.
    pub converged: bool,
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub(crate) fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn validate_system(a: &CsrMatrix, b: &[f64]) -> Result<(), NumericsError> {
    if a.rows() != a.cols() {
        return Err(NumericsError::BadMatrix {
            reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != a.rows() {
        return Err(NumericsError::DimensionMismatch {
            what: "right-hand side",
            expected: a.rows(),
            got: b.len(),
        });
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::BadInput {
            reason: "right-hand side contains non-finite values".into(),
        });
    }
    Ok(())
}

/// Caller-owned scratch vectors for [`preconditioned_cg`].
///
/// Holding one workspace per solve engine keeps the CG iteration loop free
/// of allocations across repeated solves: the four direction/residual
/// vectors are resized once on first use and reused afterwards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    /// Relative residual per iteration of the most recent
    /// [`preconditioned_cg`] run, index 0 holding the pre-iteration
    /// (warm-start) residual. Cleared by every solve; filled only while
    /// [`log_residuals`](CgWorkspace::log_residuals) is set. The solver
    /// only ever `clear`s and `push`es — callers that enable logging
    /// should `reserve` for `max_iterations + 2` entries up front so the
    /// CG loop itself never reallocates (the `SolveLadder` does).
    pub residual_history: Vec<f64>,
    /// Telemetry switch: when `true`, [`preconditioned_cg`] records its
    /// per-iteration residuals into
    /// [`residual_history`](CgWorkspace::residual_history). Capturing
    /// never feeds back into the iteration, so enabling it cannot change
    /// a single bit of the solution.
    pub log_residuals: bool,
}

impl CgWorkspace {
    /// An empty workspace; buffers are sized lazily by the solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes every buffer for systems of `n` unknowns.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
            residual_history: Vec::new(),
            log_residuals: false,
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.r.len() != n {
            self.r.resize(n, 0.0);
            self.z.resize(n, 0.0);
            self.p.resize(n, 0.0);
            self.ap.resize(n, 0.0);
        }
    }
}

/// Iterations without a meaningful best-residual improvement (relative
/// improvement below 10⁻⁶) before [`preconditioned_cg`] declares a stall.
///
/// Healthy CG on our SPD systems improves its best residual far more than
/// one part in 10⁶ every few iterations even when convergence is slow; a
/// window this long without progress means the iteration is going nowhere
/// (e.g. a corrupted preconditioner made the search directions useless)
/// and burning the remaining iteration budget would not change that.
pub const STALL_WINDOW: usize = 500;

/// Minimum relative best-residual improvement that counts as progress for
/// the [`STALL_WINDOW`] stall detector.
pub(crate) const STALL_IMPROVEMENT: f64 = 1e-6;

/// Relative residual beyond which [`preconditioned_cg`] declares
/// divergence. A cold start begins at a relative residual of 1 and a warm
/// start near it; growth past this limit (or a NaN/Inf residual) means the
/// iterate is running away, not converging.
pub const DIVERGENCE_LIMIT: f64 = 1e10;

/// Why a [`preconditioned_cg`] run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgStop {
    /// The relative residual met the tolerance.
    Converged,
    /// The iteration cap was reached with the residual still above the
    /// tolerance.
    IterationCap,
    /// The best residual made no meaningful progress for
    /// [`STALL_WINDOW`] consecutive iterations.
    Stalled,
    /// The residual exceeded [`DIVERGENCE_LIMIT`] or became non-finite.
    /// The caller's `x` holds a runaway iterate and must not be used.
    Diverged,
}

/// Iteration statistics of a [`preconditioned_cg`] solve (the solution
/// itself lands in the caller's `x`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSummary {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual norm ‖b − Ax‖₂ / ‖b‖₂.
    pub residual: f64,
    /// Whether `residual` met the requested tolerance. A `false` here is a
    /// typed outcome, not an error: the caller decides whether to escalate
    /// (e.g. through a [`SolveLadder`](crate::SolveLadder)), retry, or fail.
    pub converged: bool,
    /// Why the iteration stopped.
    pub stop: CgStop,
}

impl CgSummary {
    /// Converts a non-converged summary into the legacy
    /// [`NumericsError::NoConvergence`] error, for callers that have no
    /// recovery path and must fail loudly.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NoConvergence`] when
    /// [`converged`](CgSummary::converged) is `false`.
    pub fn require_converged(self, opts: &SolveOptions) -> Result<CgSummary, NumericsError> {
        if self.converged {
            Ok(self)
        } else {
            Err(NumericsError::NoConvergence {
                iterations: self.iterations,
                residual: self.residual,
                tolerance: opts.tolerance,
            })
        }
    }
}

/// Solves `A x = b` with preconditioned conjugate gradient, warm-starting
/// from the incoming contents of `x`.
///
/// `x` is **in/out**: on entry it is the initial guess (pass zeros for a
/// cold start; the previous time step or the previous right-hand side's
/// solution for a warm start), on successful return it holds the solution.
/// Scratch vectors come from `ws`, so the iteration loop allocates nothing;
/// one workspace can serve many solves of the same (or different) sizes.
///
/// `A` must be symmetric positive definite — which the FVM conduction matrix
/// always is (harmonic-mean conductances plus a positive Robin boundary
/// term). Convergence is declared on the *relative* residual, so a warm
/// start that already satisfies the tolerance returns after zero iterations.
///
/// Failure to converge is a **typed outcome**, not an error: hitting the
/// iteration cap, stalling ([`STALL_WINDOW`] iterations without progress)
/// or diverging (residual past [`DIVERGENCE_LIMIT`] or non-finite) returns
/// `Ok` with [`CgSummary::converged`] `false` and the reason in
/// [`CgSummary::stop`]. Callers must check the flag — `x` holds the last
/// iterate, which after a [`CgStop::Diverged`] stop must not be used.
/// Callers without a recovery path can use
/// [`CgSummary::require_converged`]; callers with fallback preconditioners
/// should use a [`SolveLadder`](crate::SolveLadder).
///
/// # Errors
///
/// * [`NumericsError::BadMatrix`] if `A` is not square or indefiniteness is
///   detected (`pᵀAp ≤ 0`),
/// * [`NumericsError::DimensionMismatch`] if `b` or `x` have the wrong
///   length,
/// * [`NumericsError::BadInput`] for non-finite entries in `b` or `x`.
///
/// # Example
///
/// ```
/// use vcsel_numerics::solver::{preconditioned_cg, CgWorkspace, SolveOptions};
/// use vcsel_numerics::{IncompleteCholesky, TripletBuilder};
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 4.0); b.add(1, 1, 9.0);
/// let a = b.build();
/// let mut m = IncompleteCholesky::new(&a)?;
/// let mut ws = CgWorkspace::new();
/// let mut x = vec![0.0; 2];
/// let stats = preconditioned_cg(&a, &[8.0, 27.0], &mut x, &mut m, &Default::default(), &mut ws)?;
/// assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 3.0).abs() < 1e-9);
/// // Warm restart from the solution: converged before the first iteration.
/// let again = preconditioned_cg(&a, &[8.0, 27.0], &mut x, &mut m, &Default::default(), &mut ws)?;
/// assert_eq!(again.iterations, 0);
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
pub fn preconditioned_cg<P: Preconditioner + ?Sized>(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    m: &mut P,
    opts: &SolveOptions,
    ws: &mut CgWorkspace,
) -> Result<CgSummary, NumericsError> {
    validate_system(a, b)?;
    let n = a.rows();
    if x.len() != n {
        return Err(NumericsError::DimensionMismatch {
            what: "initial guess",
            expected: n,
            got: x.len(),
        });
    }
    if x.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::BadInput {
            reason: "initial guess contains non-finite values".into(),
        });
    }
    // A stale history from the previous solve must never be read as this
    // solve's; clearing keeps the buffer's capacity (no allocation).
    ws.residual_history.clear();

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        return Ok(CgSummary {
            iterations: 0,
            residual: 0.0,
            converged: true,
            stop: CgStop::Converged,
        });
    }

    ws.ensure(n);
    // r = b − A·x (skip the matvec for an all-zero guess).
    if x.iter().all(|&v| v == 0.0) {
        ws.r.copy_from_slice(b);
    } else {
        a.multiply_into(x, &mut ws.ap);
        for (ri, (bi, ai)) in ws.r.iter_mut().zip(b.iter().zip(&ws.ap)) {
            *ri = bi - ai;
        }
    }
    m.apply(&ws.r, &mut ws.z);
    ws.p.copy_from_slice(&ws.z);
    let mut rz = dot(&ws.r, &ws.z);

    let mut best_res = f64::INFINITY;
    let mut since_best = 0usize;
    for iteration in 0..opts.max_iterations {
        let res = norm2(&ws.r) / b_norm;
        if ws.log_residuals {
            ws.residual_history.push(res);
        }
        if res <= opts.tolerance {
            return Ok(CgSummary {
                iterations: iteration,
                residual: res,
                converged: true,
                stop: CgStop::Converged,
            });
        }
        if !res.is_finite() || res > DIVERGENCE_LIMIT {
            return Ok(CgSummary {
                iterations: iteration,
                residual: res,
                converged: false,
                stop: CgStop::Diverged,
            });
        }
        if res < best_res * (1.0 - STALL_IMPROVEMENT) {
            best_res = res;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= STALL_WINDOW {
                return Ok(CgSummary {
                    iterations: iteration,
                    residual: res,
                    converged: false,
                    stop: CgStop::Stalled,
                });
            }
        }

        a.multiply_into(&ws.p, &mut ws.ap);
        let pap = dot(&ws.p, &ws.ap);
        if pap <= 0.0 {
            return Err(indefinite_matrix_error(pap));
        }
        let alpha = rz / pap;
        for (i, xi) in x.iter_mut().enumerate() {
            *xi += alpha * ws.p[i];
            ws.r[i] -= alpha * ws.ap[i];
        }
        m.apply(&ws.r, &mut ws.z);
        let rz_next = dot(&ws.r, &ws.z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            ws.p[i] = ws.z[i] + beta * ws.p[i];
        }
    }

    let res = norm2(&ws.r) / b_norm;
    if ws.log_residuals {
        ws.residual_history.push(res);
    }
    let converged = res <= opts.tolerance;
    Ok(CgSummary {
        iterations: opts.max_iterations,
        residual: res,
        converged,
        stop: if converged { CgStop::Converged } else { CgStop::IterationCap },
    })
}

/// Builds the indefinite-matrix error outside the CG iteration loop: the
/// loop body is a registered hot path (lint.toml) and must stay
/// allocation-free, while this failure path may format freely.
#[cold]
#[inline(never)]
pub(crate) fn indefinite_matrix_error(pap: f64) -> NumericsError {
    NumericsError::BadMatrix {
        reason: format!("matrix is not positive definite (pᵀAp = {pap:.3e})"),
    }
}

/// Solves `A x = b` with Jacobi-preconditioned conjugate gradient from a
/// zero initial guess.
///
/// This is the legacy one-shot entry point; engines that solve the same
/// system repeatedly should hold a [`Preconditioner`]
/// and a [`CgWorkspace`] and call [`preconditioned_cg`] directly.
///
/// # Errors
///
/// * [`NumericsError::BadMatrix`] if `A` is not square or has a
///   non-positive diagonal entry,
/// * [`NumericsError::DimensionMismatch`] if `b` has the wrong length,
/// * [`NumericsError::NoConvergence`] if the iteration cap is reached.
///
/// # Example
///
/// ```
/// use vcsel_numerics::{TripletBuilder, solver};
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 4.0); b.add(1, 1, 9.0);
/// let a = b.build();
/// let s = solver::conjugate_gradient(&a, &[8.0, 27.0], &Default::default())?;
/// assert!((s.solution[0] - 2.0).abs() < 1e-9);
/// assert!((s.solution[1] - 3.0).abs() < 1e-9);
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    opts: &SolveOptions,
) -> Result<Solution, NumericsError> {
    validate_system(a, b)?;
    let mut m = Jacobi::new(a)?;
    let mut x = vec![0.0; a.rows()];
    let mut ws = CgWorkspace::new();
    let stats = preconditioned_cg(a, b, &mut x, &mut m, opts, &mut ws)?.require_converged(opts)?;
    Ok(Solution {
        solution: x,
        iterations: stats.iterations,
        residual: stats.residual,
        converged: stats.converged,
    })
}

/// Solves `A x = b` with successive over-relaxation.
///
/// With `opts.relaxation == 1.0` this is plain Gauss-Seidel. Used as a
/// slower cross-check of the CG solver and in the solver-ablation bench.
///
/// # Errors
///
/// Same contract as [`conjugate_gradient`]; additionally rejects a
/// relaxation factor outside `(0, 2)`.
pub fn sor(a: &CsrMatrix, b: &[f64], opts: &SolveOptions) -> Result<Solution, NumericsError> {
    validate_system(a, b)?;
    if !(opts.relaxation > 0.0 && opts.relaxation < 2.0) {
        return Err(NumericsError::BadInput {
            reason: format!("SOR relaxation factor must be in (0,2), got {}", opts.relaxation),
        });
    }
    let n = a.rows();
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("zero or non-finite diagonal entry at row {i}"),
        });
    }

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(Solution {
            solution: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
            converged: true,
        });
    }

    let mut x = vec![0.0; n];
    let mut residual_buf = vec![0.0; n];
    for iteration in 0..opts.max_iterations {
        for i in 0..n {
            let mut sigma = 0.0;
            for (c, v) in a.row(i) {
                if c != i {
                    sigma += v * x[c];
                }
            }
            let gs = (b[i] - sigma) / diag[i];
            x[i] += opts.relaxation * (gs - x[i]);
        }
        // Check convergence every few sweeps to amortize the extra matvec.
        if iteration % 4 == 3 || iteration + 1 == opts.max_iterations {
            a.mul_vec_into(&x, &mut residual_buf);
            for i in 0..n {
                residual_buf[i] = b[i] - residual_buf[i];
            }
            let res = norm2(&residual_buf) / b_norm;
            if res <= opts.tolerance {
                return Ok(Solution {
                    solution: x,
                    iterations: iteration + 1,
                    residual: res,
                    converged: true,
                });
            }
        }
    }
    a.mul_vec_into(&x, &mut residual_buf);
    for i in 0..n {
        residual_buf[i] = b[i] - residual_buf[i];
    }
    let res = norm2(&residual_buf) / b_norm;
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iterations,
        residual: res,
        tolerance: opts.tolerance,
    })
}

/// Solves `A x = b` with BiCGSTAB (Jacobi-preconditioned).
///
/// Handles non-symmetric systems; provided for extensions (e.g. adding
/// convective transport terms) and as an independent cross-check.
///
/// # Errors
///
/// Same contract as [`conjugate_gradient`], plus breakdown detection
/// (`rho == 0`) which reports as [`NumericsError::BadMatrix`].
pub fn bicgstab(a: &CsrMatrix, b: &[f64], opts: &SolveOptions) -> Result<Solution, NumericsError> {
    validate_system(a, b)?;
    let n = a.rows();
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("zero or non-finite diagonal entry at row {i}"),
        });
    }
    let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(Solution {
            solution: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
            converged: true,
        });
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];

    for iteration in 0..opts.max_iterations {
        let res = norm2(&r) / b_norm;
        if res <= opts.tolerance {
            return Ok(Solution {
                solution: x,
                iterations: iteration,
                residual: res,
                converged: true,
            });
        }
        let rho_next = dot(&r_hat, &r);
        if rho_next == 0.0 {
            return Err(NumericsError::BadMatrix { reason: "BiCGSTAB breakdown (rho = 0)".into() });
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        for i in 0..n {
            y[i] = p[i] * inv_diag[i];
        }
        a.mul_vec_into(&y, &mut v);
        alpha = rho / dot(&r_hat, &v);
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        for i in 0..n {
            z[i] = s[i] * inv_diag[i];
        }
        a.mul_vec_into(&z, &mut t);
        let tt = dot(&t, &t);
        omega = if tt == 0.0 { 0.0 } else { dot(&t, &s) / tt };
        for i in 0..n {
            x[i] += alpha * y[i] + omega * z[i];
            r[i] = s[i] - omega * t[i];
        }
        if omega == 0.0 {
            break;
        }
    }

    let res = norm2(&r) / b_norm;
    if res <= opts.tolerance {
        return Ok(Solution {
            solution: x,
            iterations: opts.max_iterations,
            residual: res,
            converged: true,
        });
    }
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iterations,
        residual: res,
        tolerance: opts.tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    fn check_residual(a: &CsrMatrix, b: &[f64], x: &[f64], tol: f64) {
        let ax = a.mul_vec(x).unwrap();
        let res: f64 = ax.iter().zip(b).map(|(l, r)| (l - r) * (l - r)).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(res / bn <= tol * 10.0, "residual {res} too large vs {bn}");
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 50;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let s = conjugate_gradient(&a, &b, &SolveOptions::default()).unwrap();
        check_residual(&a, &b, &s.solution, 1e-9);
        assert!(s.iterations <= n + 1, "CG must converge in at most n iterations");
    }

    #[test]
    fn sor_matches_cg() {
        let n = 30;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 100_000, relaxation: 1.8 };
        let cg = conjugate_gradient(&a, &b, &opts).unwrap();
        let gs = sor(&a, &b, &opts).unwrap();
        for (x, y) in cg.solution.iter().zip(&gs.solution) {
            assert!((x - y).abs() < 1e-6, "solver mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // Upper-triangular-ish non-symmetric but well-conditioned system.
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 4.0);
        b.add(0, 1, 1.0);
        b.add(1, 1, 5.0);
        b.add(1, 2, 2.0);
        b.add(2, 0, 0.5);
        b.add(2, 2, 6.0);
        let a = b.build();
        let rhs = [5.0, 7.0, 6.5];
        let s = bicgstab(&a, &rhs, &SolveOptions::default()).unwrap();
        check_residual(&a, &rhs, &s.solution, 1e-9);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_1d(5);
        let s = conjugate_gradient(&a, &[0.0; 5], &SolveOptions::default()).unwrap();
        assert_eq!(s.solution, vec![0.0; 5]);
        assert_eq!(s.iterations, 0);
    }

    #[test]
    fn cg_rejects_indefinite_matrix() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 3.0);
        b.add(1, 0, 3.0);
        b.add(1, 1, 1.0); // eigenvalues 4, -2 -> indefinite
        let a = b.build();
        // [1, -1] has negative curvature for this matrix, so the first CG
        // step must detect p^T A p < 0.
        let err = conjugate_gradient(&a, &[1.0, -1.0], &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, NumericsError::BadMatrix { .. }), "got {err:?}");
    }

    #[test]
    fn cg_rejects_nonpositive_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, -1.0);
        b.add(1, 1, 1.0);
        let a = b.build();
        assert!(conjugate_gradient(&a, &[1.0, 1.0], &SolveOptions::default()).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = laplacian_1d(4);
        let err = conjugate_gradient(&a, &[1.0; 3], &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn nonfinite_rhs_rejected() {
        let a = laplacian_1d(2);
        assert!(conjugate_gradient(&a, &[f64::NAN, 0.0], &SolveOptions::default()).is_err());
    }

    #[test]
    fn no_convergence_reports_residual() {
        let a = laplacian_1d(40);
        let b = vec![1.0; 40];
        let opts = SolveOptions { tolerance: 1e-14, max_iterations: 2, ..Default::default() };
        match conjugate_gradient(&a, &b, &opts) {
            Err(NumericsError::NoConvergence { iterations, residual, .. }) => {
                assert_eq!(iterations, 2);
                assert!(residual > 0.0);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn sor_validates_relaxation() {
        let a = laplacian_1d(3);
        let opts = SolveOptions { relaxation: 2.5, ..Default::default() };
        assert!(sor(&a, &[1.0; 3], &opts).is_err());
    }

    #[test]
    fn warm_start_from_solution_converges_immediately() {
        let n = 60;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let mut m = crate::Jacobi::new(&a).unwrap();
        let mut ws = CgWorkspace::new();
        let mut x = vec![0.0; n];
        let cold = preconditioned_cg(&a, &b, &mut x, &mut m, &SolveOptions::default(), &mut ws)
            .expect("cold solve");
        assert!(cold.iterations > 0);
        let warm = preconditioned_cg(&a, &b, &mut x, &mut m, &SolveOptions::default(), &mut ws)
            .expect("warm solve");
        assert_eq!(warm.iterations, 0, "solution-as-guess must converge before iterating");
    }

    #[test]
    fn warm_start_near_solution_needs_fewer_iterations() {
        // A diagonally shifted Laplacian — the `A + C/Δt` shape backward
        // Euler produces — where CG converges by residual contraction
        // rather than by exhausting the Krylov space, so a good initial
        // guess genuinely saves iterations.
        let n = 80;
        let mut tb = TripletBuilder::with_capacity(n, n, 3 * n);
        for i in 0..n {
            tb.add(i, i, 3.0);
            if i > 0 {
                tb.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                tb.add(i, i + 1, -1.0);
            }
        }
        let a = tb.build();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut m = crate::Jacobi::new(&a).unwrap();
        let mut ws = CgWorkspace::new();
        let mut cold_x = vec![0.0; n];
        let cold =
            preconditioned_cg(&a, &b, &mut cold_x, &mut m, &SolveOptions::default(), &mut ws)
                .expect("cold");
        // Perturb the converged solution slightly: the warm solve must beat
        // the cold iteration count by a wide margin.
        let mut warm_x: Vec<f64> = cold_x.iter().map(|v| v * 1.000_001).collect();
        let warm =
            preconditioned_cg(&a, &b, &mut warm_x, &mut m, &SolveOptions::default(), &mut ws)
                .expect("warm");
        assert!(
            warm.iterations * 2 < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        check_residual(&a, &b, &warm_x, 1e-9);
    }

    #[test]
    fn ic0_cg_beats_jacobi_cg_on_anisotropic_stencil() {
        // A 2-D 5-point stencil with a 100:1 conductance anisotropy — the
        // shape high-aspect-ratio FVM cells produce. IC(0) must agree with
        // Jacobi and take at most half the iterations.
        let (nx, ny) = (24, 24);
        let n = nx * ny;
        let mut tb = TripletBuilder::with_capacity(n, n, 5 * n);
        let (gx, gy) = (100.0, 1.0);
        for j in 0..ny {
            for i in 0..nx {
                let c = j * nx + i;
                let mut diag = 1e-3;
                if i + 1 < nx {
                    tb.add(c, c + 1, -gx);
                    tb.add(c + 1, c, -gx);
                    diag += gx;
                }
                if i > 0 {
                    diag += gx;
                }
                if j + 1 < ny {
                    tb.add(c, c + nx, -gy);
                    tb.add(c + nx, c, -gy);
                    diag += gy;
                }
                if j > 0 {
                    diag += gy;
                }
                tb.add(c, c, diag);
            }
        }
        let a = tb.build();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin() + 1.5).collect();
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 100_000, relaxation: 1.6 };

        let mut jac = crate::Jacobi::new(&a).unwrap();
        let mut ic = crate::IncompleteCholesky::new(&a).unwrap();
        let mut ws = CgWorkspace::new();
        let mut xj = vec![0.0; n];
        let sj = preconditioned_cg(&a, &b, &mut xj, &mut jac, &opts, &mut ws).unwrap();
        let mut xi = vec![0.0; n];
        let si = preconditioned_cg(&a, &b, &mut xi, &mut ic, &opts, &mut ws).unwrap();

        for (p, q) in xj.iter().zip(&xi) {
            assert!((p - q).abs() < 1e-5 * p.abs().max(1.0), "{p} vs {q}");
        }
        assert!(
            2 * si.iterations <= sj.iterations,
            "IC(0) took {} iterations vs Jacobi {}",
            si.iterations,
            sj.iterations
        );
    }

    #[test]
    fn pcg_validates_guess() {
        let a = laplacian_1d(4);
        let mut m = crate::Jacobi::new(&a).unwrap();
        let mut ws = CgWorkspace::new();
        let mut short = vec![0.0; 3];
        assert!(matches!(
            preconditioned_cg(&a, &[1.0; 4], &mut short, &mut m, &Default::default(), &mut ws),
            Err(NumericsError::DimensionMismatch { .. })
        ));
        let mut bad = vec![f64::NAN; 4];
        assert!(matches!(
            preconditioned_cg(&a, &[1.0; 4], &mut bad, &mut m, &Default::default(), &mut ws),
            Err(NumericsError::BadInput { .. })
        ));
    }

    #[test]
    fn pcg_zero_rhs_zeroes_the_guess() {
        let a = laplacian_1d(4);
        let mut m = crate::Jacobi::new(&a).unwrap();
        let mut ws = CgWorkspace::new();
        let mut x = vec![7.0; 4];
        let s =
            preconditioned_cg(&a, &[0.0; 4], &mut x, &mut m, &Default::default(), &mut ws).unwrap();
        assert_eq!(x, vec![0.0; 4]);
        assert_eq!(s.iterations, 0);
    }

    #[test]
    fn ssor_cg_agrees_with_jacobi_cg() {
        let n = 50;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let opts = SolveOptions { tolerance: 1e-11, max_iterations: 10_000, relaxation: 1.6 };
        let mut jac = crate::Jacobi::new(&a).unwrap();
        let mut ss = crate::Ssor::new(&a, 1.4).unwrap();
        let mut ws = CgWorkspace::new();
        let mut xj = vec![0.0; n];
        preconditioned_cg(&a, &b, &mut xj, &mut jac, &opts, &mut ws).unwrap();
        let mut xs = vec![0.0; n];
        let stats = preconditioned_cg(&a, &b, &mut xs, &mut ss, &opts, &mut ws).unwrap();
        for (p, q) in xj.iter().zip(&xs) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
        assert!(stats.residual <= opts.tolerance);
    }
}
