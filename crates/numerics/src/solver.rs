//! Iterative solvers for the sparse SPD systems produced by FVM assembly.
//!
//! Three methods are provided, mirroring the trade-offs an IcTherm-class
//! simulator makes internally:
//!
//! * [`conjugate_gradient`] — Jacobi-preconditioned CG; the workhorse for the
//!   symmetric positive-definite conduction matrices,
//! * [`sor`] — successive over-relaxation (ω = 1 gives Gauss-Seidel); slower
//!   but simple, used as a cross-check and in ablation benchmarks,
//! * [`bicgstab`] — for mildly non-symmetric systems (e.g. upwinded
//!   convection terms if a user extends the solver).

use crate::{CsrMatrix, NumericsError};

/// Convergence controls for the iterative solvers.
///
/// # Example
///
/// ```
/// use vcsel_numerics::solver::SolveOptions;
///
/// let opts = SolveOptions { tolerance: 1e-10, max_iterations: 20_000, ..Default::default() };
/// assert!(opts.tolerance < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Relative residual tolerance ‖b − Ax‖₂ / ‖b‖₂ at which to stop.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Over-relaxation factor for [`sor`] (ignored by the Krylov methods).
    /// Must lie in `(0, 2)`.
    pub relaxation: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self { tolerance: 1e-9, max_iterations: 10_000, relaxation: 1.6 }
    }
}

/// Outcome of a successful iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The computed solution vector.
    pub solution: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual norm.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn validate_system(a: &CsrMatrix, b: &[f64]) -> Result<(), NumericsError> {
    if a.rows() != a.cols() {
        return Err(NumericsError::BadMatrix {
            reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != a.rows() {
        return Err(NumericsError::DimensionMismatch {
            what: "right-hand side",
            expected: a.rows(),
            got: b.len(),
        });
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::BadInput {
            reason: "right-hand side contains non-finite values".into(),
        });
    }
    Ok(())
}

/// Solves `A x = b` with Jacobi-preconditioned conjugate gradient.
///
/// `A` must be symmetric positive definite — which the FVM conduction matrix
/// always is (harmonic-mean conductances plus a positive Robin boundary
/// term). Convergence is declared on the *relative* residual.
///
/// # Errors
///
/// * [`NumericsError::BadMatrix`] if `A` is not square or has a
///   non-positive diagonal entry,
/// * [`NumericsError::DimensionMismatch`] if `b` has the wrong length,
/// * [`NumericsError::NoConvergence`] if the iteration cap is reached.
///
/// # Example
///
/// ```
/// use vcsel_numerics::{TripletBuilder, solver};
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 4.0); b.add(1, 1, 9.0);
/// let a = b.build();
/// let s = solver::conjugate_gradient(&a, &[8.0, 27.0], &Default::default())?;
/// assert!((s.solution[0] - 2.0).abs() < 1e-9);
/// assert!((s.solution[1] - 3.0).abs() < 1e-9);
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    opts: &SolveOptions,
) -> Result<Solution, NumericsError> {
    validate_system(a, b)?;
    let n = a.rows();

    // Jacobi preconditioner: M⁻¹ = diag(A)⁻¹.
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("non-positive or non-finite diagonal entry {} at row {i}", diag[i]),
        });
    }
    let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(Solution { solution: vec![0.0; n], iterations: 0, residual: 0.0 });
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A*0
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iteration in 0..opts.max_iterations {
        let res = norm2(&r) / b_norm;
        if res <= opts.tolerance {
            return Ok(Solution { solution: x, iterations: iteration, residual: res });
        }

        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(NumericsError::BadMatrix {
                reason: format!("matrix is not positive definite (pᵀAp = {pap:.3e})"),
            });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let res = norm2(&r) / b_norm;
    if res <= opts.tolerance {
        return Ok(Solution { solution: x, iterations: opts.max_iterations, residual: res });
    }
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iterations,
        residual: res,
        tolerance: opts.tolerance,
    })
}

/// Solves `A x = b` with successive over-relaxation.
///
/// With `opts.relaxation == 1.0` this is plain Gauss-Seidel. Used as a
/// slower cross-check of the CG solver and in the solver-ablation bench.
///
/// # Errors
///
/// Same contract as [`conjugate_gradient`]; additionally rejects a
/// relaxation factor outside `(0, 2)`.
pub fn sor(a: &CsrMatrix, b: &[f64], opts: &SolveOptions) -> Result<Solution, NumericsError> {
    validate_system(a, b)?;
    if !(opts.relaxation > 0.0 && opts.relaxation < 2.0) {
        return Err(NumericsError::BadInput {
            reason: format!("SOR relaxation factor must be in (0,2), got {}", opts.relaxation),
        });
    }
    let n = a.rows();
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("zero or non-finite diagonal entry at row {i}"),
        });
    }

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(Solution { solution: vec![0.0; n], iterations: 0, residual: 0.0 });
    }

    let mut x = vec![0.0; n];
    let mut residual_buf = vec![0.0; n];
    for iteration in 0..opts.max_iterations {
        for i in 0..n {
            let mut sigma = 0.0;
            for (c, v) in a.row(i) {
                if c != i {
                    sigma += v * x[c];
                }
            }
            let gs = (b[i] - sigma) / diag[i];
            x[i] += opts.relaxation * (gs - x[i]);
        }
        // Check convergence every few sweeps to amortize the extra matvec.
        if iteration % 4 == 3 || iteration + 1 == opts.max_iterations {
            a.mul_vec_into(&x, &mut residual_buf);
            for i in 0..n {
                residual_buf[i] = b[i] - residual_buf[i];
            }
            let res = norm2(&residual_buf) / b_norm;
            if res <= opts.tolerance {
                return Ok(Solution { solution: x, iterations: iteration + 1, residual: res });
            }
        }
    }
    a.mul_vec_into(&x, &mut residual_buf);
    for i in 0..n {
        residual_buf[i] = b[i] - residual_buf[i];
    }
    let res = norm2(&residual_buf) / b_norm;
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iterations,
        residual: res,
        tolerance: opts.tolerance,
    })
}

/// Solves `A x = b` with BiCGSTAB (Jacobi-preconditioned).
///
/// Handles non-symmetric systems; provided for extensions (e.g. adding
/// convective transport terms) and as an independent cross-check.
///
/// # Errors
///
/// Same contract as [`conjugate_gradient`], plus breakdown detection
/// (`rho == 0`) which reports as [`NumericsError::BadMatrix`].
pub fn bicgstab(a: &CsrMatrix, b: &[f64], opts: &SolveOptions) -> Result<Solution, NumericsError> {
    validate_system(a, b)?;
    let n = a.rows();
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0 || !d.is_finite()) {
        return Err(NumericsError::BadMatrix {
            reason: format!("zero or non-finite diagonal entry at row {i}"),
        });
    }
    let inv_diag: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok(Solution { solution: vec![0.0; n], iterations: 0, residual: 0.0 });
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];

    for iteration in 0..opts.max_iterations {
        let res = norm2(&r) / b_norm;
        if res <= opts.tolerance {
            return Ok(Solution { solution: x, iterations: iteration, residual: res });
        }
        let rho_next = dot(&r_hat, &r);
        if rho_next == 0.0 {
            return Err(NumericsError::BadMatrix { reason: "BiCGSTAB breakdown (rho = 0)".into() });
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        for i in 0..n {
            y[i] = p[i] * inv_diag[i];
        }
        a.mul_vec_into(&y, &mut v);
        alpha = rho / dot(&r_hat, &v);
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        for i in 0..n {
            z[i] = s[i] * inv_diag[i];
        }
        a.mul_vec_into(&z, &mut t);
        let tt = dot(&t, &t);
        omega = if tt == 0.0 { 0.0 } else { dot(&t, &s) / tt };
        for i in 0..n {
            x[i] += alpha * y[i] + omega * z[i];
            r[i] = s[i] - omega * t[i];
        }
        if omega == 0.0 {
            break;
        }
    }

    let res = norm2(&r) / b_norm;
    if res <= opts.tolerance {
        return Ok(Solution { solution: x, iterations: opts.max_iterations, residual: res });
    }
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iterations,
        residual: res,
        tolerance: opts.tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    fn check_residual(a: &CsrMatrix, b: &[f64], x: &[f64], tol: f64) {
        let ax = a.mul_vec(x).unwrap();
        let res: f64 = ax.iter().zip(b).map(|(l, r)| (l - r) * (l - r)).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(res / bn <= tol * 10.0, "residual {res} too large vs {bn}");
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 50;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let s = conjugate_gradient(&a, &b, &SolveOptions::default()).unwrap();
        check_residual(&a, &b, &s.solution, 1e-9);
        assert!(s.iterations <= n + 1, "CG must converge in at most n iterations");
    }

    #[test]
    fn sor_matches_cg() {
        let n = 30;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let opts = SolveOptions { tolerance: 1e-10, max_iterations: 100_000, relaxation: 1.8 };
        let cg = conjugate_gradient(&a, &b, &opts).unwrap();
        let gs = sor(&a, &b, &opts).unwrap();
        for (x, y) in cg.solution.iter().zip(&gs.solution) {
            assert!((x - y).abs() < 1e-6, "solver mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // Upper-triangular-ish non-symmetric but well-conditioned system.
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 4.0);
        b.add(0, 1, 1.0);
        b.add(1, 1, 5.0);
        b.add(1, 2, 2.0);
        b.add(2, 0, 0.5);
        b.add(2, 2, 6.0);
        let a = b.build();
        let rhs = [5.0, 7.0, 6.5];
        let s = bicgstab(&a, &rhs, &SolveOptions::default()).unwrap();
        check_residual(&a, &rhs, &s.solution, 1e-9);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_1d(5);
        let s = conjugate_gradient(&a, &[0.0; 5], &SolveOptions::default()).unwrap();
        assert_eq!(s.solution, vec![0.0; 5]);
        assert_eq!(s.iterations, 0);
    }

    #[test]
    fn cg_rejects_indefinite_matrix() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 3.0);
        b.add(1, 0, 3.0);
        b.add(1, 1, 1.0); // eigenvalues 4, -2 -> indefinite
        let a = b.build();
        // [1, -1] has negative curvature for this matrix, so the first CG
        // step must detect p^T A p < 0.
        let err = conjugate_gradient(&a, &[1.0, -1.0], &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, NumericsError::BadMatrix { .. }), "got {err:?}");
    }

    #[test]
    fn cg_rejects_nonpositive_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, -1.0);
        b.add(1, 1, 1.0);
        let a = b.build();
        assert!(conjugate_gradient(&a, &[1.0, 1.0], &SolveOptions::default()).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = laplacian_1d(4);
        let err = conjugate_gradient(&a, &[1.0; 3], &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn nonfinite_rhs_rejected() {
        let a = laplacian_1d(2);
        assert!(conjugate_gradient(&a, &[f64::NAN, 0.0], &SolveOptions::default()).is_err());
    }

    #[test]
    fn no_convergence_reports_residual() {
        let a = laplacian_1d(40);
        let b = vec![1.0; 40];
        let opts = SolveOptions { tolerance: 1e-14, max_iterations: 2, ..Default::default() };
        match conjugate_gradient(&a, &b, &opts) {
            Err(NumericsError::NoConvergence { iterations, residual, .. }) => {
                assert_eq!(iterations, 2);
                assert!(residual > 0.0);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn sor_validates_relaxation() {
        let a = laplacian_1d(3);
        let opts = SolveOptions { relaxation: 2.5, ..Default::default() };
        assert!(sor(&a, &[1.0; 3], &opts).is_err());
    }
}
