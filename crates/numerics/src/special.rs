//! Special functions needed by the link-quality models.
//!
//! The bit-error-rate of an on-off-keyed optical link with Gaussian noise is
//! `BER = ½·erfc(Q/√2)`, so the photonics crate needs the complementary
//! error function. `std` does not provide one; this module implements
//! `erf`/`erfc` with the rational Chebyshev approximation of W. J. Cody
//! ("Rational Chebyshev approximation for the error function", *Math. Comp.*
//! 23, 1969) — the same algorithm used by most libm implementations —
//! accurate to better than 1e-15 relative error over the whole real line,
//! plus the Gaussian tail helpers built on top of it.

// Cody's coefficients are kept exactly as published (more digits than f64
// can represent); trimming them to satisfy the lint would obscure the
// provenance of the constants.
#![allow(clippy::excessive_precision)]

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Odd, monotonically increasing, `erf(±∞) = ±1`.
///
/// # Example
///
/// ```
/// use vcsel_numerics::special::erf;
///
/// assert!(erf(0.0).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-14);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax < 0.5 {
        // erf via rational approximation on |x| < 0.5.
        erf_small(x)
    } else {
        let e = erfc_positive(ax);
        if x > 0.0 {
            1.0 - e
        } else {
            e - 1.0
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed directly (not as `1 − erf`) so that the deep Gaussian tail keeps
/// full relative precision: `erfc(10) ≈ 2.09e-45` is representable and this
/// routine returns it accurately, which matters for BER floors.
///
/// # Example
///
/// ```
/// use vcsel_numerics::special::erfc;
///
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// // Deep tail keeps relative accuracy (no catastrophic cancellation).
/// let tail = erfc(6.0);
/// assert!(tail > 2.1e-17 && tail < 2.2e-17);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        if x < 0.5 {
            1.0 - erf_small(x)
        } else {
            erfc_positive(x)
        }
    } else if x > -0.5 {
        1.0 - erf_small(x)
    } else {
        2.0 - erfc_positive(-x)
    }
}

/// The Gaussian tail probability `Q(x) = ½·erfc(x/√2)` — the probability
/// that a standard normal variable exceeds `x`.
///
/// # Example
///
/// ```
/// use vcsel_numerics::special::q_function;
///
/// assert!((q_function(0.0) - 0.5).abs() < 1e-15);
/// // The classic Q(6) ≈ 1e-9 BER threshold of optical links.
/// let q6 = q_function(6.0);
/// assert!(q6 > 0.9e-9 && q6 < 1.1e-9);
/// ```
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / core::f64::consts::SQRT_2)
}

/// Inverse of [`q_function`] on (0, 0.5]: the Q-factor needed to reach a
/// given tail probability. Bisection on the monotone `q_function`, accurate
/// to ~1e-12 in `x`.
///
/// Returns `None` when `p` is outside (0, 0.5] (a Q-factor ≤ 0 would be
/// needed, or the probability is not a probability).
///
/// # Example
///
/// ```
/// use vcsel_numerics::special::{q_function, q_inverse};
///
/// let q = q_inverse(1e-9).unwrap();
/// assert!((q - 5.9978).abs() < 1e-3); // the "Q = 6 for BER 1e-9" rule
/// assert!((q_function(q) - 1e-9).abs() < 1e-12);
/// ```
pub fn q_inverse(p: f64) -> Option<f64> {
    if !(p > 0.0) || p > 0.5 || p.is_nan() {
        return None;
    }
    // q_function is strictly decreasing; bracket [0, hi].
    let mut lo = 0.0;
    let mut hi = 1.0;
    while q_function(hi) > p {
        hi *= 2.0;
        if hi > 1e3 {
            // p is denormal-small; the Q factor is astronomically large but
            // finite — clamp the bracket (q_function(40) ~ 1e-350 underflows
            // to 0, so the loop terminates well before this).
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 * (1.0 + hi) {
            break;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Cody's rational approximation for `erf(x)` on `|x| < 0.5`.
fn erf_small(x: f64) -> f64 {
    // Coefficients from Cody (1969), region 1.
    const P: [f64; 5] = [
        3.209377589138469472562e3,
        3.774852376853020208137e2,
        1.138641541510501556495e2,
        3.161123743870565596947e0,
        1.857777061846031526730e-1,
    ];
    const Q: [f64; 5] = [
        2.844236833439170622273e3,
        1.282616526077372275645e3,
        2.440246379344441733056e2,
        2.360129095234412093499e1,
        1.0,
    ];
    let z = x * x;
    let mut num = P[4] * z;
    let mut den = Q[4] * z;
    for i in (1..4).rev() {
        num = (num + P[i]) * z;
        den = (den + Q[i]) * z;
    }
    x * (num + P[0]) / (den + Q[0])
}

/// Cody's approximation for `erfc(x)` with `x ≥ 0.5`.
fn erfc_positive(x: f64) -> f64 {
    debug_assert!(x >= 0.5);
    if x > 26.5 {
        return 0.0; // underflows f64
    }
    let z = x * x;
    let e = (-z).exp();
    if x < 4.0 {
        // Region 2 coefficients.
        const P: [f64; 9] = [
            1.23033935479799725272e3,
            2.05107837782607146532e3,
            1.71204761263407058314e3,
            8.81952221241769090411e2,
            2.98635138197400131132e2,
            6.61191906371416294775e1,
            8.88314979438837594118e0,
            5.64188496988670089180e-1,
            2.15311535474403846343e-8,
        ];
        const Q: [f64; 9] = [
            1.23033935480374942043e3,
            3.43936767414372163696e3,
            4.36261909014324715820e3,
            3.29079923573345962678e3,
            1.62138957456669018874e3,
            5.37181101862009857509e2,
            1.17693950891312499305e2,
            1.57449261107098347253e1,
            1.0,
        ];
        let mut num = P[8] * x;
        let mut den = Q[8] * x;
        for i in (1..8).rev() {
            num = (num + P[i]) * x;
            den = (den + Q[i]) * x;
        }
        e * (num + P[0]) / (den + Q[0])
    } else {
        // Region 3: asymptotic-style rational in 1/x².
        const P: [f64; 6] = [
            -6.58749161529837803157e-4,
            -1.60837851487422766278e-2,
            -1.25781726111229246204e-1,
            -3.60344899949804439429e-1,
            -3.05326634961232344035e-1,
            -1.63153871373020978498e-2,
        ];
        const Q: [f64; 6] = [
            2.33520497626869185443e-3,
            6.05183413124413191178e-2,
            5.27905102951428412248e-1,
            1.87295284992346047209e0,
            2.56852019228982242072e0,
            1.0,
        ];
        let r = 1.0 / z;
        let mut num = P[5] * r;
        let mut den = Q[5] * r;
        for i in (1..5).rev() {
            num = (num + P[i]) * r;
            den = (den + Q[i]) * r;
        }
        let poly = r * (num + P[0]) / (den + Q[0]);
        let inv_sqrt_pi = 0.5 * core::f64::consts::FRAC_2_SQRT_PI; // 1/√π
        e * (inv_sqrt_pi + poly) / x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFS: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182848922033),
        (0.25, 0.2763263901682369017001),
        (0.5, 0.5204998778130465376827),
        (1.0, 0.8427007929497148693412),
        (1.5, 0.9661051464753107270670),
        (2.0, 0.9953222650189527341621),
        (3.0, 0.9999779095030014145586),
        (4.0, 0.9999999845827420997200),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in REFS {
            let got = erf(x);
            assert!((got - want).abs() < 1e-14, "erf({x}) = {got}, want {want}");
            // Odd symmetry.
            assert!((erf(-x) + want).abs() < 1e-14);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, -0.3, 0.0, 0.3, 1.0, 2.0, 3.9, 4.1, 8.0] {
            let sum = erf(x) + erfc(x);
            assert!((sum - 1.0).abs() < 1e-14, "erf+erfc at {x}: {sum}");
        }
    }

    #[test]
    fn erfc_deep_tail_relative_accuracy() {
        // erfc(5) = 1.5374597944280348501883e-12 (mpmath).
        let got = erfc(5.0);
        let want = 1.5374597944280348501883e-12;
        assert!(((got - want) / want).abs() < 1e-12, "erfc(5) = {got:e}");
        // erfc(10) = 2.0884875837625447570007e-45.
        let got = erfc(10.0);
        let want = 2.0884875837625447570007e-45;
        assert!(((got - want) / want).abs() < 1e-10, "erfc(10) = {got:e}");
    }

    #[test]
    fn erfc_reflection() {
        for x in [0.6, 1.7, 3.3, 5.5] {
            let sum = erfc(x) + erfc(-x);
            assert!((sum - 2.0).abs() < 1e-13, "erfc reflection at {x}: {sum}");
        }
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
        assert!(q_function(f64::NAN).is_nan());
        assert!(q_inverse(f64::NAN).is_none());
    }

    #[test]
    fn infinities_saturate() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert_eq!(erfc(f64::INFINITY), 0.0);
        assert_eq!(erfc(f64::NEG_INFINITY), 2.0);
    }

    #[test]
    fn q_function_anchors() {
        // Standard normal: Q(1.96) ≈ 0.025 (the 95 % two-sided quantile).
        assert!((q_function(1.959963984540054) - 0.025).abs() < 1e-12);
        assert!((q_function(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn q_inverse_round_trips() {
        for p in [0.4, 0.1, 1e-3, 1e-6, 1e-9, 1e-12, 1e-15] {
            let q = q_inverse(p).unwrap();
            let back = q_function(q);
            assert!(((back - p) / p).abs() < 1e-6, "round trip at p={p}: q={q}, back={back:e}");
        }
        assert!(q_inverse(0.6).is_none());
        assert!(q_inverse(0.0).is_none());
        assert!(q_inverse(-1.0).is_none());
    }

    #[test]
    fn erf_is_monotone() {
        let mut prev = erf(-6.0);
        let mut x = -6.0;
        while x < 6.0 {
            x += 0.01;
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at {x}");
            prev = v;
        }
    }
}
