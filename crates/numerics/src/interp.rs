//! Piecewise-linear interpolation tables.
//!
//! The paper's methodology (Figure 3) fetches VCSEL electrical/thermal
//! characteristics from a model library; we represent such libraries as 1-D
//! and 2-D lookup tables with linear interpolation and clamped extrapolation
//! (the physically safe choice for device curves).

use crate::NumericsError;

/// A strictly-increasing 1-D piecewise-linear table `y = f(x)`.
///
/// # Example
///
/// ```
/// use vcsel_numerics::Interp1d;
///
/// let t = Interp1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 15.0])?;
/// assert_eq!(t.eval(0.5), 5.0);
/// assert_eq!(t.eval(-1.0), 0.0);  // clamped
/// assert_eq!(t.eval(9.0), 15.0);  // clamped
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interp1d {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Interp1d {
    /// Builds a table from knot coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadInput`] if fewer than two knots are given,
    /// lengths differ, any value is non-finite, or `xs` is not strictly
    /// increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        if xs.len() < 2 {
            return Err(NumericsError::BadInput {
                reason: format!("need at least 2 knots, got {}", xs.len()),
            });
        }
        if xs.len() != ys.len() {
            return Err(NumericsError::BadInput {
                reason: format!("knot count mismatch: {} xs vs {} ys", xs.len(), ys.len()),
            });
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumericsError::BadInput { reason: "non-finite knot value".into() });
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumericsError::BadInput {
                reason: "x knots must be strictly increasing".into(),
            });
        }
        Ok(Self { xs, ys })
    }

    /// The x knots.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y knots.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Evaluates the table at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // partition_point returns the first index with xs[i] > x, >= 1 here.
        let hi = self.xs.partition_point(|&k| k <= x);
        let lo = hi - 1;
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// Finds an `x` such that `f(x) = y` assuming the table is monotonic in
    /// `y`; returns `None` if `y` is outside the table's range.
    pub fn invert(&self, y: f64) -> Option<f64> {
        let increasing = self.ys.last()? >= self.ys.first()?;
        let (y_min, y_max) = if increasing {
            (self.ys[0], *self.ys.last()?)
        } else {
            (*self.ys.last()?, self.ys[0])
        };
        if y < y_min || y > y_max {
            return None;
        }
        for w in 0..self.xs.len() - 1 {
            let (y0, y1) = (self.ys[w], self.ys[w + 1]);
            let inside = if increasing { y0 <= y && y <= y1 } else { y1 <= y && y <= y0 };
            if inside {
                if (y1 - y0).abs() < f64::EPSILON {
                    return Some(self.xs[w]);
                }
                let t = (y - y0) / (y1 - y0);
                return Some(self.xs[w] + t * (self.xs[w + 1] - self.xs[w]));
            }
        }
        None
    }
}

/// A 2-D bilinear table `z = f(x, y)` on a rectilinear grid.
///
/// Used for the VCSEL efficiency surface η(I, T) (paper Figure 8-b).
///
/// # Example
///
/// ```
/// use vcsel_numerics::Interp2d;
///
/// let t = Interp2d::new(
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
///     vec![vec![0.0, 1.0], vec![2.0, 3.0]], // z[ix][iy]
/// )?;
/// assert_eq!(t.eval(0.5, 0.5), 1.5);
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interp2d {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Row-major: `zs[ix][iy]`.
    zs: Vec<Vec<f64>>,
}

impl Interp2d {
    /// Builds a bilinear table.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::BadInput`] for fewer than two knots per axis,
    /// non-increasing axes, ragged/missized `zs`, or non-finite values.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<Vec<f64>>) -> Result<Self, NumericsError> {
        if xs.len() < 2 || ys.len() < 2 {
            return Err(NumericsError::BadInput {
                reason: "need at least 2 knots per axis".into(),
            });
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) || ys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumericsError::BadInput {
                reason: "axis knots must be strictly increasing".into(),
            });
        }
        if zs.len() != xs.len() || zs.iter().any(|row| row.len() != ys.len()) {
            return Err(NumericsError::BadInput {
                reason: format!("z grid must be {}x{}, got {} rows", xs.len(), ys.len(), zs.len()),
            });
        }
        if xs.iter().chain(ys.iter()).chain(zs.iter().flatten()).any(|v| !v.is_finite()) {
            return Err(NumericsError::BadInput { reason: "non-finite table value".into() });
        }
        Ok(Self { xs, ys, zs })
    }

    fn bracket(knots: &[f64], v: f64) -> (usize, f64) {
        let n = knots.len();
        if v <= knots[0] {
            return (0, 0.0);
        }
        if v >= knots[n - 1] {
            return (n - 2, 1.0);
        }
        let hi = knots.partition_point(|&k| k <= v);
        let lo = hi - 1;
        (lo, (v - knots[lo]) / (knots[hi] - knots[lo]))
    }

    /// Evaluates the surface at `(x, y)`, clamping outside the grid.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let (ix, tx) = Self::bracket(&self.xs, x);
        let (iy, ty) = Self::bracket(&self.ys, y);
        let z00 = self.zs[ix][iy];
        let z10 = self.zs[ix + 1][iy];
        let z01 = self.zs[ix][iy + 1];
        let z11 = self.zs[ix + 1][iy + 1];
        let z0 = z00 + tx * (z10 - z00);
        let z1 = z01 + tx * (z11 - z01);
        z0 + ty * (z1 - z0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp1d_hits_knots() {
        let t = Interp1d::new(vec![0.0, 1.0, 3.0], vec![2.0, 4.0, 0.0]).unwrap();
        assert_eq!(t.eval(0.0), 2.0);
        assert_eq!(t.eval(1.0), 4.0);
        assert_eq!(t.eval(3.0), 0.0);
        assert_eq!(t.eval(2.0), 2.0);
    }

    #[test]
    fn interp1d_clamps() {
        let t = Interp1d::new(vec![0.0, 1.0], vec![5.0, 6.0]).unwrap();
        assert_eq!(t.eval(-10.0), 5.0);
        assert_eq!(t.eval(10.0), 6.0);
    }

    #[test]
    fn interp1d_validates() {
        assert!(Interp1d::new(vec![0.0], vec![1.0]).is_err());
        assert!(Interp1d::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Interp1d::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(Interp1d::new(vec![0.0, 1.0], vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn interp1d_invert_increasing_and_decreasing() {
        let inc = Interp1d::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert_eq!(inc.invert(2.0), Some(1.0));
        assert_eq!(inc.invert(5.0), None);
        let dec = Interp1d::new(vec![0.0, 2.0], vec![4.0, 0.0]).unwrap();
        assert!((dec.invert(1.0).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn interp2d_bilinear_exactness() {
        // f(x, y) = 1 + 2x + 3y + xy is reproduced exactly by bilinear
        // interpolation on any rectangle.
        let f = |x: f64, y: f64| 1.0 + 2.0 * x + 3.0 * y + x * y;
        let xs = vec![0.0, 2.0];
        let ys = vec![0.0, 4.0];
        let zs = vec![vec![f(0.0, 0.0), f(0.0, 4.0)], vec![f(2.0, 0.0), f(2.0, 4.0)]];
        let t = Interp2d::new(xs, ys, zs).unwrap();
        for &(x, y) in &[(0.5, 1.0), (1.0, 2.0), (1.7, 3.3)] {
            assert!((t.eval(x, y) - f(x, y)).abs() < 1e-12);
        }
    }

    #[test]
    fn interp2d_clamps_corners() {
        let t = Interp2d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![vec![1.0, 2.0], vec![3.0, 4.0]])
            .unwrap();
        assert_eq!(t.eval(-5.0, -5.0), 1.0);
        assert_eq!(t.eval(5.0, 5.0), 4.0);
    }

    #[test]
    fn interp2d_validates_shape() {
        assert!(Interp2d::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![vec![1.0, 2.0]]).is_err());
        assert!(Interp2d::new(vec![0.0], vec![0.0, 1.0], vec![vec![1.0, 2.0]]).is_err());
        assert!(Interp2d::new(
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        )
        .is_err());
    }
}
