//! Block (multi-right-hand-side) conjugate gradient.
//!
//! Design-space sweeps ask the same operator many questions at once: one
//! assembled FVM matrix, k power paintings. Solving the k systems one at a
//! time re-reads the ~12 bytes/nonzero operator once per column per
//! iteration; [`block_preconditioned_cg`] instead runs k *independent* CG
//! recurrences in lockstep and serves every iteration's k matvecs from
//! **one sweep** of the operator ([`CsrMatrix::multiply_block_into`]).
//!
//! "Independent" is the load-bearing word: unlike classical block-CG, the
//! columns share no Krylov space — each keeps its own direction, step and
//! residual, so a rank-deficient block (duplicate right-hand sides) cannot
//! break the iteration down, and every column reproduces its scalar
//! [`preconditioned_cg`](crate::solver::preconditioned_cg) run *bitwise*
//! (same dot products, same update order, same stall/divergence policy).
//! Columns that converge, stall or diverge are **deflated**: swapped out of
//! the packed active block so later sweeps do no work for them, with a
//! per-column [`CgSummary`] recording how each one stopped.

use crate::precond::Preconditioner;
use crate::solver::{
    dot, indefinite_matrix_error, norm2, CgStop, CgSummary, SolveOptions, DIVERGENCE_LIMIT,
    STALL_IMPROVEMENT, STALL_WINDOW,
};
use crate::{CsrMatrix, NumericsError};

/// A dense column block: k vectors of n entries in column-major storage,
/// so every column is one contiguous `&[f64]` (what the scalar
/// [`Preconditioner`] applies and the deflation swaps need).
///
/// # Example
///
/// ```
/// use vcsel_numerics::BlockVector;
///
/// let mut b = BlockVector::zeros(3, 2);
/// b.column_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
/// assert_eq!(b.column(0), &[0.0; 3]);
/// assert_eq!(b.column(1), &[1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockVector {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl BlockVector {
    /// An n×k block of zeros.
    pub fn zeros(n: usize, k: usize) -> Self {
        Self { n, k, data: vec![0.0; n * k] }
    }

    /// Builds a block from column slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if the columns do not
    /// all share the first column's length.
    pub fn from_columns(columns: &[&[f64]]) -> Result<Self, NumericsError> {
        let n = columns.first().map_or(0, |c| c.len());
        let mut data = Vec::with_capacity(n * columns.len());
        for col in columns {
            if col.len() != n {
                return Err(NumericsError::DimensionMismatch {
                    what: "block column",
                    expected: n,
                    got: col.len(),
                });
            }
            data.extend_from_slice(col);
        }
        Ok(Self { n, k: columns.len(), data })
    }

    /// Rows per column.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.k
    }

    /// Column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.columns()`.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.data[j * self.n..(j + 1) * self.n]
    }

    /// Mutable column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.columns()`.
    pub fn column_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.n..(j + 1) * self.n]
    }

    /// Sets every entry of every column.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// The raw column-major storage (used by the threaded block SpMV to
    /// hand disjoint row bands of every column to workers).
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Swaps columns `i` and `j` in place (deflation packing).
    pub(crate) fn swap_columns(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let n = self.n;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.split_at_mut(hi * n);
        head[lo * n..(lo + 1) * n].swap_with_slice(&mut tail[..n]);
    }

    /// Drops trailing columns, keeping the allocation.
    pub(crate) fn truncate_columns(&mut self, k: usize) {
        debug_assert!(k <= self.k);
        self.data.truncate(self.n * k);
        self.k = k;
    }

    /// Resizes to n×k without preserving contents.
    fn reset(&mut self, n: usize, k: usize) {
        self.data.clear();
        self.data.resize(n * k, 0.0);
        self.n = n;
        self.k = k;
    }
}

/// Caller-owned scratch for [`block_preconditioned_cg`]: the four block
/// buffers plus the per-column recurrence state, resized once per shape and
/// reused across solves so the iteration loop allocates nothing.
///
/// After a solve, the workspace's counters report how much operator work
/// the block actually did — the quantities the deflation tests pin and the
/// batch telemetry records.
#[derive(Debug, Clone, Default)]
pub struct BlockCgWorkspace {
    r: BlockVector,
    z: BlockVector,
    p: BlockVector,
    ap: BlockVector,
    /// Packed active set: slot `s` of `p`/`ap` carries column `active[s]`.
    active: Vec<usize>,
    rz: Vec<f64>,
    b_norm: Vec<f64>,
    best: Vec<f64>,
    since_best: Vec<usize>,
    operator_sweeps: u64,
    column_sweeps: u64,
    precond_applies: u64,
}

impl BlockCgWorkspace {
    /// An empty workspace; buffers are sized lazily by the solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Operator sweeps ([`CsrMatrix::multiply_block_into`] calls) the most
    /// recent solve performed. This is the number of times the operator's
    /// nonzeros were streamed from memory — the quantity one block sweep
    /// amortizes over all active columns.
    pub fn operator_sweeps(&self) -> u64 {
        self.operator_sweeps
    }

    /// Per-column matvec work of the most recent solve: the sum over
    /// operator sweeps of the active column count. A deflated column stops
    /// contributing here — the counter the deflation tests pin.
    pub fn column_sweeps(&self) -> u64 {
        self.column_sweeps
    }

    /// Scalar preconditioner applications (one per active column per
    /// iteration; the preconditioner is *not* amortized by blocking).
    pub fn preconditioner_applies(&self) -> u64 {
        self.precond_applies
    }

    fn reset(&mut self, n: usize, k: usize) {
        self.r.reset(n, k);
        self.z.reset(n, k);
        self.p.reset(n, k);
        self.ap.reset(n, k);
        self.active.clear();
        self.rz.clear();
        self.rz.resize(k, 0.0);
        self.b_norm.clear();
        self.b_norm.resize(k, 0.0);
        self.best.clear();
        self.best.resize(k, f64::INFINITY);
        self.since_best.clear();
        self.since_best.resize(k, 0);
        self.operator_sweeps = 0;
        self.column_sweeps = 0;
        self.precond_applies = 0;
    }
}

/// Deflates packed slot `s`: records the column's summary, swaps the slot
/// with the last active one and shrinks the packed block width by one.
fn deflate(
    ws: &mut BlockCgWorkspace,
    summaries: &mut [CgSummary],
    s: usize,
    iterations: usize,
    residual: f64,
    converged: bool,
    stop: CgStop,
) {
    summaries[ws.active[s]] = CgSummary { iterations, residual, converged, stop };
    let last = ws.active.len() - 1;
    ws.active.swap(s, last);
    ws.p.swap_columns(s, last);
    ws.active.pop();
    ws.p.truncate_columns(last);
    ws.ap.truncate_columns(last);
}

/// Solves `A X = B` for k right-hand-side columns with preconditioned
/// conjugate gradient, warm-starting each column from the incoming `x`.
///
/// Every column runs the exact scalar
/// [`preconditioned_cg`](crate::solver::preconditioned_cg) recurrence —
/// same operation order, same stall ([`STALL_WINDOW`]) and divergence
/// ([`DIVERGENCE_LIMIT`]) policy, so with `k = 1` the solution, iteration
/// count and residual are **bitwise identical** to the scalar solver. What
/// the block form changes is purely the memory traffic: each iteration's k
/// matvecs ride one sweep of the operator
/// ([`CsrMatrix::multiply_block_into`]), and columns that stop (converged,
/// stalled, diverged) are deflated out of the packed block so the
/// remaining sweeps shrink. Because the columns share no Krylov space,
/// duplicate (rank-deficient) right-hand sides are harmless — each copy
/// just traces the same recurrence.
///
/// Per column the outcome lands in its [`CgSummary`] slot of the returned
/// vector; non-convergence is a typed per-column outcome, not an error.
/// After a [`CgStop::Diverged`] stop that column of `x` holds a runaway
/// iterate and must not be used.
///
/// # Errors
///
/// * [`NumericsError::BadMatrix`] if `A` is not square or indefiniteness
///   is detected (`pᵀAp ≤ 0` on any column),
/// * [`NumericsError::DimensionMismatch`] if `b` or `x` have the wrong
///   shape,
/// * [`NumericsError::BadInput`] for non-finite entries in `b` or `x`.
///
/// # Example
///
/// ```
/// use vcsel_numerics::solver::SolveOptions;
/// use vcsel_numerics::{
///     block_preconditioned_cg, BlockCgWorkspace, BlockVector, Jacobi, TripletBuilder,
/// };
///
/// let mut t = TripletBuilder::new(2, 2);
/// t.add(0, 0, 4.0);
/// t.add(1, 1, 9.0);
/// let a = t.build();
/// let b = BlockVector::from_columns(&[&[8.0, 27.0], &[4.0, 0.0]])?;
/// let mut x = BlockVector::zeros(2, 2);
/// let mut m = Jacobi::new(&a)?;
/// let mut ws = BlockCgWorkspace::new();
/// let summaries =
///     block_preconditioned_cg(&a, &b, &mut x, &mut m, &SolveOptions::default(), &mut ws)?;
/// assert!(summaries.iter().all(|s| s.converged));
/// assert!((x.column(0)[0] - 2.0).abs() < 1e-9 && (x.column(0)[1] - 3.0).abs() < 1e-9);
/// assert!((x.column(1)[0] - 1.0).abs() < 1e-9 && x.column(1)[1].abs() < 1e-9);
/// # Ok::<(), vcsel_numerics::NumericsError>(())
/// ```
pub fn block_preconditioned_cg<P: Preconditioner + ?Sized>(
    a: &CsrMatrix,
    b: &BlockVector,
    x: &mut BlockVector,
    m: &mut P,
    opts: &SolveOptions,
    ws: &mut BlockCgWorkspace,
) -> Result<Vec<CgSummary>, NumericsError> {
    if a.rows() != a.cols() {
        return Err(NumericsError::BadMatrix {
            reason: format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    if b.rows() != n {
        return Err(NumericsError::DimensionMismatch {
            what: "right-hand-side block rows",
            expected: n,
            got: b.rows(),
        });
    }
    let k = b.columns();
    if x.rows() != n {
        return Err(NumericsError::DimensionMismatch {
            what: "initial guess block rows",
            expected: n,
            got: x.rows(),
        });
    }
    if x.columns() != k {
        return Err(NumericsError::DimensionMismatch {
            what: "initial guess block columns",
            expected: k,
            got: x.columns(),
        });
    }
    for j in 0..k {
        if b.column(j).iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::BadInput {
                reason: format!("right-hand-side column {j} contains non-finite values"),
            });
        }
        if x.column(j).iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::BadInput {
                reason: format!("initial guess column {j} contains non-finite values"),
            });
        }
    }

    ws.reset(n, k);
    // Placeholder summaries: every slot is overwritten before return (at
    // the zero-RHS fast path, a deflation, or the iteration-cap tail).
    let mut summaries = vec![
        CgSummary {
            iterations: 0,
            residual: f64::INFINITY,
            converged: false,
            stop: CgStop::IterationCap,
        };
        k
    ];

    // Zero right-hand sides converge to x = 0 before the iteration, the
    // scalar fast path applied per column.
    for (j, summary) in summaries.iter_mut().enumerate() {
        let bn = norm2(b.column(j));
        ws.b_norm[j] = bn;
        if bn == 0.0 {
            x.column_mut(j).fill(0.0);
            *summary = CgSummary {
                iterations: 0,
                residual: 0.0,
                converged: true,
                stop: CgStop::Converged,
            };
        } else {
            ws.active.push(j);
        }
    }
    let m0 = ws.active.len();
    ws.p.truncate_columns(m0);
    ws.ap.truncate_columns(m0);
    if m0 == 0 {
        return Ok(summaries);
    }

    // r = b − A·x, skipping the operator sweep when every guess is zero
    // (the scalar warm-start fast path). In a mixed batch the all-zero
    // columns ride the sweep: A·0 is exactly 0.0 and b − 0.0 is bitwise b,
    // so the shortcut and the sweep agree to the last bit.
    let any_warm = ws.active.iter().any(|&j| x.column(j).iter().any(|&v| v != 0.0));
    if any_warm {
        for s in 0..m0 {
            let j = ws.active[s];
            ws.p.column_mut(s).copy_from_slice(x.column(j));
        }
        a.multiply_block_into(&ws.p, &mut ws.ap);
        ws.operator_sweeps += 1;
        ws.column_sweeps += m0 as u64;
        for s in 0..m0 {
            let j = ws.active[s];
            let rj = ws.r.column_mut(j);
            for (i, ri) in rj.iter_mut().enumerate() {
                *ri = b.column(j)[i] - ws.ap.column(s)[i];
            }
        }
    } else {
        for s in 0..m0 {
            let j = ws.active[s];
            ws.r.column_mut(j).copy_from_slice(b.column(j));
        }
    }

    // z = M⁻¹ r, p = z, rz = ⟨r, z⟩ — scalar setup, column at a time.
    for s in 0..m0 {
        let j = ws.active[s];
        m.apply(ws.r.column(j), ws.z.column_mut(j));
        ws.precond_applies += 1;
        ws.p.column_mut(s).copy_from_slice(ws.z.column(j));
        ws.rz[j] = dot(ws.r.column(j), ws.z.column(j));
    }

    for iteration in 0..opts.max_iterations {
        // Residual checks in scalar order (tolerance → divergence →
        // stall), deflating finished columns out of the packed block. Not
        // advancing `s` after a deflation re-examines the swapped-in
        // column, so every active column is checked exactly once.
        let mut s = 0;
        while s < ws.active.len() {
            let j = ws.active[s];
            let res = norm2(ws.r.column(j)) / ws.b_norm[j];
            if res <= opts.tolerance {
                deflate(ws, &mut summaries, s, iteration, res, true, CgStop::Converged);
                continue;
            }
            if !res.is_finite() || res > DIVERGENCE_LIMIT {
                deflate(ws, &mut summaries, s, iteration, res, false, CgStop::Diverged);
                continue;
            }
            if res < ws.best[j] * (1.0 - STALL_IMPROVEMENT) {
                ws.best[j] = res;
                ws.since_best[j] = 0;
            } else {
                ws.since_best[j] += 1;
                if ws.since_best[j] >= STALL_WINDOW {
                    deflate(ws, &mut summaries, s, iteration, res, false, CgStop::Stalled);
                    continue;
                }
            }
            s += 1;
        }
        let width = ws.active.len();
        if width == 0 {
            return Ok(summaries);
        }

        // One operator sweep serves every still-active column's matvec.
        a.multiply_block_into(&ws.p, &mut ws.ap);
        ws.operator_sweeps += 1;
        ws.column_sweeps += width as u64;

        for s in 0..width {
            let j = ws.active[s];
            let pap = dot(ws.p.column(s), ws.ap.column(s));
            if pap <= 0.0 {
                return Err(indefinite_matrix_error(pap));
            }
            let alpha = ws.rz[j] / pap;
            {
                let xj = x.column_mut(j);
                let rj = ws.r.column_mut(j);
                let ps = ws.p.column(s);
                let aps = ws.ap.column(s);
                for (i, xi) in xj.iter_mut().enumerate() {
                    *xi += alpha * ps[i];
                    rj[i] -= alpha * aps[i];
                }
            }
            m.apply(ws.r.column(j), ws.z.column_mut(j));
            ws.precond_applies += 1;
            let rz_next = dot(ws.r.column(j), ws.z.column(j));
            let beta = rz_next / ws.rz[j];
            ws.rz[j] = rz_next;
            let ps = ws.p.column_mut(s);
            let zj = ws.z.column(j);
            for (i, pi) in ps.iter_mut().enumerate() {
                *pi = zj[i] + beta * *pi;
            }
        }
    }

    // Iteration cap: the scalar tail, per remaining column.
    for s in 0..ws.active.len() {
        let j = ws.active[s];
        let res = norm2(ws.r.column(j)) / ws.b_norm[j];
        let converged = res <= opts.tolerance;
        summaries[j] = CgSummary {
            iterations: opts.max_iterations,
            residual: res,
            converged,
            stop: if converged { CgStop::Converged } else { CgStop::IterationCap },
        };
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IncompleteCholesky, Jacobi};
    use crate::solver::{preconditioned_cg, CgWorkspace};
    use crate::TripletBuilder;

    /// 3-D 7-point SPD stencil with a small Robin-like diagonal shift.
    fn stencil_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let n = nx * ny * nz;
        let idx = |i: usize, j: usize, l: usize| (l * ny + j) * nx + i;
        let mut b = TripletBuilder::with_capacity(n, n, 7 * n);
        for l in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = idx(i, j, l);
                    let mut diag = 1e-2;
                    let mut link = |other: usize, diag: &mut f64| {
                        b.add(c, other, -1.0);
                        *diag += 1.0;
                    };
                    if i + 1 < nx {
                        link(idx(i + 1, j, l), &mut diag);
                    }
                    if i > 0 {
                        link(idx(i - 1, j, l), &mut diag);
                    }
                    if j + 1 < ny {
                        link(idx(i, j + 1, l), &mut diag);
                    }
                    if j > 0 {
                        link(idx(i, j - 1, l), &mut diag);
                    }
                    if l + 1 < nz {
                        link(idx(i, j, l + 1), &mut diag);
                    }
                    if l > 0 {
                        link(idx(i, j, l - 1), &mut diag);
                    }
                    b.add(c, c, diag);
                }
            }
        }
        b.build()
    }

    /// Deterministic pseudo-random vector (LCG), entries in (-1, 1).
    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn block_spmv_matches_scalar_per_column() {
        let a = stencil_3d(5, 4, 3);
        let n = a.rows();
        let cols: Vec<Vec<f64>> = (0..3).map(|s| pseudo_random(n, 7 + s)).collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let x = BlockVector::from_columns(&refs).unwrap();
        let mut y = BlockVector::zeros(n, 3);
        a.multiply_block_into(&x, &mut y);
        let mut y_threaded = BlockVector::zeros(n, 3);
        a.mul_block_into_threaded(&x, &mut y_threaded, 3);
        for (j, col) in cols.iter().enumerate() {
            let mut scalar = vec![0.0; n];
            a.mul_vec_into(col, &mut scalar);
            assert_eq!(bits(y.column(j)), bits(&scalar), "column {j} serial");
            assert_eq!(bits(y_threaded.column(j)), bits(&scalar), "column {j} threaded");
        }
    }

    #[test]
    fn k1_degenerates_to_scalar_cg_bitwise() {
        let a = stencil_3d(6, 5, 4);
        let n = a.rows();
        let rhs = pseudo_random(n, 42);
        let opts = SolveOptions { tolerance: 1e-11, ..Default::default() };

        for ic0 in [false, true] {
            let mut x_scalar = vec![0.0; n];
            let mut ws_scalar = CgWorkspace::new();
            let mut x_block = BlockVector::zeros(n, 1);
            let mut ws_block = BlockCgWorkspace::new();
            let (scalar, block) = if ic0 {
                let mut m = IncompleteCholesky::new(&a).unwrap();
                let s = preconditioned_cg(&a, &rhs, &mut x_scalar, &mut m, &opts, &mut ws_scalar)
                    .unwrap();
                let blk = BlockVector::from_columns(&[&rhs]).unwrap();
                let b =
                    block_preconditioned_cg(&a, &blk, &mut x_block, &mut m, &opts, &mut ws_block)
                        .unwrap();
                (s, b)
            } else {
                let mut m = Jacobi::new(&a).unwrap();
                let s = preconditioned_cg(&a, &rhs, &mut x_scalar, &mut m, &opts, &mut ws_scalar)
                    .unwrap();
                let blk = BlockVector::from_columns(&[&rhs]).unwrap();
                let b =
                    block_preconditioned_cg(&a, &blk, &mut x_block, &mut m, &opts, &mut ws_block)
                        .unwrap();
                (s, b)
            };
            assert_eq!(block.len(), 1);
            assert!(scalar.converged && block[0].converged);
            assert_eq!(scalar.iterations, block[0].iterations, "ic0={ic0}");
            assert_eq!(scalar.residual.to_bits(), block[0].residual.to_bits(), "ic0={ic0}");
            assert_eq!(bits(&x_scalar), bits(x_block.column(0)), "ic0={ic0}");
        }
    }

    #[test]
    fn k1_warm_start_also_bitwise() {
        let a = stencil_3d(5, 5, 3);
        let n = a.rows();
        let rhs = pseudo_random(n, 3);
        let guess = pseudo_random(n, 9);
        let opts = SolveOptions::default();
        let mut m = Jacobi::new(&a).unwrap();

        let mut x_scalar = guess.clone();
        let mut ws_scalar = CgWorkspace::new();
        let scalar =
            preconditioned_cg(&a, &rhs, &mut x_scalar, &mut m, &opts, &mut ws_scalar).unwrap();

        let blk = BlockVector::from_columns(&[&rhs]).unwrap();
        let mut x_block = BlockVector::from_columns(&[&guess]).unwrap();
        let mut ws_block = BlockCgWorkspace::new();
        let block =
            block_preconditioned_cg(&a, &blk, &mut x_block, &mut m, &opts, &mut ws_block).unwrap();

        assert_eq!(scalar.iterations, block[0].iterations);
        assert_eq!(bits(&x_scalar), bits(x_block.column(0)));
    }

    #[test]
    fn duplicate_rhs_columns_converge_without_breakdown() {
        let a = stencil_3d(5, 4, 4);
        let n = a.rows();
        let base = pseudo_random(n, 11);
        let scaled: Vec<f64> = base.iter().map(|v| 2.0 * v).collect();
        let other = pseudo_random(n, 12);
        // Rank-deficient block: col1 duplicates col0, col2 is a multiple.
        let blk = BlockVector::from_columns(&[&base, &base, &scaled, &other]).unwrap();
        let mut x = BlockVector::zeros(n, 4);
        let mut m = IncompleteCholesky::new(&a).unwrap();
        let mut ws = BlockCgWorkspace::new();
        let opts = SolveOptions::default();
        let summaries = block_preconditioned_cg(&a, &blk, &mut x, &mut m, &opts, &mut ws).unwrap();
        assert!(summaries.iter().all(|s| s.converged), "{summaries:?}");
        // Identical recurrences: the duplicate column's trajectory is the
        // original's, bit for bit.
        assert_eq!(bits(x.column(0)), bits(x.column(1)));
        assert_eq!(summaries[0].iterations, summaries[1].iterations);
        assert!(summaries[3].residual <= opts.tolerance);
    }

    #[test]
    fn converged_column_stops_contributing_spmv_work() {
        let a = stencil_3d(6, 4, 3);
        let n = a.rows();
        let rhs = pseudo_random(n, 21);
        let opts = SolveOptions::default();
        let mut m = Jacobi::new(&a).unwrap();

        // Column 1 warm-starts at the exact solution and deflates at the
        // iteration-0 residual check; column 0 runs cold to convergence.
        let mut solution = vec![0.0; n];
        let mut ws_scalar = CgWorkspace::new();
        let cold =
            preconditioned_cg(&a, &rhs, &mut solution, &mut m, &opts, &mut ws_scalar).unwrap();
        assert!(cold.converged && cold.iterations > 0);

        let blk = BlockVector::from_columns(&[&rhs, &rhs]).unwrap();
        let zero = vec![0.0; n];
        let mut x = BlockVector::from_columns(&[&zero, &solution]).unwrap();
        let mut ws = BlockCgWorkspace::new();
        let summaries = block_preconditioned_cg(&a, &blk, &mut x, &mut m, &opts, &mut ws).unwrap();
        assert!(summaries[0].converged && summaries[1].converged);
        assert_eq!(summaries[1].iterations, 0, "warm column deflates before any sweep");

        // Counter pin: the deflated column contributed exactly one column
        // sweep (the warm-start residual evaluation); every iteration
        // sweep ran at width 1. Without deflation the same solve would
        // cost twice the iteration work.
        let iters = summaries[0].iterations as u64;
        assert_eq!(ws.operator_sweeps(), 1 + iters);
        assert_eq!(ws.column_sweeps(), 2 + iters);
        assert!(ws.column_sweeps() < 2 * (1 + iters), "deflation must shed the warm column");
    }

    #[test]
    fn zero_rhs_column_converges_at_zero_without_work() {
        let a = stencil_3d(4, 4, 2);
        let n = a.rows();
        let rhs = pseudo_random(n, 5);
        let zeros = vec![0.0; n];
        let blk = BlockVector::from_columns(&[&zeros, &rhs]).unwrap();
        let mut x = BlockVector::zeros(n, 2);
        x.column_mut(0).fill(3.0); // garbage guess: the fast path must clear it
        let mut m = Jacobi::new(&a).unwrap();
        let mut ws = BlockCgWorkspace::new();
        let summaries =
            block_preconditioned_cg(&a, &blk, &mut x, &mut m, &SolveOptions::default(), &mut ws)
                .unwrap();
        assert!(summaries[0].converged && summaries[0].iterations == 0);
        assert!(x.column(0).iter().all(|&v| v == 0.0));
        assert!(summaries[1].converged);
    }

    #[test]
    fn shape_errors_are_typed() {
        let a = stencil_3d(3, 3, 2);
        let n = a.rows();
        let mut m = Jacobi::new(&a).unwrap();
        let mut ws = BlockCgWorkspace::new();
        let opts = SolveOptions::default();

        let short = BlockVector::zeros(n - 1, 2);
        let mut x = BlockVector::zeros(n, 2);
        assert!(matches!(
            block_preconditioned_cg(&a, &short, &mut x, &mut m, &opts, &mut ws),
            Err(NumericsError::DimensionMismatch { .. })
        ));

        let b = BlockVector::zeros(n, 2);
        let mut narrow = BlockVector::zeros(n, 1);
        assert!(matches!(
            block_preconditioned_cg(&a, &b, &mut narrow, &mut m, &opts, &mut ws),
            Err(NumericsError::DimensionMismatch { .. })
        ));

        let bad = BlockVector::from_columns(&[&vec![f64::NAN; n]]).unwrap();
        let mut x1 = BlockVector::zeros(n, 1);
        assert!(matches!(
            block_preconditioned_cg(&a, &bad, &mut x1, &mut m, &opts, &mut ws),
            Err(NumericsError::BadInput { .. })
        ));

        assert!(matches!(
            BlockVector::from_columns(&[&[1.0, 2.0][..], &[1.0][..]]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_block_returns_no_summaries() {
        let a = stencil_3d(3, 3, 2);
        let n = a.rows();
        let b = BlockVector::zeros(n, 0);
        let mut x = BlockVector::zeros(n, 0);
        let mut m = Jacobi::new(&a).unwrap();
        let mut ws = BlockCgWorkspace::new();
        let summaries =
            block_preconditioned_cg(&a, &b, &mut x, &mut m, &SolveOptions::default(), &mut ws)
                .unwrap();
        assert!(summaries.is_empty());
    }
}
