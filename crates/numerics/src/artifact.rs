//! Versioned, checksummed binary artifacts for solver-engine state.
//!
//! The engine cache (ROADMAP direction 5) needs to move a factored engine —
//! the assembled operator, its IC(0) factor, or a whole multigrid hierarchy —
//! between processes without re-paying assembly and factorization. This
//! module is the dependency-free codec behind that: little-endian sections
//! inside a fixed envelope, no external crates (the serde shims stay
//! JSON-only and are never on this path).
//!
//! # Envelope
//!
//! ```text
//! magic "VCAF" | version u32 | kind u8 | payload … | checksum u64
//! ```
//!
//! The trailing checksum (FNV-1a over everything before it) covers the
//! header too, so header corruption is caught, and the version is checked
//! *before* the checksum so a format bump reports [`ArtifactError::VersionSkew`]
//! rather than a misleading mismatch.
//!
//! # Safety contract
//!
//! Decoding untrusted bytes **never panics**: every read is bounds-checked
//! ([`ArtifactError::Truncated`]), every payload is re-validated against the
//! structural invariants the kernels assume (via the existing
//! [`CsrMatrix::validate`] / [`CsrMatrix::validate_symmetric`] checkers plus
//! codec-local factor checks), and failures come back as typed
//! [`ArtifactError`] values so callers can fall back to a fresh build.

use std::sync::Arc;

use crate::multigrid::{Multigrid, MultigridConfig, MultigridHierarchy};
use crate::precond::{IncompleteCholesky, LevelSchedule};
use crate::sparse::WavefrontFactor;
use crate::{CsrMatrix, CycleKind, NumericsError, SmootherKind};

/// Format version written into (and required from) every artifact envelope.
pub const ARTIFACT_VERSION: u32 = 1;

/// Envelope magic: "VCsel Artifact Format".
const MAGIC: [u8; 4] = *b"VCAF";

/// Envelope kind byte for a [`CsrMatrix`] artifact.
pub const KIND_CSR_MATRIX: u8 = 1;
/// Envelope kind byte for an [`IncompleteCholesky`] artifact.
pub const KIND_INCOMPLETE_CHOLESKY: u8 = 2;
/// Envelope kind byte for a [`MultigridHierarchy`] artifact.
pub const KIND_MULTIGRID_HIERARCHY: u8 = 3;
/// First kind byte available to downstream crates composing their own
/// envelopes out of [`ArtifactWriter`] / [`ArtifactReader`] (the thermal
/// engine artifact uses this range); 1–15 are reserved for this crate.
pub const KIND_DOWNSTREAM_BASE: u8 = 16;

/// Bytes before the payload: magic (4) + version (4) + kind (1).
const HEADER_LEN: usize = 9;
/// Trailing checksum length.
const CHECKSUM_LEN: usize = 8;

/// Typed decode failure — the restore paths turn each of these into a
/// fall-back-to-fresh-build, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The byte stream ended before a read completed.
    Truncated {
        /// Bytes the read needed to reach.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The trailing checksum does not match the stored bytes.
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// The envelope was written by a different format version.
    VersionSkew {
        /// Version this build understands.
        supported: u32,
        /// Version found in the envelope.
        found: u32,
    },
    /// The leading magic bytes are not an artifact envelope.
    BadMagic,
    /// The envelope holds a different artifact kind than requested.
    WrongKind {
        /// Kind byte the caller asked to decode.
        expected: u8,
        /// Kind byte found in the envelope.
        found: u8,
    },
    /// The payload decoded but violates a structural invariant.
    BadStructure {
        /// First violated invariant.
        reason: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "artifact truncated: needed {needed} bytes, have {available}")
            }
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Self::VersionSkew { supported, found } => write!(
                f,
                "artifact version skew: this build reads v{supported}, envelope is v{found}"
            ),
            Self::BadMagic => write!(f, "not an artifact envelope (bad magic)"),
            Self::WrongKind { expected, found } => {
                write!(f, "artifact kind mismatch: expected {expected}, found {found}")
            }
            Self::BadStructure { reason } => write!(f, "artifact payload invalid: {reason}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<NumericsError> for ArtifactError {
    fn from(err: NumericsError) -> Self {
        Self::BadStructure { reason: err.to_string() }
    }
}

fn bad(reason: String) -> ArtifactError {
    ArtifactError::BadStructure { reason }
}

// ---------------------------------------------------------------------------
// Checksum / content hashing.

/// FNV-1a-64 over an 8-byte-chunked stream (the envelope checksum). The
/// chunking folds whole little-endian words per multiply, so checksumming a
/// paper-scale hierarchy costs milliseconds, not a per-byte pass.
fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        h ^= w;
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Streaming FNV-1a-64 hasher for cache-key content hashes (conductivity
/// fields, boundary sets). Byte-exact: two inputs hash equal iff the pushed
/// byte streams are identical, so `f64` payloads are folded as IEEE bit
/// patterns and distinguish `0.0` from `-0.0` — exactly the bitwise
/// invalidation contract the engine cache documents.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl ContentHasher {
    /// Starts a hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Folds raw bytes into the hash.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Folds one byte.
    pub fn push_u8(&mut self, v: u8) {
        self.push_bytes(&[v]);
    }

    /// Folds a `u64` as its little-endian bytes.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` as its IEEE-754 bit pattern.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// The accumulated 64-bit hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot [`ContentHasher`] over a byte slice.
#[must_use]
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = ContentHasher::new();
    h.push_bytes(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Encode/decode inner loops (registered in lint.toml's rule-3 hot-path
// audit: they run once per stored non-zero and must not allocate).

/// Appends each `u32` as little-endian bytes.
fn extend_u32_le(buf: &mut Vec<u8>, vals: &[u32]) {
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends each `usize` as a little-endian `u64`.
fn extend_usize_le(buf: &mut Vec<u8>, vals: &[usize]) {
    for &v in vals {
        buf.extend_from_slice(&(v as u64).to_le_bytes());
    }
}

/// Appends each `f64` as its little-endian IEEE-754 bit pattern.
fn extend_f64_le(buf: &mut Vec<u8>, vals: &[f64]) {
    for &v in vals {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Fills `dst` from packed little-endian `u32`s (`src.len() == 4 * dst.len()`).
fn fill_u32_le(dst: &mut [u32], src: &[u8]) {
    for (i, d) in dst.iter_mut().enumerate() {
        let o = 4 * i;
        *d = u32::from_le_bytes([src[o], src[o + 1], src[o + 2], src[o + 3]]);
    }
}

/// Fills `dst` from packed little-endian `u64`s, returning `false` if any
/// value overflows `usize` (32-bit targets).
fn fill_usize_le(dst: &mut [usize], src: &[u8]) -> bool {
    for (i, d) in dst.iter_mut().enumerate() {
        let o = 8 * i;
        let w = u64::from_le_bytes([
            src[o],
            src[o + 1],
            src[o + 2],
            src[o + 3],
            src[o + 4],
            src[o + 5],
            src[o + 6],
            src[o + 7],
        ]);
        let Ok(v) = usize::try_from(w) else {
            return false;
        };
        *d = v;
    }
    true
}

/// Fills `dst` from packed little-endian `f64` bit patterns.
fn fill_f64_le(dst: &mut [f64], src: &[u8]) {
    for (i, d) in dst.iter_mut().enumerate() {
        let o = 8 * i;
        *d = f64::from_bits(u64::from_le_bytes([
            src[o],
            src[o + 1],
            src[o + 2],
            src[o + 3],
            src[o + 4],
            src[o + 5],
            src[o + 6],
            src[o + 7],
        ]));
    }
}

// ---------------------------------------------------------------------------
// Envelope writer / reader.

/// Builds one artifact envelope: header up front, sections appended in
/// order, checksum sealed by [`ArtifactWriter::finish`]. Downstream crates
/// (the thermal engine artifact) compose their own envelopes from the same
/// primitives using kinds at or above [`KIND_DOWNSTREAM_BASE`].
#[derive(Debug)]
pub struct ArtifactWriter {
    buf: Vec<u8>,
}

impl ArtifactWriter {
    /// Starts an envelope of the given kind at [`ARTIFACT_VERSION`].
    #[must_use]
    pub fn new(kind: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        buf.push(kind);
        Self { buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed byte blob (e.g. a nested artifact).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vals: &[u32]) {
        self.put_u64(vals.len() as u64);
        self.buf.reserve(4 * vals.len());
        extend_u32_le(&mut self.buf, vals);
    }

    /// Appends a length-prefixed `usize` slice (stored as `u64`s).
    pub fn put_usize_slice(&mut self, vals: &[usize]) {
        self.put_u64(vals.len() as u64);
        self.buf.reserve(8 * vals.len());
        extend_usize_le(&mut self.buf, vals);
    }

    /// Appends a length-prefixed `f64` slice (IEEE bit patterns).
    pub fn put_f64_slice(&mut self, vals: &[f64]) {
        self.put_u64(vals.len() as u64);
        self.buf.reserve(8 * vals.len());
        extend_f64_le(&mut self.buf, vals);
    }

    /// Seals the envelope: appends the checksum and returns the bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let c = checksum64(&self.buf);
        self.buf.extend_from_slice(&c.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked reader over a verified envelope. Obtained from
/// [`ArtifactReader::open`], which has already validated magic, version,
/// checksum and kind; every getter then fails typed instead of panicking.
#[derive(Debug)]
pub struct ArtifactReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ArtifactReader<'a> {
    /// Verifies the envelope (magic, version, trailing checksum, kind) and
    /// positions a reader at the start of the payload.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] when shorter than the fixed envelope,
    /// [`ArtifactError::BadMagic`] / [`ArtifactError::VersionSkew`] /
    /// [`ArtifactError::ChecksumMismatch`] / [`ArtifactError::WrongKind`]
    /// for the corresponding header defects. The version is checked before
    /// the checksum, so a future format reports skew, not corruption.
    pub fn open(bytes: &'a [u8], kind: u8) -> Result<Self, ArtifactError> {
        let min = HEADER_LEN + CHECKSUM_LEN;
        if bytes.len() < min {
            return Err(ArtifactError::Truncated { needed: min, available: bytes.len() });
        }
        if bytes[..4] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let found = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if found != ARTIFACT_VERSION {
            return Err(ArtifactError::VersionSkew { supported: ARTIFACT_VERSION, found });
        }
        let (body, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored = u64::from_le_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);
        let computed = checksum64(body);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }
        if body[8] != kind {
            return Err(ArtifactError::WrongKind { expected: kind, found: body[8] });
        }
        Ok(Self { buf: body, pos: HEADER_LEN })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ArtifactError::Truncated { needed: usize::MAX, available: self.buf.len() })?;
        if end > self.buf.len() {
            return Err(ArtifactError::Truncated { needed: end, available: self.buf.len() });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn slice_len(&mut self, elem_bytes: usize) -> Result<usize, ArtifactError> {
        let len = self.get_u64()?;
        let len = usize::try_from(len).map_err(|_| bad(format!("slice length {len} overflows")))?;
        len.checked_mul(elem_bytes)
            .ok_or_else(|| bad(format!("slice byte length overflows ({len} elements)")))?;
        Ok(len)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] at end of payload.
    pub fn get_u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` encoded as one byte.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] at end of payload,
    /// [`ArtifactError::BadStructure`] for a byte other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, ArtifactError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(bad(format!("bool byte must be 0 or 1, got {v}"))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] at end of payload.
    pub fn get_u32(&mut self) -> Result<u32, ArtifactError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] at end of payload.
    pub fn get_u64(&mut self) -> Result<u64, ArtifactError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads a `u64` and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] at end of payload,
    /// [`ArtifactError::BadStructure`] on overflow (32-bit targets).
    pub fn get_usize(&mut self) -> Result<usize, ArtifactError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| bad(format!("value {v} overflows usize")))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] at end of payload.
    pub fn get_f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] when the declared length outruns the
    /// payload.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], ArtifactError> {
        let len = self.slice_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] when the declared length outruns the
    /// payload, [`ArtifactError::BadStructure`] for invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, ArtifactError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| bad(format!("string is not valid UTF-8: {e}")))
    }

    /// Reads a length-prefixed `u32` slice.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] when the declared length outruns the
    /// payload.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let len = self.slice_len(4)?;
        let src = self.take(4 * len)?;
        let mut out = vec![0u32; len];
        fill_u32_le(&mut out, src);
        Ok(out)
    }

    /// Reads a length-prefixed `usize` slice (stored as `u64`s).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] when the declared length outruns the
    /// payload, [`ArtifactError::BadStructure`] on `usize` overflow.
    pub fn get_usize_slice(&mut self) -> Result<Vec<usize>, ArtifactError> {
        let len = self.slice_len(8)?;
        let src = self.take(8 * len)?;
        let mut out = vec![0usize; len];
        if !fill_usize_le(&mut out, src) {
            return Err(bad("usize slice element overflows this target".into()));
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` slice (IEEE bit patterns).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Truncated`] when the declared length outruns the
    /// payload.
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, ArtifactError> {
        let len = self.slice_len(8)?;
        let src = self.take(8 * len)?;
        let mut out = vec![0.0f64; len];
        fill_f64_le(&mut out, src);
        Ok(out)
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::BadStructure`] when trailing bytes remain — a
    /// writer/reader schema drift, not corruption (the checksum passed).
    pub fn expect_end(&self) -> Result<(), ArtifactError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing payload bytes", self.buf.len() - self.pos)))
        }
    }
}

// ---------------------------------------------------------------------------
// CsrMatrix codec.

/// Writes the CSR arrays of `a` as payload sections (no envelope).
fn write_csr_body(w: &mut ArtifactWriter, a: &CsrMatrix) {
    let (row_ptr, col_idx, values) = a.raw_parts();
    w.put_u64(a.rows() as u64);
    w.put_u64(a.cols() as u64);
    w.put_usize_slice(row_ptr);
    w.put_u32_slice(col_idx);
    w.put_f64_slice(values);
}

/// Reads CSR arrays and revalidates them through [`CsrMatrix::validate`].
fn read_csr_body(r: &mut ArtifactReader<'_>) -> Result<CsrMatrix, ArtifactError> {
    let rows = r.get_usize()?;
    let cols = r.get_usize()?;
    let row_ptr = r.get_usize_slice()?;
    let col_idx = r.get_u32_slice()?;
    let values = r.get_f64_slice()?;
    Ok(CsrMatrix::try_from_sorted_parts(rows, cols, row_ptr, col_idx, values)?)
}

/// [`read_csr_body`] plus the symmetric-operator invariants
/// ([`CsrMatrix::validate_symmetric`]) the level operators must satisfy.
fn read_sym_csr_body(r: &mut ArtifactReader<'_>) -> Result<CsrMatrix, ArtifactError> {
    let m = read_csr_body(r)?;
    m.validate_symmetric()?;
    Ok(m)
}

impl CsrMatrix {
    /// Serializes the matrix into a standalone artifact envelope.
    #[must_use]
    pub fn to_artifact(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new(KIND_CSR_MATRIX);
        write_csr_body(&mut w, self);
        w.finish()
    }

    /// Decodes a matrix from [`CsrMatrix::to_artifact`] bytes, revalidating
    /// the CSR invariants via [`CsrMatrix::validate`].
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`]: envelope defects (truncation, checksum
    /// mismatch, version skew) or structural violations in the payload.
    pub fn from_artifact(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = ArtifactReader::open(bytes, KIND_CSR_MATRIX)?;
        let m = read_csr_body(&mut r)?;
        r.expect_end()?;
        Ok(m)
    }
}

// ---------------------------------------------------------------------------
// IncompleteCholesky codec.

/// Structural invariants of an IC(0) factor: square CSR with each row
/// non-empty, columns strictly ascending, the diagonal stored last (column
/// == row) with a strictly positive value, and every value finite.
fn validate_ic0_factor(
    n: usize,
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
) -> Result<(), ArtifactError> {
    if row_ptr.len() != n + 1 {
        return Err(bad(format!("factor row_ptr has {} entries for {n} rows", row_ptr.len())));
    }
    if row_ptr[0] != 0 {
        return Err(bad(format!("factor row_ptr must start at 0, starts at {}", row_ptr[0])));
    }
    if col_idx.len() != values.len() || *row_ptr.last().unwrap_or(&0) != values.len() {
        return Err(bad(format!(
            "factor arrays disagree: row_ptr ends at {}, {} columns, {} values",
            row_ptr.last().unwrap_or(&0),
            col_idx.len(),
            values.len()
        )));
    }
    for i in 0..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        if lo >= hi {
            return Err(bad(format!("factor row {i} is empty or row_ptr decreases")));
        }
        if col_idx[hi - 1] as usize != i {
            return Err(bad(format!(
                "factor row {i} must store its diagonal last, last column is {}",
                col_idx[hi - 1]
            )));
        }
        if let Some(w) = col_idx[lo..hi].windows(2).find(|w| w[0] >= w[1]) {
            return Err(bad(format!(
                "factor row {i} columns not strictly ascending ({} then {})",
                w[0], w[1]
            )));
        }
        if !(values[hi - 1] > 0.0) || !values[hi - 1].is_finite() {
            return Err(bad(format!("factor pivot {} at row {i} is not positive", values[hi - 1])));
        }
        if let Some(k) = values[lo..hi].iter().position(|v| !v.is_finite()) {
            return Err(bad(format!("non-finite factor value at row {i}, entry {k}")));
        }
    }
    Ok(())
}

fn write_wavefront(w: &mut ArtifactWriter, level_ptr: &[usize], wf: &WavefrontFactor) {
    w.put_usize_slice(level_ptr);
    w.put_usize_slice(&wf.row_ptr);
    w.put_u32_slice(&wf.rows);
    w.put_u32_slice(&wf.col_idx);
    w.put_f64_slice(&wf.values);
}

/// Reads one wavefront (level-scheduled permuted factor) and checks every
/// index the solve kernels will touch: the level pointers partition the `n`
/// permuted rows, the rows are a permutation of `0..n`, and all stored
/// indices are in bounds with `nnz` matching the serial factor.
fn read_wavefront(
    r: &mut ArtifactReader<'_>,
    n: usize,
    nnz: usize,
    dir: &str,
) -> Result<(Vec<usize>, WavefrontFactor), ArtifactError> {
    let level_ptr = r.get_usize_slice()?;
    let row_ptr = r.get_usize_slice()?;
    let rows = r.get_u32_slice()?;
    let col_idx = r.get_u32_slice()?;
    let values = r.get_f64_slice()?;
    if level_ptr.first() != Some(&0) || level_ptr.last() != Some(&n) {
        return Err(bad(format!("{dir} schedule levels must span 0..{n}")));
    }
    if level_ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad(format!("{dir} schedule level pointers decrease")));
    }
    if rows.len() != n || row_ptr.len() != n + 1 {
        return Err(bad(format!(
            "{dir} schedule shape mismatch: {} rows, {} pointers for n = {n}",
            rows.len(),
            row_ptr.len()
        )));
    }
    if row_ptr.first() != Some(&0)
        || row_ptr.last() != Some(&nnz)
        || row_ptr.windows(2).any(|w| w[0] > w[1])
    {
        return Err(bad(format!("{dir} schedule row pointers do not cover {nnz} non-zeros")));
    }
    if col_idx.len() != nnz || values.len() != nnz {
        return Err(bad(format!(
            "{dir} schedule stores {} columns / {} values, factor has {nnz}",
            col_idx.len(),
            values.len()
        )));
    }
    let mut seen = vec![false; n];
    for &row in &rows {
        let row = row as usize;
        if row >= n || seen[row] {
            return Err(bad(format!("{dir} schedule rows are not a permutation of 0..{n}")));
        }
        seen[row] = true;
    }
    if col_idx.iter().any(|&c| c as usize >= n) {
        return Err(bad(format!("{dir} schedule column index out of bounds")));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(bad(format!("{dir} schedule holds a non-finite value")));
    }
    Ok((level_ptr, WavefrontFactor { row_ptr, rows, col_idx, values }))
}

impl IncompleteCholesky {
    /// Serializes the factor, its apply configuration, and — when built —
    /// the level schedule, so a restore skips both the factorization and
    /// the wavefront analysis.
    #[must_use]
    pub fn to_artifact(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new(KIND_INCOMPLETE_CHOLESKY);
        let (row_ptr, col_idx, values) = self.factor_parts();
        let n = row_ptr.len().saturating_sub(1);
        w.put_u64(n as u64);
        w.put_usize_slice(row_ptr);
        w.put_u32_slice(col_idx);
        w.put_f64_slice(values);
        let (parallel_apply, apply_threads) = self.apply_config();
        w.put_bool(parallel_apply);
        match apply_threads {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t as u64);
            }
            None => {
                w.put_bool(false);
                w.put_u64(0);
            }
        }
        match self.schedule_ref() {
            Some(s) => {
                w.put_bool(true);
                write_wavefront(&mut w, &s.fwd_level_ptr, &s.fwd);
                write_wavefront(&mut w, &s.bwd_level_ptr, &s.bwd);
            }
            None => w.put_bool(false),
        }
        w.finish()
    }

    /// Decodes a factor from [`IncompleteCholesky::to_artifact`] bytes with
    /// full structural revalidation; the apply counter restarts at zero.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`]: envelope defects or a factor/schedule that
    /// violates the triangular-solve invariants.
    pub fn from_artifact(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = ArtifactReader::open(bytes, KIND_INCOMPLETE_CHOLESKY)?;
        let n = r.get_usize()?;
        let row_ptr = r.get_usize_slice()?;
        let col_idx = r.get_u32_slice()?;
        let values = r.get_f64_slice()?;
        validate_ic0_factor(n, &row_ptr, &col_idx, &values)?;
        let parallel_apply = r.get_bool()?;
        let has_threads = r.get_bool()?;
        let threads = r.get_u64()?;
        let apply_threads = if has_threads {
            let t = usize::try_from(threads)
                .map_err(|_| bad(format!("apply thread count {threads} overflows")))?;
            Some(t.max(1))
        } else {
            None
        };
        let schedule = if r.get_bool()? {
            let nnz = values.len();
            let (fwd_level_ptr, fwd) = read_wavefront(&mut r, n, nnz, "forward")?;
            let (bwd_level_ptr, bwd) = read_wavefront(&mut r, n, nnz, "backward")?;
            Some(LevelSchedule { fwd_level_ptr, fwd, bwd_level_ptr, bwd })
        } else {
            None
        };
        r.expect_end()?;
        Ok(Self::from_restored_parts(
            row_ptr,
            col_idx,
            values,
            schedule,
            parallel_apply,
            apply_threads,
        ))
    }
}

// ---------------------------------------------------------------------------
// MultigridHierarchy codec.

fn write_config(w: &mut ArtifactWriter, c: &MultigridConfig) {
    w.put_f64(c.strength_threshold);
    w.put_f64(c.prolongation_damping);
    match c.smoother {
        SmootherKind::DampedJacobi { omega } => {
            w.put_u8(0);
            w.put_f64(omega);
        }
        SmootherKind::Ssor { omega } => {
            w.put_u8(1);
            w.put_f64(omega);
        }
    }
    w.put_u64(c.pre_sweeps as u64);
    w.put_u64(c.post_sweeps as u64);
    w.put_u64(c.max_levels as u64);
    w.put_u64(c.direct_cells as u64);
    w.put_u8(match c.cycle {
        CycleKind::V => 0,
        CycleKind::F => 1,
    });
    w.put_bool(c.parallel_sweeps);
}

fn read_config(r: &mut ArtifactReader<'_>) -> Result<MultigridConfig, ArtifactError> {
    let strength_threshold = r.get_f64()?;
    let prolongation_damping = r.get_f64()?;
    let smoother = match r.get_u8()? {
        0 => SmootherKind::DampedJacobi { omega: r.get_f64()? },
        1 => SmootherKind::Ssor { omega: r.get_f64()? },
        t => return Err(bad(format!("unknown smoother tag {t}"))),
    };
    let pre_sweeps = r.get_usize()?;
    let post_sweeps = r.get_usize()?;
    let max_levels = r.get_usize()?;
    let direct_cells = r.get_usize()?;
    let cycle = match r.get_u8()? {
        0 => CycleKind::V,
        1 => CycleKind::F,
        t => return Err(bad(format!("unknown cycle tag {t}"))),
    };
    let parallel_sweeps = r.get_bool()?;
    Ok(MultigridConfig {
        strength_threshold,
        prolongation_damping,
        smoother,
        pre_sweeps,
        post_sweeps,
        max_levels,
        direct_cells,
        cycle,
        parallel_sweeps,
    })
}

impl MultigridHierarchy {
    /// Serializes every level operator and prolongator, the coarsest
    /// operator, the coarsest dense Cholesky factor (when the hierarchy
    /// uses one), and the build configuration. Restrictions (`R = Pᵀ`) and
    /// smoother state are deterministic functions of the level operators
    /// and are rebuilt on restore instead of being stored twice.
    #[must_use]
    pub fn to_artifact(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new(KIND_MULTIGRID_HIERARCHY);
        write_config(&mut w, self.config());
        let pairs: Vec<_> = self.transfer_pairs().collect();
        w.put_u64(pairs.len() as u64);
        for (a, p) in pairs {
            write_csr_body(&mut w, a);
            write_csr_body(&mut w, p);
        }
        write_csr_body(&mut w, self.coarse_matrix());
        match self.coarse_dense_factor() {
            Some((n, l)) => {
                w.put_bool(true);
                w.put_u64(n as u64);
                w.put_f64_slice(l);
            }
            None => w.put_bool(false),
        }
        w.finish()
    }

    /// Decodes a hierarchy from [`MultigridHierarchy::to_artifact`] bytes:
    /// level operators are revalidated with
    /// [`CsrMatrix::validate_symmetric`], prolongators with
    /// [`CsrMatrix::validate`], the transfer-chain dimensions are checked,
    /// and smoothers plus restrictions are rebuilt from the restored
    /// operators. No coarsening, factorization or spectral estimation runs.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`]: envelope defects, operator/prolongator
    /// structural violations, a broken transfer chain, or an invalid
    /// configuration or dense coarse factor.
    pub fn from_artifact(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = ArtifactReader::open(bytes, KIND_MULTIGRID_HIERARCHY)?;
        let config = read_config(&mut r)?;
        let level_count = r.get_usize()?;
        let mut ops = Vec::with_capacity(level_count);
        let mut prolongators = Vec::with_capacity(level_count);
        for _ in 0..level_count {
            ops.push(Arc::new(read_sym_csr_body(&mut r)?));
            prolongators.push(read_csr_body(&mut r)?);
        }
        let coarse_a = read_sym_csr_body(&mut r)?;
        let coarse_dense = if r.get_bool()? {
            let n = r.get_usize()?;
            if n != coarse_a.rows() {
                return Err(bad(format!(
                    "dense coarse factor is {n}x{n} but the coarsest operator has {} rows",
                    coarse_a.rows()
                )));
            }
            Some(r.get_f64_slice()?)
        } else {
            None
        };
        r.expect_end()?;
        Ok(Self::from_restored_parts(ops, prolongators, coarse_a, coarse_dense, config)?)
    }
}

impl Multigrid {
    /// Serializes the underlying hierarchy (the cycle workspace is scratch
    /// and is re-sized on restore).
    #[must_use]
    pub fn to_artifact(&self) -> Vec<u8> {
        self.hierarchy().to_artifact()
    }

    /// Decodes a [`Multigrid`] preconditioner from
    /// [`MultigridHierarchy::to_artifact`] bytes and re-sizes its cycle
    /// workspace — the zero-factorization restore path of the engine cache.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from [`MultigridHierarchy::from_artifact`],
    /// plus [`ArtifactError::BadStructure`] when the stored sweep
    /// configuration is not a valid CG preconditioner (see
    /// [`Multigrid::from_hierarchy`]).
    pub fn from_artifact(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let h = MultigridHierarchy::from_artifact(bytes)?;
        Ok(Self::from_hierarchy(h)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletBuilder;

    fn poisson_1d(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.001);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn csr_round_trip_is_bitwise() {
        let a = poisson_1d(64);
        let bytes = a.to_artifact();
        let back = CsrMatrix::from_artifact(&bytes).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn envelope_rejects_truncation_checksum_version_and_kind() {
        let a = poisson_1d(16);
        let bytes = a.to_artifact();

        for cut in [0, 3, HEADER_LEN, bytes.len() - CHECKSUM_LEN - 1] {
            let err = CsrMatrix::from_artifact(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            CsrMatrix::from_artifact(&flipped).unwrap_err(),
            ArtifactError::ChecksumMismatch { .. }
        ));

        let mut payload_flip = bytes.clone();
        payload_flip[HEADER_LEN + 4] ^= 0x80;
        assert!(matches!(
            CsrMatrix::from_artifact(&payload_flip).unwrap_err(),
            ArtifactError::ChecksumMismatch { .. }
        ));

        let mut skew = bytes.clone();
        skew[4] = skew[4].wrapping_add(1);
        assert!(matches!(
            CsrMatrix::from_artifact(&skew).unwrap_err(),
            ArtifactError::VersionSkew { found, .. } if found == ARTIFACT_VERSION + 1
        ));

        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(matches!(CsrMatrix::from_artifact(&magic).unwrap_err(), ArtifactError::BadMagic));

        let err = IncompleteCholesky::from_artifact(&bytes).unwrap_err();
        assert!(matches!(
            err,
            ArtifactError::WrongKind { expected: KIND_INCOMPLETE_CHOLESKY, found: KIND_CSR_MATRIX }
        ));
    }

    #[test]
    fn csr_decode_revalidates_structure() {
        // A structurally broken payload behind a *valid* envelope must be
        // rejected by the revalidation pass, not trusted.
        let mut w = ArtifactWriter::new(KIND_CSR_MATRIX);
        w.put_u64(2);
        w.put_u64(2);
        w.put_usize_slice(&[0, 1, 3]); // row_ptr ends past nnz
        w.put_u32_slice(&[0, 1]);
        w.put_f64_slice(&[1.0, 2.0]);
        let err = CsrMatrix::from_artifact(&w.finish()).unwrap_err();
        assert!(matches!(err, ArtifactError::BadStructure { .. }), "{err}");
    }

    #[test]
    fn ic0_round_trip_matches_fresh_factor() {
        let a = poisson_1d(200);
        let fresh = IncompleteCholesky::new(&a).unwrap();
        let restored = IncompleteCholesky::from_artifact(&fresh.to_artifact()).unwrap();
        // PartialEq covers the factor arrays plus the apply configuration.
        assert_eq!(fresh, restored);

        use crate::precond::Preconditioner;
        let r: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut z1 = vec![0.0; 200];
        let mut z2 = vec![0.0; 200];
        let mut fresh = fresh;
        let mut restored = restored;
        fresh.apply(&r, &mut z1);
        restored.apply(&r, &mut z2);
        assert_eq!(z1, z2, "restored apply must be bitwise identical");
    }

    #[test]
    fn ic0_with_schedule_round_trips() {
        let a = poisson_1d(300);
        let mut fresh = IncompleteCholesky::new(&a).unwrap().with_apply_threads(2);
        use crate::precond::Preconditioner;
        let r: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut z1 = vec![0.0; 300];
        fresh.apply(&r, &mut z1); // forces the lazy schedule build
        let restored = IncompleteCholesky::from_artifact(&fresh.to_artifact()).unwrap();
        assert_eq!(fresh, restored);
        let mut z2 = vec![0.0; 300];
        let mut restored = restored;
        restored.apply(&r, &mut z2);
        assert_eq!(z1, z2, "schedule-carrying restore must replay bitwise");
    }

    #[test]
    fn ic0_decode_rejects_broken_factor() {
        let a = poisson_1d(32);
        let fresh = IncompleteCholesky::new(&a).unwrap();
        let (row_ptr, col_idx, values) = fresh.factor_parts();
        // Negate a pivot: structurally intact envelope, invalid factor.
        let mut w = ArtifactWriter::new(KIND_INCOMPLETE_CHOLESKY);
        w.put_u64(32);
        w.put_usize_slice(row_ptr);
        w.put_u32_slice(col_idx);
        let mut vals = values.to_vec();
        vals[row_ptr[1] - 1] = -vals[row_ptr[1] - 1];
        w.put_f64_slice(&vals);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u64(0);
        w.put_bool(false);
        let err = IncompleteCholesky::from_artifact(&w.finish()).unwrap_err();
        assert!(matches!(err, ArtifactError::BadStructure { .. }), "{err}");
    }

    #[test]
    fn hierarchy_round_trip_preserves_structure_and_cycles() {
        let a = poisson_1d(1500);
        let h = MultigridHierarchy::build(&a, &MultigridConfig::default()).unwrap();
        let restored = MultigridHierarchy::from_artifact(&h.to_artifact()).unwrap();
        assert_eq!(h.level_count(), restored.level_count());
        assert_eq!(h.level_sizes(), restored.level_sizes());
        assert_eq!(h.total_nnz(), restored.total_nnz());
        assert_eq!(h.config(), restored.config());

        // One V-cycle from zero must be bitwise identical: same operators,
        // same smoothers (rebuilt deterministically), same coarse factor.
        let b: Vec<f64> = (0..1500).map(|i| (i as f64 * 0.07).sin() + 0.2).collect();
        let mut x1 = vec![0.0; 1500];
        let mut x2 = vec![0.0; 1500];
        let mut h = h;
        let mut restored = restored;
        let mut ws1 = crate::MgWorkspace::for_hierarchy(&h);
        let mut ws2 = crate::MgWorkspace::for_hierarchy(&restored);
        h.cycle(CycleKind::V, &b, &mut x1, &mut ws1);
        restored.cycle(CycleKind::V, &b, &mut x2, &mut ws2);
        assert_eq!(x1, x2, "restored V-cycle must be bitwise identical");
    }

    #[test]
    fn hierarchy_decode_rejects_broken_transfer_chain() {
        let a = poisson_1d(1500);
        let h = MultigridHierarchy::build(&a, &MultigridConfig::default()).unwrap();
        assert!(h.level_count() >= 2, "fixture must coarsen");
        // Re-encode with a prolongator whose column count disagrees with
        // the next level: caught by the dimension-chain check.
        let mut w = ArtifactWriter::new(KIND_MULTIGRID_HIERARCHY);
        write_config(&mut w, h.config());
        let pairs: Vec<_> = h.transfer_pairs().collect();
        w.put_u64(pairs.len() as u64);
        for (a_l, _) in &pairs {
            write_csr_body(&mut w, a_l);
            write_csr_body(&mut w, &CsrMatrix::identity(a_l.rows())); // wrong P
        }
        write_csr_body(&mut w, h.coarse_matrix());
        w.put_bool(false);
        let err = MultigridHierarchy::from_artifact(&w.finish()).unwrap_err();
        assert!(matches!(err, ArtifactError::BadStructure { .. }), "{err}");
    }

    #[test]
    fn multigrid_from_artifact_is_a_working_preconditioner() {
        use crate::precond::Preconditioner;
        let a = poisson_1d(1200);
        let shared = Arc::new(a);
        let fresh =
            Multigrid::new_shared(Arc::clone(&shared), &MultigridConfig::default()).unwrap();
        let mut restored = Multigrid::from_artifact(&fresh.to_artifact()).unwrap();
        let mut fresh = fresh;
        let r: Vec<f64> = (0..1200).map(|i| (i as f64 * 0.19).cos()).collect();
        let mut z1 = vec![0.0; 1200];
        let mut z2 = vec![0.0; 1200];
        fresh.apply(&r, &mut z1);
        restored.apply(&r, &mut z2);
        assert_eq!(z1, z2);
    }

    #[test]
    fn content_hasher_is_order_and_bit_sensitive() {
        let mut a = ContentHasher::new();
        a.push_f64(1.0);
        a.push_f64(2.0);
        let mut b = ContentHasher::new();
        b.push_f64(2.0);
        b.push_f64(1.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = ContentHasher::new();
        c.push_f64(0.0);
        let mut d = ContentHasher::new();
        d.push_f64(-0.0);
        assert_ne!(c.finish(), d.finish(), "bitwise contract distinguishes signed zero");
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
    }
}
