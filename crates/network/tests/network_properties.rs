//! Property tests on the interconnect model.

use proptest::prelude::*;
use vcsel_network::baselines::{CrossbarTopology, LossCoefficients};
use vcsel_network::{assign_channels, traffic, OniId, RingTopology, SnrAnalyzer, WavelengthGrid};
use vcsel_units::{Celsius, Meters, Watts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ORNoC channel assignment never double-books a (channel, segment)
    /// pair — the core correctness property of wavelength reuse.
    #[test]
    fn assignment_has_no_conflicts(
        n in 3usize..10,
        pair_seed in proptest::collection::vec((0usize..10, 0usize..10), 1..30),
    ) {
        let topo = RingTopology::evenly_spaced(n, Meters::from_millimeters(30.0)).unwrap();
        let pairs: Vec<(OniId, OniId)> = pair_seed
            .into_iter()
            .map(|(s, d)| (OniId::new(s % n), OniId::new(d % n)))
            .filter(|(s, d)| s != d)
            .collect();
        prop_assume!(!pairs.is_empty());
        let comms = assign_channels(&topo, &pairs).unwrap();

        let mut used = std::collections::HashSet::new();
        for c in &comms {
            let hops = topo.hops(c.source(), c.destination());
            for k in 0..hops {
                let segment = (c.source().index() + k) % n;
                prop_assert!(
                    used.insert((c.channel(), segment)),
                    "channel {} segment {segment} double-booked",
                    c.channel()
                );
            }
        }
    }

    /// Neighbor traffic always fits in one channel; all-to-all needs at
    /// least ceil(total-hops / n) channels (a load lower bound).
    #[test]
    fn channel_counts_bounded(n in 3usize..10) {
        let topo = RingTopology::evenly_spaced(n, Meters::from_millimeters(30.0)).unwrap();
        let neighbor = assign_channels(&topo, &traffic::ring_neighbors(n)).unwrap();
        prop_assert!(neighbor.iter().all(|c| c.channel() == 0));

        let a2a = assign_channels(&topo, &traffic::all_to_all(n)).unwrap();
        let channels = a2a.iter().map(|c| c.channel() + 1).max().unwrap();
        // Total hop load of all-to-all on an n-ring: n * (1 + ... + n-1).
        let load = n * (n - 1) * n / 2;
        let lower = load.div_ceil(n);
        prop_assert!(channels >= lower, "{channels} < load bound {lower}");
        prop_assert!(channels <= n * (n - 1), "greedy must not exceed one channel per pair");
    }

    /// SNR analysis conserves energy and produces finite, ordered reports
    /// for arbitrary temperature fields.
    #[test]
    fn snr_report_is_sane(
        n in 3usize..8,
        temps_seed in proptest::collection::vec(40.0f64..70.0, 8),
        ring_mm in 10.0f64..60.0,
    ) {
        let topo = RingTopology::evenly_spaced(n, Meters::from_millimeters(ring_mm)).unwrap();
        let comms = assign_channels(&topo, &traffic::all_to_all(n)).unwrap();
        let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
        let temps: Vec<Celsius> =
            temps_seed.iter().take(n).map(|&t| Celsius::new(t)).collect();
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let report = analyzer.analyze(&topo, &comms, &temps, &powers).unwrap();

        let mut received = 0.0;
        for r in report.results() {
            prop_assert!(r.signal.value() >= 0.0);
            prop_assert!(r.crosstalk.value() >= 0.0);
            prop_assert!(!r.snr_db.is_nan());
            received += r.signal.value() + r.crosstalk.value();
        }
        let injected = 0.3e-3 * comms.len() as f64;
        prop_assert!(received <= injected * (1.0 + 1e-9));
        prop_assert!(report.worst_snr_db() <= report.mean_snr_db() + 1e-9);
    }

    /// Widening the temperature spread (same mean) never improves the
    /// worst-case SNR.
    #[test]
    fn spread_monotonicity(n in 4usize..8, base_spread in 0.0f64..3.0) {
        let topo = RingTopology::evenly_spaced(n, Meters::from_millimeters(40.0)).unwrap();
        let comms = assign_channels(&topo, &traffic::all_to_all(n)).unwrap();
        let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
        let powers = vec![Watts::from_milliwatts(0.3); comms.len()];
        let field = |spread: f64| -> Vec<Celsius> {
            (0..n)
                .map(|i| Celsius::new(50.0 + spread * (i as f64 - (n - 1) as f64 / 2.0)))
                .collect()
        };
        let narrow = analyzer
            .analyze(&topo, &comms, &field(base_spread), &powers)
            .unwrap();
        let wide = analyzer
            .analyze(&topo, &comms, &field(base_spread + 2.0), &powers)
            .unwrap();
        prop_assert!(
            wide.worst_snr_db() <= narrow.worst_snr_db() + 1e-6,
            "wider spread improved SNR: {} -> {}",
            narrow.worst_snr_db(),
            wide.worst_snr_db()
        );
    }

    /// Baseline loss models: ORNoC wins at every scale; all losses are
    /// positive and grow with n.
    #[test]
    fn baseline_losses_ordered(n in 2usize..100) {
        let k = LossCoefficients::standard();
        let ornoc = CrossbarTopology::Ornoc.worst_case_loss(n, &k).unwrap();
        prop_assert!(ornoc.value() > 0.0);
        for b in [CrossbarTopology::Matrix, CrossbarTopology::LambdaRouter, CrossbarTopology::Snake] {
            prop_assert!(b.worst_case_loss(n, &k).unwrap() > ornoc);
            prop_assert!(b.average_loss(n, &k).unwrap() < b.worst_case_loss(n, &k).unwrap());
        }
    }
}
