//! Wavelength grid and the ORNoC channel-assignment algorithm.
//!
//! ORNoC's key property (paper Section III-A) is wavelength *reuse*: two
//! communications may share a wavelength on the same waveguide if their
//! source→destination arcs do not overlap. Assignment is a greedy first-fit
//! over channel indices — the strategy described in the ORNoC layout paper
//! \[2\].

use serde::{Deserialize, Serialize};
use vcsel_units::{Celsius, Nanometers};

use crate::{Communication, NetworkError, OniId, RingTopology};

/// An evenly spaced wavelength comb around 1550 nm.
///
/// The channel spacing controls inter-channel crosstalk through the
/// Lorentzian tails of the rings: with the paper's 1.55 nm ring bandwidth,
/// a spacing of a few nanometers keeps adjacent-channel pickup in the
/// −20 dB…−30 dB range, which is what lets the aligned (uniform-activity)
/// case reach ~38 dB SNR.
///
/// # Example
///
/// ```
/// use vcsel_network::WavelengthGrid;
///
/// let grid = WavelengthGrid::paper_default();
/// let ch0 = grid.wavelength(0);
/// let ch1 = grid.wavelength(1);
/// assert!((ch1 - ch0).value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WavelengthGrid {
    /// Channel-0 wavelength at the grid's reference temperature, nm.
    base_nm: f64,
    /// Channel spacing, nm.
    spacing_nm: f64,
    /// Temperature at which the grid is aligned, °C.
    reference_temperature: f64,
}

impl WavelengthGrid {
    /// The default comb: channels every 12.8 nm starting at 1500 nm
    /// (C+L-band span), referenced to 45 °C — near the middle of the SCC
    /// case-study operating window, where the calibration-free design is
    /// assumed aligned. The wide spacing keeps adjacent-channel Lorentzian
    /// pickup near −24 dB per crossing with the paper's 1.55 nm rings.
    pub fn paper_default() -> Self {
        Self::new(Nanometers::new(1500.0), Nanometers::new(12.8), Celsius::new(45.0))
            .expect("defaults are valid")
    }

    /// Creates a custom grid.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadParameter`] for non-positive base or
    /// spacing.
    pub fn new(
        base: Nanometers,
        spacing: Nanometers,
        reference_temperature: Celsius,
    ) -> Result<Self, NetworkError> {
        if !(base.value() > 0.0) {
            return Err(NetworkError::BadParameter {
                reason: format!("base wavelength must be positive, got {base}"),
            });
        }
        if !(spacing.value() > 0.0) || !spacing.value().is_finite() {
            return Err(NetworkError::BadParameter {
                reason: format!("channel spacing must be positive, got {spacing}"),
            });
        }
        Ok(Self {
            base_nm: base.value(),
            spacing_nm: spacing.value(),
            reference_temperature: reference_temperature.value(),
        })
    }

    /// Wavelength of channel `c` at the reference temperature.
    pub fn wavelength(&self, channel: usize) -> Nanometers {
        Nanometers::new(self.base_nm + self.spacing_nm * channel as f64)
    }

    /// Channel spacing.
    pub fn spacing(&self) -> Nanometers {
        Nanometers::new(self.spacing_nm)
    }

    /// Temperature at which lasers and rings are aligned by design.
    pub fn reference_temperature(&self) -> Celsius {
        Celsius::new(self.reference_temperature)
    }
}

/// Assigns wavelength channels to the `(source, destination)` pairs on one
/// waveguide using ORNoC's greedy segment-reuse first-fit.
///
/// Two communications can share a channel iff their forward arcs do not
/// overlap (touching at an endpoint is allowed: a signal is dropped *at*
/// its destination, so a new signal may be injected there on the same
/// wavelength).
///
/// # Errors
///
/// Returns [`NetworkError::BadCommunication`] for invalid pairs.
///
/// # Example
///
/// ```
/// use vcsel_network::{assign_channels, RingTopology};
/// use vcsel_units::Meters;
///
/// let topo = RingTopology::evenly_spaced(4, Meters::from_millimeters(18.0))?;
/// // Neighbor traffic: all four arcs are disjoint -> one channel suffices.
/// let pairs: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
/// let pairs: Vec<_> = pairs.into_iter().map(|(s, d)| (s.into(), d.into())).collect();
/// let comms = assign_channels(&topo, &pairs)?;
/// assert!(comms.iter().all(|c| c.channel() == 0));
/// # Ok::<(), vcsel_network::NetworkError>(())
/// ```
pub fn assign_channels(
    topology: &RingTopology,
    pairs: &[(OniId, OniId)],
) -> Result<Vec<Communication>, NetworkError> {
    let n = topology.oni_count();
    // Occupied hop-intervals per channel. A communication s->d occupies the
    // hop indices {s, s+1, ..., d-1} (mod n), i.e. the segments it crosses.
    let mut channels: Vec<Vec<bool>> = Vec::new();
    let mut result = Vec::with_capacity(pairs.len());

    for &(s, d) in pairs {
        // Validate through the Communication constructor (channel fixed later).
        Communication::new(topology, s, d, 0)?;
        let hops = topology.hops(s, d);
        let segments: Vec<usize> = (0..hops).map(|k| (s.index() + k) % n).collect();

        let mut assigned = None;
        for (c, used) in channels.iter_mut().enumerate() {
            if segments.iter().all(|&seg| !used[seg]) {
                for &seg in &segments {
                    used[seg] = true;
                }
                assigned = Some(c);
                break;
            }
        }
        let channel = match assigned {
            Some(c) => c,
            None => {
                let mut used = vec![false; n];
                for &seg in &segments {
                    used[seg] = true;
                }
                channels.push(used);
                channels.len() - 1
            }
        };
        result.push(Communication::new(topology, s, d, channel)?);
    }
    Ok(result)
}

/// Number of distinct channels a pair set needs under
/// [`assign_channels`]'s greedy reuse.
///
/// # Errors
///
/// Same contract as [`assign_channels`].
pub fn channels_needed(
    topology: &RingTopology,
    pairs: &[(OniId, OniId)],
) -> Result<usize, NetworkError> {
    let comms = assign_channels(topology, pairs)?;
    Ok(comms.iter().map(|c| c.channel() + 1).max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_units::Meters;

    fn topo(n: usize) -> RingTopology {
        RingTopology::evenly_spaced(n, Meters::from_millimeters(18.0)).unwrap()
    }

    fn pairs(raw: &[(usize, usize)]) -> Vec<(OniId, OniId)> {
        raw.iter().map(|&(s, d)| (s.into(), d.into())).collect()
    }

    #[test]
    fn disjoint_arcs_share_channel() {
        let t = topo(6);
        let comms = assign_channels(&t, &pairs(&[(0, 2), (2, 4), (4, 0)])).unwrap();
        assert!(comms.iter().all(|c| c.channel() == 0));
    }

    #[test]
    fn overlapping_arcs_get_distinct_channels() {
        let t = topo(6);
        let comms = assign_channels(&t, &pairs(&[(0, 3), (1, 4)])).unwrap();
        assert_ne!(comms[0].channel(), comms[1].channel());
    }

    #[test]
    fn wraparound_overlap_detected() {
        let t = topo(4);
        // 3 -> 1 wraps through segment 3 and 0; 0 -> 2 uses segments 0, 1.
        let comms = assign_channels(&t, &pairs(&[(3, 1), (0, 2)])).unwrap();
        assert_ne!(comms[0].channel(), comms[1].channel());
    }

    #[test]
    fn all_to_all_channel_count_is_reasonable() {
        let t = topo(4);
        let mut p = Vec::new();
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    p.push((OniId::new(s), OniId::new(d)));
                }
            }
        }
        let n_ch = channels_needed(&t, &p).unwrap();
        // 12 communications, 4 segments: at least ceil(total hop-load / 4).
        // Total hops for all-to-all on a 4-ring = 4*(1+2+3) = 24 -> >= 6.
        assert!(n_ch >= 6, "got {n_ch}");
        assert!(n_ch <= 12, "greedy should do no worse than no reuse, got {n_ch}");
    }

    #[test]
    fn grid_wavelengths_are_evenly_spaced() {
        let g = WavelengthGrid::paper_default();
        let d01 = g.wavelength(1) - g.wavelength(0);
        let d12 = g.wavelength(2) - g.wavelength(1);
        assert!((d01.value() - d12.value()).abs() < 1e-12);
        assert!((d01.value() - g.spacing().value()).abs() < 1e-12);
    }

    #[test]
    fn grid_validation() {
        assert!(WavelengthGrid::new(Nanometers::ZERO, Nanometers::new(1.0), Celsius::new(45.0))
            .is_err());
        assert!(WavelengthGrid::new(Nanometers::new(1530.0), Nanometers::ZERO, Celsius::new(45.0))
            .is_err());
    }

    #[test]
    fn invalid_pairs_propagate() {
        let t = topo(4);
        assert!(assign_channels(&t, &pairs(&[(0, 0)])).is_err());
        assert!(assign_channels(&t, &pairs(&[(0, 7)])).is_err());
    }
}
