//! Error type for the interconnect model.

use core::fmt;

/// Errors produced while building or analyzing an optical network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetworkError {
    /// A topology parameter is invalid (zero ONIs, non-increasing
    /// positions, …).
    BadTopology {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// A communication references a nonexistent ONI or is a self-loop.
    BadCommunication {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// Input arrays (temperatures, powers) do not match the topology or
    /// communication set.
    DimensionMismatch {
        /// Which input has the wrong size.
        what: &'static str,
        /// Size required.
        expected: usize,
        /// Size supplied.
        got: usize,
    },
    /// A device/model parameter is invalid.
    BadParameter {
        /// Explanation of what is wrong.
        reason: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadTopology { reason } => write!(f, "bad topology: {reason}"),
            Self::BadCommunication { reason } => write!(f, "bad communication: {reason}"),
            Self::DimensionMismatch { what, expected, got } => {
                write!(f, "dimension mismatch for {what}: expected {expected}, got {got}")
            }
            Self::BadParameter { reason } => write!(f, "bad parameter: {reason}"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = NetworkError::DimensionMismatch { what: "temperatures", expected: 8, got: 4 };
        assert!(e.to_string().contains("temperatures"));
        assert!(e.to_string().contains("8"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<NetworkError>();
    }
}
