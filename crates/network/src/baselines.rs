//! Baseline optical-crossbar insertion-loss models.
//!
//! Paper Section III-A motivates ORNoC by the loss comparison of \[20\]:
//! "ORNoC demonstrates reduced worst-case and average insertion losses
//! compared with related optical crossbars including Matrix \[18\], λ-router
//! \[1\] and Snake \[4\] (e.g., on average, 42.5 % reduction for worst-case and
//! 38 % for average in 4×4 scale)".
//!
//! We reproduce that comparison with structural loss models: each topology
//! is characterized by how many waveguide crossings, ring *through*
//! traversals and ring *drop* operations the worst/average path incurs, and
//! by its worst-case on-chip path length. The per-element coefficients
//! ([`LossCoefficients`]) are the usual physical-layer analysis values used
//! in the wavelength-routed-ONoC literature \[4\]\[20\].

use serde::{Deserialize, Serialize};
use vcsel_units::{Decibels, Meters};

use crate::NetworkError;

/// Per-element optical losses used by the structural models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossCoefficients {
    /// Loss per waveguide crossing, dB.
    pub crossing_db: f64,
    /// Loss per ring passed in its through (off-resonance) state, dB.
    pub ring_through_db: f64,
    /// Loss of the final drop into the receiver, dB.
    pub ring_drop_db: f64,
    /// Distributed propagation loss, dB/cm.
    pub propagation_db_per_cm: f64,
    /// Characteristic inter-node pitch on chip (sets path lengths).
    pub node_pitch: Meters,
}

impl LossCoefficients {
    /// Standard physical-layer analysis values: 0.15 dB per crossing,
    /// 0.02 dB per through ring, 0.5 dB per drop, 0.5 dB/cm propagation,
    /// 3 mm tile pitch.
    pub fn standard() -> Self {
        Self {
            crossing_db: 0.15,
            ring_through_db: 0.02,
            ring_drop_db: 0.5,
            propagation_db_per_cm: 0.5,
            node_pitch: Meters::from_millimeters(3.0),
        }
    }
}

impl Default for LossCoefficients {
    fn default() -> Self {
        Self::standard()
    }
}

/// The crossbar topologies compared in \[20\] / paper Section III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossbarTopology {
    /// ORNoC: serpentine ring, no waveguide crossings, passive rings \[2\].
    Ornoc,
    /// Matrix crossbar: N×N ring matrix with a crossing-rich layout \[18\].
    Matrix,
    /// λ-router: log-structured multistage interconnect \[1\].
    LambdaRouter,
    /// Snake: serpentine crossbar with per-hop ring traversals \[4\].
    Snake,
}

impl CrossbarTopology {
    /// All four compared topologies.
    pub fn all() -> [CrossbarTopology; 4] {
        [Self::Ornoc, Self::Matrix, Self::LambdaRouter, Self::Snake]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Ornoc => "ORNoC",
            Self::Matrix => "Matrix",
            Self::LambdaRouter => "lambda-router",
            Self::Snake => "Snake",
        }
    }

    /// Structural element counts of the **worst-case** path for an `n`-node
    /// crossbar: `(crossings, through rings, path length in node pitches)`.
    ///
    /// Counts follow the physical-layer analyses of \[4\][18]\[20\]:
    ///
    /// * *ORNoC* — the worst path traverses the whole serpentine ring
    ///   (`n` pitches) and passes the receive rings of every intermediate
    ///   interface (`n − 1` interfaces × 1 ring on its wavelength), with no
    ///   crossings.
    /// * *Matrix* — the worst path crosses the waveguide grid twice per
    ///   dimension: ~`2(n − 1)` crossings, one through ring per row/column
    ///   head, `2n` pitches of length.
    /// * *λ-router* — `n` stages of add-drop filters: no layout crossings in
    ///   the folded form but `2 log2(n)+…` ≈ `n` through rings and `n + 2`
    ///   pitches; its dominant term is ring traversal.
    /// * *Snake* — serpentine with per-hop ring pass-through and occasional
    ///   crossings: `n/2` crossings, `2n` through rings, `1.5 n` pitches.
    fn worst_counts(&self, n: usize) -> (f64, f64, f64) {
        let nf = n as f64;
        match self {
            // The serpentine ring weaves through the tile grid, so its
            // physical circumference is ~1.3x the Manhattan tile count.
            Self::Ornoc => (0.0, nf - 1.0, 1.3 * nf),
            Self::Matrix => (2.0 * (nf - 1.0), nf, 2.0 * nf),
            Self::LambdaRouter => (nf / 2.0, 2.0 * nf, nf + 2.0),
            Self::Snake => (nf / 2.0, 2.0 * nf, 1.5 * nf),
        }
    }

    /// Structural element counts of the **average** path (uniform traffic);
    /// roughly half the worst-case structural elements for these regular
    /// layouts.
    fn average_counts(&self, n: usize) -> (f64, f64, f64) {
        let (c, t, l) = self.worst_counts(n);
        match self {
            // The ring's average hop distance is n/2; the serpentine detour
            // overhead does not halve, hence the 0.6 length factor.
            Self::Ornoc => (0.0, t / 2.0, l * 0.6),
            Self::Matrix => (c / 2.0, t * 0.75, l * 0.6),
            Self::LambdaRouter => (c / 2.0, t * 0.6, l * 0.7),
            Self::Snake => (c / 2.0, t * 0.6, l * 0.6),
        }
    }

    fn loss_from_counts(counts: (f64, f64, f64), k: &LossCoefficients) -> Decibels {
        let (crossings, throughs, pitches) = counts;
        let length_cm = pitches * k.node_pitch.as_centimeters();
        Decibels::new(
            crossings * k.crossing_db
                + throughs * k.ring_through_db
                + k.ring_drop_db
                + length_cm * k.propagation_db_per_cm,
        )
    }

    /// Worst-case insertion loss for an `n`-node crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadTopology`] for `n < 2`.
    pub fn worst_case_loss(
        &self,
        n: usize,
        k: &LossCoefficients,
    ) -> Result<Decibels, NetworkError> {
        if n < 2 {
            return Err(NetworkError::BadTopology {
                reason: format!("crossbar needs at least 2 nodes, got {n}"),
            });
        }
        Ok(Self::loss_from_counts(self.worst_counts(n), k))
    }

    /// Average insertion loss under uniform traffic.
    ///
    /// # Errors
    ///
    /// Same contract as [`CrossbarTopology::worst_case_loss`].
    pub fn average_loss(&self, n: usize, k: &LossCoefficients) -> Result<Decibels, NetworkError> {
        if n < 2 {
            return Err(NetworkError::BadTopology {
                reason: format!("crossbar needs at least 2 nodes, got {n}"),
            });
        }
        Ok(Self::loss_from_counts(self.average_counts(n), k))
    }
}

/// The paper's §III-A comparison: ORNoC's worst-case / average loss
/// reduction relative to the mean of the three baseline crossbars, at scale
/// `n` ("4×4 scale" = 16 nodes).
///
/// Returns `(worst_case_reduction, average_reduction)` as fractions
/// (0.425 means 42.5 %).
///
/// # Errors
///
/// Returns [`NetworkError::BadTopology`] for `n < 2`.
///
/// # Example
///
/// ```
/// use vcsel_network::baselines::{ornoc_loss_reduction, LossCoefficients};
///
/// let (worst, avg) = ornoc_loss_reduction(16, &LossCoefficients::standard())?;
/// // Paper quotes 42.5 % and 38 % for the 4x4 scale.
/// assert!((worst - 0.425).abs() < 0.08, "worst-case reduction {worst}");
/// assert!((avg - 0.38).abs() < 0.08, "average reduction {avg}");
/// # Ok::<(), vcsel_network::NetworkError>(())
/// ```
pub fn ornoc_loss_reduction(n: usize, k: &LossCoefficients) -> Result<(f64, f64), NetworkError> {
    let baselines =
        [CrossbarTopology::Matrix, CrossbarTopology::LambdaRouter, CrossbarTopology::Snake];
    let mean = |f: &dyn Fn(&CrossbarTopology) -> Result<Decibels, NetworkError>| {
        let mut sum = 0.0;
        for b in &baselines {
            sum += f(b)?.value();
        }
        Ok::<f64, NetworkError>(sum / baselines.len() as f64)
    };
    let worst_base = mean(&|b| b.worst_case_loss(n, k))?;
    let avg_base = mean(&|b| b.average_loss(n, k))?;
    let ornoc_worst = CrossbarTopology::Ornoc.worst_case_loss(n, k)?.value();
    let ornoc_avg = CrossbarTopology::Ornoc.average_loss(n, k)?.value();
    Ok((1.0 - ornoc_worst / worst_base, 1.0 - ornoc_avg / avg_base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ornoc_beats_all_baselines_at_4x4() {
        let k = LossCoefficients::standard();
        let ornoc = CrossbarTopology::Ornoc.worst_case_loss(16, &k).unwrap();
        for b in [CrossbarTopology::Matrix, CrossbarTopology::LambdaRouter, CrossbarTopology::Snake]
        {
            let loss = b.worst_case_loss(16, &k).unwrap();
            assert!(ornoc < loss, "ORNoC {ornoc} should beat {} {loss}", b.name());
        }
    }

    #[test]
    fn paper_reduction_figures() {
        let (worst, avg) = ornoc_loss_reduction(16, &LossCoefficients::standard()).unwrap();
        assert!((worst - 0.425).abs() < 0.08, "worst-case reduction {worst} vs paper 0.425");
        assert!((avg - 0.38).abs() < 0.08, "average reduction {avg} vs paper 0.38");
    }

    #[test]
    fn average_below_worst_case() {
        let k = LossCoefficients::standard();
        for b in CrossbarTopology::all() {
            for n in [4, 8, 16, 64] {
                let avg = b.average_loss(n, &k).unwrap();
                let worst = b.worst_case_loss(n, &k).unwrap();
                assert!(avg < worst, "{} at {n}: avg {avg} >= worst {worst}", b.name());
            }
        }
    }

    #[test]
    fn losses_grow_with_scale() {
        let k = LossCoefficients::standard();
        for b in CrossbarTopology::all() {
            let small = b.worst_case_loss(4, &k).unwrap();
            let large = b.worst_case_loss(64, &k).unwrap();
            assert!(large > small, "{} must lose more at larger scale", b.name());
        }
    }

    #[test]
    fn tiny_crossbars_rejected() {
        let k = LossCoefficients::standard();
        assert!(CrossbarTopology::Ornoc.worst_case_loss(1, &k).is_err());
        assert!(CrossbarTopology::Matrix.average_loss(0, &k).is_err());
        assert!(ornoc_loss_reduction(1, &k).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(CrossbarTopology::Ornoc.name(), "ORNoC");
        assert_eq!(CrossbarTopology::all().len(), 4);
    }
}
