//! Worst-case SNR analysis (paper Section IV-C).
//!
//! For a communication `C_sd` the received signal is the power `OP_net`
//! injected by the VCSEL, attenuated by waveguide propagation and by every
//! receiver microring it crosses, and finally dropped by its own receiver
//! ring `R_sd`:
//!
//! ```text
//! OP_sd[sd]  = OP_net · Π_k through_k · 10^(−L_prop·l/10) · drop_own
//! X_ij[sd]   = OP_in,ij[sd] · Δλ_ij[sd]          (power mis-dropped at R_ij)
//! SNR_sd     = 10·log10( OP_sd[sd] / Σ_ij X_sd[ij] )
//! ```
//!
//! Temperature enters twice: the signal wavelength follows the *source*
//! ONI's temperature and each ring resonance follows its *host* ONI's
//! temperature (both at 0.1 nm/°C), so a temperature **difference** between
//! ONIs misaligns the network — exactly the mechanism the paper's Figure 6
//! illustrates. The model walks each signal one full loop around the ring
//! (passive rings never absorb it completely), accumulating the mis-dropped
//! power at every receiver it passes; what arrives back at the source is
//! absorbed by the injection structure.

use serde::{Deserialize, Serialize};
use vcsel_photonics::{MicroringResonator, Photodetector, TechnologyParams, Waveguide};
use vcsel_units::{Celsius, Nanometers, Watts};

use crate::{Communication, NetworkError, RingTopology, WavelengthGrid};

/// Per-communication outcome of an SNR analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommResult {
    /// The analyzed communication.
    pub communication: Communication,
    /// Signal power arriving on the destination photodetector.
    pub signal: Watts,
    /// Total crosstalk power arriving on the same photodetector.
    pub crosstalk: Watts,
    /// Signal-to-noise ratio in dB (`f64::INFINITY` when no crosstalk
    /// reaches the receiver).
    pub snr_db: f64,
    /// Whether the signal power meets the photodetector sensitivity.
    pub detected: bool,
}

/// Result of analyzing one waveguide's communication set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnrReport {
    results: Vec<CommResult>,
}

impl SnrReport {
    /// Per-communication results, in input order.
    pub fn results(&self) -> &[CommResult] {
        &self.results
    }

    /// The worst (smallest) SNR over all communications — the paper's
    /// headline metric.
    ///
    /// # Panics
    ///
    /// Never panics; an empty report returns `f64::INFINITY`.
    pub fn worst_snr_db(&self) -> f64 {
        self.results.iter().map(|r| r.snr_db).fold(f64::INFINITY, f64::min)
    }

    /// The communication achieving the worst SNR.
    pub fn worst(&self) -> Option<&CommResult> {
        self.results
            .iter()
            .min_by(|a, b| a.snr_db.partial_cmp(&b.snr_db).expect("SNR is never NaN"))
    }

    /// Whether every communication meets the receiver sensitivity.
    pub fn all_detected(&self) -> bool {
        self.results.iter().all(|r| r.detected)
    }

    /// Mean SNR in dB over all communications (ignoring infinite entries).
    pub fn mean_snr_db(&self) -> f64 {
        let finite: Vec<f64> =
            self.results.iter().map(|r| r.snr_db).filter(|s| s.is_finite()).collect();
        if finite.is_empty() {
            return f64::INFINITY;
        }
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// The Section IV-C analytical model, configured with device prototypes.
///
/// One analyzer handles one waveguide; multi-waveguide interfaces run it
/// once per waveguide (crosstalk does not couple between waveguides).
#[derive(Debug, Clone, PartialEq)]
pub struct SnrAnalyzer {
    grid: WavelengthGrid,
    waveguide: Waveguide,
    photodetector: Photodetector,
    /// Ring prototype; per-receiver rings are derived by re-centering it on
    /// the receiver's channel.
    ring_bandwidth: Nanometers,
    drift_nm_per_c: f64,
}

impl SnrAnalyzer {
    /// Analyzer with the paper's Table 1 technology parameters.
    pub fn paper_default(grid: WavelengthGrid) -> Self {
        let t = TechnologyParams::paper();
        Self {
            grid,
            waveguide: Waveguide::paper_default(),
            photodetector: Photodetector::paper_default(),
            ring_bandwidth: t.mr_bandwidth_3db,
            drift_nm_per_c: t.thermal_sensitivity_nm_per_c,
        }
    }

    /// Fully custom analyzer.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadParameter`] for a non-positive ring
    /// bandwidth or non-finite drift.
    pub fn new(
        grid: WavelengthGrid,
        waveguide: Waveguide,
        photodetector: Photodetector,
        ring_bandwidth: Nanometers,
        drift_nm_per_c: f64,
    ) -> Result<Self, NetworkError> {
        if !(ring_bandwidth.value() > 0.0) {
            return Err(NetworkError::BadParameter {
                reason: format!("ring bandwidth must be positive, got {ring_bandwidth}"),
            });
        }
        if !drift_nm_per_c.is_finite() {
            return Err(NetworkError::BadParameter {
                reason: format!("drift must be finite, got {drift_nm_per_c}"),
            });
        }
        Ok(Self { grid, waveguide, photodetector, ring_bandwidth, drift_nm_per_c })
    }

    /// The wavelength grid in use.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    fn ring_for(&self, channel: usize) -> MicroringResonator {
        MicroringResonator::new(
            self.grid.wavelength(channel),
            self.grid.reference_temperature(),
            self.ring_bandwidth,
            self.drift_nm_per_c,
            vcsel_units::Decibels::ZERO,
        )
        .expect("validated at analyzer construction")
    }

    /// Signal wavelength of a communication: the channel wavelength shifted
    /// by the *source* ONI temperature.
    fn signal_wavelength(&self, comm: &Communication, temps: &[Celsius]) -> Nanometers {
        let t_src = temps[comm.source().index()];
        Nanometers::new(
            self.grid.wavelength(comm.channel()).value()
                + self.drift_nm_per_c * (t_src.value() - self.grid.reference_temperature().value()),
        )
    }

    /// Runs the full analysis.
    ///
    /// `oni_temperatures[i]` is the (average) temperature of ONI `i`;
    /// `injected_power[c]` is `OP_net` for communication `c` (VCSEL output
    /// after the taper).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::DimensionMismatch`] if the array lengths do
    /// not match the topology/communication set, and
    /// [`NetworkError::BadCommunication`] if a communication references an
    /// ONI outside the topology.
    pub fn analyze(
        &self,
        topology: &RingTopology,
        comms: &[Communication],
        oni_temperatures: &[Celsius],
        injected_power: &[Watts],
    ) -> Result<SnrReport, NetworkError> {
        let n = topology.oni_count();
        if oni_temperatures.len() != n {
            return Err(NetworkError::DimensionMismatch {
                what: "ONI temperatures",
                expected: n,
                got: oni_temperatures.len(),
            });
        }
        if injected_power.len() != comms.len() {
            return Err(NetworkError::DimensionMismatch {
                what: "injected powers",
                expected: comms.len(),
                got: injected_power.len(),
            });
        }
        for c in comms {
            if !topology.contains(c.source()) || !topology.contains(c.destination()) {
                return Err(NetworkError::BadCommunication {
                    reason: format!("{c} references an ONI outside the topology"),
                });
            }
        }

        // Receivers hosted at each ONI: (comm index, ring at host temp).
        let mut receivers_at: Vec<Vec<(usize, MicroringResonator)>> = vec![Vec::new(); n];
        for (ci, c) in comms.iter().enumerate() {
            receivers_at[c.destination().index()].push((ci, self.ring_for(c.channel())));
        }

        let mut signal = vec![0.0f64; comms.len()];
        let mut noise = vec![0.0f64; comms.len()];

        for (ci, c) in comms.iter().enumerate() {
            let lambda = self.signal_wavelength(c, oni_temperatures);
            let mut power = injected_power[ci].value();
            if power < 0.0 || !power.is_finite() {
                return Err(NetworkError::BadParameter {
                    reason: format!("injected power for {c} must be non-negative and finite"),
                });
            }

            // Walk one full loop: source -> ... -> back to source.
            let mut prev = c.source();
            for m in topology.walk_from(c.source()) {
                // Propagation loss over the segment prev -> m.
                power *= self.waveguide.transmission_over(topology.distance(prev, m));
                prev = m;

                let t_host = oni_temperatures[m.index()];
                for &(ri, ref ring) in &receivers_at[m.index()] {
                    let drop = ring.drop_fraction_at(lambda, t_host);
                    let dropped = power * drop;
                    if ri == ci {
                        // Our own receiver: the dropped power *is* the signal.
                        signal[ci] += dropped;
                    } else {
                        // Mis-dropped power lands on another photodetector.
                        noise[ri] += dropped;
                    }
                    power -= dropped;
                }
                if power <= 0.0 {
                    break;
                }
            }
            // Power returning to the source is absorbed by the injector.
        }

        let results = comms
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let s = Watts::new(signal[ci]);
                let x = Watts::new(noise[ci]);
                let snr_db = if noise[ci] > 0.0 {
                    10.0 * (signal[ci] / noise[ci]).log10()
                } else if signal[ci] > 0.0 {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                CommResult {
                    communication: *c,
                    signal: s,
                    crosstalk: x,
                    snr_db,
                    detected: self.photodetector.detects(s),
                }
            })
            .collect();
        Ok(SnrReport { results })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assign_channels, traffic};
    use vcsel_units::Meters;

    fn setup(n: usize, length_mm: f64) -> (RingTopology, Vec<Communication>, SnrAnalyzer) {
        let topo = RingTopology::evenly_spaced(n, Meters::from_millimeters(length_mm)).unwrap();
        let comms = assign_channels(&topo, &traffic::all_to_all(n)).unwrap();
        let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
        (topo, comms, analyzer)
    }

    fn uniform_temps(n: usize, t: f64) -> Vec<Celsius> {
        vec![Celsius::new(t); n]
    }

    fn powers(n: usize, mw: f64) -> Vec<Watts> {
        vec![Watts::from_milliwatts(mw); n]
    }

    #[test]
    fn aligned_network_has_high_snr() {
        let (topo, comms, analyzer) = setup(4, 18.0);
        let report = analyzer
            .analyze(&topo, &comms, &uniform_temps(4, 45.0), &powers(comms.len(), 0.3))
            .unwrap();
        assert!(report.worst_snr_db() > 15.0, "got {}", report.worst_snr_db());
        assert!(report.all_detected());
    }

    #[test]
    fn temperature_gradient_degrades_snr() {
        let (topo, comms, analyzer) = setup(4, 18.0);
        let aligned = analyzer
            .analyze(&topo, &comms, &uniform_temps(4, 45.0), &powers(comms.len(), 0.3))
            .unwrap();
        let temps: Vec<Celsius> = (0..4).map(|i| Celsius::new(45.0 + 2.0 * i as f64)).collect();
        let skewed = analyzer.analyze(&topo, &comms, &temps, &powers(comms.len(), 0.3)).unwrap();
        assert!(
            skewed.worst_snr_db() < aligned.worst_snr_db(),
            "gradient must reduce SNR: {} vs {}",
            skewed.worst_snr_db(),
            aligned.worst_snr_db()
        );
    }

    #[test]
    fn common_mode_shift_is_harmless() {
        // Shifting ALL ONIs by the same amount leaves relative alignment
        // intact: SNR must be (almost) unchanged.
        let (topo, comms, analyzer) = setup(4, 18.0);
        let a = analyzer
            .analyze(&topo, &comms, &uniform_temps(4, 45.0), &powers(comms.len(), 0.3))
            .unwrap();
        let b = analyzer
            .analyze(&topo, &comms, &uniform_temps(4, 60.0), &powers(comms.len(), 0.3))
            .unwrap();
        assert!((a.worst_snr_db() - b.worst_snr_db()).abs() < 1e-6);
    }

    #[test]
    fn longer_ring_lower_signal() {
        let (t1, c1, analyzer) = setup(4, 18.0);
        let (t3, c3, _) = setup(4, 46.8);
        let r1 =
            analyzer.analyze(&t1, &c1, &uniform_temps(4, 45.0), &powers(c1.len(), 0.3)).unwrap();
        let r3 =
            analyzer.analyze(&t3, &c3, &uniform_temps(4, 45.0), &powers(c3.len(), 0.3)).unwrap();
        let s1 = r1.worst().unwrap().signal;
        let s3 = r3.worst().unwrap().signal;
        assert!(s3 < s1, "longer ring must deliver less signal: {s3} vs {s1}");
    }

    #[test]
    fn snr_scales_with_injected_power_uniformly() {
        // Doubling every injected power doubles both signal and crosstalk:
        // SNR is invariant, received power is not.
        let (topo, comms, analyzer) = setup(4, 18.0);
        let temps: Vec<Celsius> = (0..4).map(|i| Celsius::new(45.0 + 1.5 * i as f64)).collect();
        let a = analyzer.analyze(&topo, &comms, &temps, &powers(comms.len(), 0.2)).unwrap();
        let b = analyzer.analyze(&topo, &comms, &temps, &powers(comms.len(), 0.4)).unwrap();
        for (ra, rb) in a.results().iter().zip(b.results()) {
            assert!((ra.snr_db - rb.snr_db).abs() < 1e-9);
            assert!((rb.signal.value() - 2.0 * ra.signal.value()).abs() < 1e-15);
        }
    }

    #[test]
    fn energy_is_conserved_per_signal() {
        // Signal + all crosstalk contributions + residual <= injected.
        let (topo, comms, analyzer) = setup(3, 18.0);
        let report = analyzer
            .analyze(&topo, &comms, &uniform_temps(3, 45.0), &powers(comms.len(), 0.3))
            .unwrap();
        let total_received: f64 =
            report.results().iter().map(|r| r.signal.value() + r.crosstalk.value()).sum();
        let total_injected = 0.3e-3 * comms.len() as f64;
        assert!(
            total_received <= total_injected * (1.0 + 1e-9),
            "received {total_received} exceeds injected {total_injected}"
        );
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let (topo, comms, analyzer) = setup(4, 18.0);
        assert!(matches!(
            analyzer.analyze(&topo, &comms, &uniform_temps(3, 45.0), &powers(comms.len(), 0.3)),
            Err(NetworkError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            analyzer.analyze(&topo, &comms, &uniform_temps(4, 45.0), &powers(1, 0.3)),
            Err(NetworkError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn undetectable_when_power_too_low() {
        let (topo, comms, analyzer) = setup(4, 18.0);
        let report = analyzer
            .analyze(
                &topo,
                &comms,
                &uniform_temps(4, 45.0),
                &powers(comms.len(), 1e-6), // 1 nW injected
            )
            .unwrap();
        assert!(!report.all_detected());
    }

    #[test]
    fn report_worst_matches_min() {
        let (topo, comms, analyzer) = setup(4, 32.4);
        let temps: Vec<Celsius> =
            (0..4).map(|i| Celsius::new(44.0 + 3.0 * (i % 2) as f64)).collect();
        let report = analyzer.analyze(&topo, &comms, &temps, &powers(comms.len(), 0.3)).unwrap();
        let min = report.results().iter().map(|r| r.snr_db).fold(f64::INFINITY, f64::min);
        assert_eq!(report.worst_snr_db(), min);
        assert_eq!(report.worst().unwrap().snr_db, min);
        assert!(report.mean_snr_db() >= min);
    }
}
