//! Ring topology: ONI positions along a unidirectional ring waveguide.

use serde::{Deserialize, Serialize};
use vcsel_units::Meters;

use crate::NetworkError;

/// Identifier of an Optical Network Interface on a ring.
///
/// # Example
///
/// ```
/// use vcsel_network::OniId;
///
/// let oni = OniId::new(3);
/// assert_eq!(oni.index(), 3);
/// assert_eq!(oni.to_string(), "ONI3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OniId(usize);

impl OniId {
    /// Creates an ONI id from its index on the ring.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The ring index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for OniId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ONI{}", self.0)
    }
}

impl From<usize> for OniId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// ONIs placed along a unidirectional ring waveguide.
///
/// Positions are arc lengths from an arbitrary origin, in ring direction
/// (the direction optical signals propagate). The paper's case study uses
/// rings of 18 mm, 32.4 mm and 46.8 mm (Figure 11).
///
/// # Example
///
/// ```
/// use vcsel_network::RingTopology;
/// use vcsel_units::Meters;
///
/// let topo = RingTopology::evenly_spaced(8, Meters::from_millimeters(32.4))?;
/// assert_eq!(topo.oni_count(), 8);
/// // Forward arc from ONI 6 to ONI 1 wraps around the origin.
/// let d = topo.distance(6.into(), 1.into());
/// assert!((d.as_millimeters() - 3.0 * 32.4 / 8.0).abs() < 1e-9);
/// # Ok::<(), vcsel_network::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingTopology {
    /// Ring circumference in meters.
    length: f64,
    /// Sorted arc-length positions, one per ONI.
    positions: Vec<f64>,
}

impl RingTopology {
    /// Places `n` ONIs at explicit arc-length positions on a ring of
    /// circumference `length`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadTopology`] if fewer than two ONIs are
    /// given, positions are not strictly increasing, or any position falls
    /// outside `[0, length)`.
    pub fn new(length: Meters, positions: Vec<Meters>) -> Result<Self, NetworkError> {
        let l = length.value();
        if !(l > 0.0) || !l.is_finite() {
            return Err(NetworkError::BadTopology {
                reason: format!("ring length must be positive, got {length}"),
            });
        }
        if positions.len() < 2 {
            return Err(NetworkError::BadTopology {
                reason: format!("need at least 2 ONIs, got {}", positions.len()),
            });
        }
        let raw: Vec<f64> = positions.iter().map(|p| p.value()).collect();
        if raw.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NetworkError::BadTopology {
                reason: "ONI positions must be strictly increasing".into(),
            });
        }
        if raw.iter().any(|&p| p < 0.0 || p >= l) {
            return Err(NetworkError::BadTopology {
                reason: "ONI positions must lie in [0, ring length)".into(),
            });
        }
        Ok(Self { length: l, positions: raw })
    }

    /// Places `n` ONIs evenly around a ring of circumference `length`.
    ///
    /// # Errors
    ///
    /// Same contract as [`RingTopology::new`].
    pub fn evenly_spaced(n: usize, length: Meters) -> Result<Self, NetworkError> {
        if n < 2 {
            return Err(NetworkError::BadTopology {
                reason: format!("need at least 2 ONIs, got {n}"),
            });
        }
        let positions = (0..n).map(|i| Meters::new(length.value() * i as f64 / n as f64)).collect();
        Self::new(length, positions)
    }

    /// Number of ONIs on the ring.
    pub fn oni_count(&self) -> usize {
        self.positions.len()
    }

    /// Ring circumference.
    pub fn length(&self) -> Meters {
        Meters::new(self.length)
    }

    /// Arc position of an ONI.
    ///
    /// # Panics
    ///
    /// Panics if `oni` is out of range.
    pub fn position(&self, oni: OniId) -> Meters {
        Meters::new(self.positions[oni.index()])
    }

    /// Whether `oni` exists on this ring.
    pub fn contains(&self, oni: OniId) -> bool {
        oni.index() < self.positions.len()
    }

    /// Forward (propagation-direction) arc length from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either ONI is out of range.
    pub fn distance(&self, from: OniId, to: OniId) -> Meters {
        let a = self.positions[from.index()];
        let b = self.positions[to.index()];
        let d = b - a;
        Meters::new(if d > 0.0 { d } else { d + self.length })
    }

    /// The ONIs encountered travelling forward from `from`, excluding
    /// `from` itself, for one full loop (ends just before returning to
    /// `from`). The first `hops_to(to)` entries are the intermediate +
    /// destination ONIs of a forward path.
    pub fn walk_from(&self, from: OniId) -> impl Iterator<Item = OniId> + '_ {
        let n = self.positions.len();
        let start = from.index();
        (1..n).map(move |k| OniId::new((start + k) % n))
    }

    /// Number of hops (ONI-to-ONI segments) on the forward path
    /// `from → to`.
    pub fn hops(&self, from: OniId, to: OniId) -> usize {
        let n = self.positions.len();
        (to.index() + n - from.index()) % n
    }

    /// Arc length of the segment from ONI `from` to the next ONI forward.
    pub fn segment_length(&self, from: OniId) -> Meters {
        let n = self.positions.len();
        let i = from.index();
        let next = (i + 1) % n;
        self.distance(OniId::new(i), OniId::new(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    #[test]
    fn evenly_spaced_positions() {
        let t = RingTopology::evenly_spaced(4, mm(18.0)).unwrap();
        assert_eq!(t.oni_count(), 4);
        assert!((t.position(OniId::new(2)).as_millimeters() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn distance_wraps() {
        let t = RingTopology::evenly_spaced(4, mm(18.0)).unwrap();
        assert!((t.distance(0.into(), 1.into()).as_millimeters() - 4.5).abs() < 1e-12);
        assert!((t.distance(3.into(), 0.into()).as_millimeters() - 4.5).abs() < 1e-12);
        assert!((t.distance(1.into(), 0.into()).as_millimeters() - 13.5).abs() < 1e-12);
        // Self-distance: a full loop would be 0 by the formula; we define it
        // as the full circumference (d = 0 -> wrap).
        assert!((t.distance(2.into(), 2.into()).as_millimeters() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn walk_visits_all_others_in_order() {
        let t = RingTopology::evenly_spaced(5, mm(10.0)).unwrap();
        let walked: Vec<usize> = t.walk_from(3.into()).map(OniId::index).collect();
        assert_eq!(walked, vec![4, 0, 1, 2]);
    }

    #[test]
    fn hops() {
        let t = RingTopology::evenly_spaced(6, mm(12.0)).unwrap();
        assert_eq!(t.hops(0.into(), 1.into()), 1);
        assert_eq!(t.hops(4.into(), 1.into()), 3);
        assert_eq!(t.hops(2.into(), 2.into()), 0);
    }

    #[test]
    fn segment_lengths_sum_to_circumference() {
        let t = RingTopology::new(mm(20.0), vec![mm(0.0), mm(3.0), mm(9.5), mm(14.0)]).unwrap();
        let total: f64 = (0..4).map(|i| t.segment_length(OniId::new(i)).as_millimeters()).sum();
        assert!((total - 20.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(RingTopology::evenly_spaced(1, mm(10.0)).is_err());
        assert!(RingTopology::new(mm(0.0), vec![mm(0.0), mm(1.0)]).is_err());
        assert!(RingTopology::new(mm(10.0), vec![mm(1.0), mm(1.0)]).is_err());
        assert!(RingTopology::new(mm(10.0), vec![mm(0.0), mm(10.0)]).is_err());
        assert!(RingTopology::new(mm(10.0), vec![mm(5.0)]).is_err());
    }

    #[test]
    fn display_oni() {
        assert_eq!(OniId::new(7).to_string(), "ONI7");
        assert_eq!(OniId::from(2).index(), 2);
    }
}
