//! Communications: source→destination flows with an assigned wavelength
//! channel.

use serde::{Deserialize, Serialize};

use crate::{NetworkError, OniId, RingTopology};

/// A point-to-point communication `C_sd` on one waveguide, carried on one
/// wavelength channel (paper Figure 6: transmitter `T_sd` at the source,
/// receiver `R_sd` at the destination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Communication {
    source: OniId,
    destination: OniId,
    channel: usize,
}

impl Communication {
    /// Creates a communication after validating it against `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadCommunication`] for self-loops or ONIs
    /// outside the topology.
    pub fn new(
        topology: &RingTopology,
        source: OniId,
        destination: OniId,
        channel: usize,
    ) -> Result<Self, NetworkError> {
        if source == destination {
            return Err(NetworkError::BadCommunication {
                reason: format!("self-loop at {source}"),
            });
        }
        if !topology.contains(source) || !topology.contains(destination) {
            return Err(NetworkError::BadCommunication {
                reason: format!(
                    "{source} -> {destination} references an ONI outside the {}-ONI ring",
                    topology.oni_count()
                ),
            });
        }
        Ok(Self { source, destination, channel })
    }

    /// Source ONI (hosts the transmitter `T_sd`).
    pub fn source(&self) -> OniId {
        self.source
    }

    /// Destination ONI (hosts the receiver `R_sd`).
    pub fn destination(&self) -> OniId {
        self.destination
    }

    /// Assigned wavelength-channel index.
    pub fn channel(&self) -> usize {
        self.channel
    }
}

impl core::fmt::Display for Communication {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "C({}->{}, ch{})", self.source, self.destination, self.channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_units::Meters;

    fn topo() -> RingTopology {
        RingTopology::evenly_spaced(4, Meters::from_millimeters(18.0)).unwrap()
    }

    #[test]
    fn valid_communication() {
        let c = Communication::new(&topo(), 0.into(), 2.into(), 1).unwrap();
        assert_eq!(c.source().index(), 0);
        assert_eq!(c.destination().index(), 2);
        assert_eq!(c.channel(), 1);
        assert_eq!(c.to_string(), "C(ONI0->ONI2, ch1)");
    }

    #[test]
    fn self_loop_rejected() {
        assert!(matches!(
            Communication::new(&topo(), 1.into(), 1.into(), 0),
            Err(NetworkError::BadCommunication { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Communication::new(&topo(), 0.into(), 9.into(), 0).is_err());
        assert!(Communication::new(&topo(), 9.into(), 0.into(), 0).is_err());
    }
}
