//! Path-level SNR model for the baseline optical crossbars.
//!
//! The [`baselines`](crate::baselines) module reproduces the closed-form
//! worst/average *insertion-loss* comparison the paper quotes from \[20\].
//! This module goes one level deeper: it instantiates an actual
//! wavelength-routed crossbar — Matrix \[18\], λ-router \[1\], Snake \[4\], or
//! the ORNoC ring \[2\] — enumerates the structural path of every
//! communication (ring encounters, waveguide crossings, path length), and
//! runs the same misalignment-crosstalk analysis as
//! [`SnrAnalyzer`](crate::SnrAnalyzer) under an arbitrary per-node
//! temperature field. That extends the paper's §III-A loss argument into a
//! full thermal-gradient SNR comparison: topologies with more ring
//! traversals are hit harder by temperature spread, not just by static
//! loss.
//!
//! Wavelength routing follows the standard crossbar rule: the pair `(s, d)`
//! communicates on channel `(s + d) mod n`, so every source sees each
//! channel at most once and every destination hosts one ring per source.

use serde::{Deserialize, Serialize};
use vcsel_photonics::{MicroringResonator, Photodetector, TechnologyParams};
use vcsel_units::{Celsius, Meters, Nanometers, Watts};

use crate::baselines::{CrossbarTopology, LossCoefficients};
use crate::{NetworkError, WavelengthGrid};

/// One ring the signal passes on its way through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RingEncounter {
    /// Source of the pair owning the ring.
    owner_source: usize,
    /// Destination of the pair owning the ring (= the node the ring serves).
    owner_destination: usize,
    /// Node whose temperature the ring follows.
    host: usize,
}

/// The structural path of one communication through a crossbar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarPath {
    /// Waveguide crossings along the path.
    pub crossings: usize,
    /// Physical path length.
    pub length: Meters,
    /// Rings encountered before the destination drop (count only; the
    /// owners are internal detail).
    pub rings_passed: usize,
}

/// Per-communication outcome of a crossbar SNR analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarCommResult {
    /// Source node.
    pub source: usize,
    /// Destination node.
    pub destination: usize,
    /// Routed channel `(s + d) mod n`.
    pub channel: usize,
    /// Signal power on the destination photodetector.
    pub signal: Watts,
    /// Crosstalk power on the same photodetector.
    pub crosstalk: Watts,
    /// SNR in dB.
    pub snr_db: f64,
    /// Whether the photodetector sensitivity is met.
    pub detected: bool,
}

/// Result of analyzing a communication set on a crossbar instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarReport {
    results: Vec<CrossbarCommResult>,
}

impl CrossbarReport {
    /// Per-communication results in input order.
    pub fn results(&self) -> &[CrossbarCommResult] {
        &self.results
    }

    /// The smallest SNR over all communications.
    pub fn worst_snr_db(&self) -> f64 {
        self.results.iter().map(|r| r.snr_db).fold(f64::INFINITY, f64::min)
    }

    /// Mean of the finite per-communication SNRs.
    pub fn mean_snr_db(&self) -> f64 {
        let finite: Vec<f64> =
            self.results.iter().map(|r| r.snr_db).filter(|s| s.is_finite()).collect();
        if finite.is_empty() {
            return f64::INFINITY;
        }
        finite.iter().sum::<f64>() / finite.len() as f64
    }

    /// Whether every communication meets the receiver sensitivity.
    pub fn all_detected(&self) -> bool {
        self.results.iter().all(|r| r.detected)
    }
}

/// An `n`-node wavelength-routed crossbar ready for path-level analysis.
///
/// # Example
///
/// ```
/// use vcsel_network::baselines::{CrossbarTopology, LossCoefficients};
/// use vcsel_network::{CrossbarInstance, WavelengthGrid};
/// use vcsel_units::{Celsius, Watts};
///
/// let xbar = CrossbarInstance::new(
///     CrossbarTopology::Matrix,
///     4,
///     LossCoefficients::standard(),
///     WavelengthGrid::paper_default(),
/// )?;
/// let pairs: Vec<(usize, usize)> = (0..4).flat_map(|s| (0..4)
///     .filter(move |&d| d != s).map(move |d| (s, d))).collect();
/// let temps = vec![Celsius::new(50.0); 4];
/// let powers = vec![Watts::from_milliwatts(0.3); pairs.len()];
/// let report = xbar.analyze(&pairs, &temps, &powers)?;
/// assert!(report.worst_snr_db() > 10.0);
/// # Ok::<(), vcsel_network::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarInstance {
    topology: CrossbarTopology,
    n: usize,
    k: LossCoefficients,
    grid: WavelengthGrid,
    photodetector: Photodetector,
    ring_bandwidth: Nanometers,
    drift_nm_per_c: f64,
}

impl CrossbarInstance {
    /// Builds an `n`-node instance of `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadTopology`] for `n < 2`.
    pub fn new(
        topology: CrossbarTopology,
        n: usize,
        k: LossCoefficients,
        grid: WavelengthGrid,
    ) -> Result<Self, NetworkError> {
        if n < 2 {
            return Err(NetworkError::BadTopology {
                reason: format!("crossbar needs at least 2 nodes, got {n}"),
            });
        }
        let t = TechnologyParams::paper();
        Ok(Self {
            topology,
            n,
            k,
            grid,
            photodetector: Photodetector::paper_default(),
            ring_bandwidth: t.mr_bandwidth_3db,
            drift_nm_per_c: t.thermal_sensitivity_nm_per_c,
        })
    }

    /// The topology this instance realizes.
    pub fn topology(&self) -> CrossbarTopology {
        self.topology
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The wavelength-routing rule.
    ///
    /// * Matrix / λ-router: pair `(s, d)` uses channel `(s + d) mod n` —
    ///   the classic crossbar Latin square, collision-free because a path
    ///   only passes rings owned by its *own* source.
    /// * ORNoC / Snake: channel `d` (receiver-indexed) — on a ring or line
    ///   the path passes *other destinations'* receiver banks, and any ring
    ///   sharing the signal's channel would wrongly terminate it; indexing
    ///   by destination makes every en-route bank off-channel by
    ///   construction.
    pub fn channel(&self, s: usize, d: usize) -> usize {
        match self.topology {
            CrossbarTopology::Matrix | CrossbarTopology::LambdaRouter => (s + d) % self.n,
            CrossbarTopology::Ornoc | CrossbarTopology::Snake => d,
        }
    }

    /// The structural path of communication `s -> d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::BadCommunication`] for out-of-range or
    /// self-directed pairs.
    pub fn path(&self, s: usize, d: usize) -> Result<CrossbarPath, NetworkError> {
        let encounters = self.encounters(s, d)?;
        Ok(CrossbarPath {
            crossings: self.crossings(s, d),
            length: self.path_length(s, d),
            rings_passed: encounters.len(),
        })
    }

    fn check_pair(&self, s: usize, d: usize) -> Result<(), NetworkError> {
        if s >= self.n || d >= self.n || s == d {
            return Err(NetworkError::BadCommunication {
                reason: format!("invalid pair ({s}, {d}) for an {}-node crossbar", self.n),
            });
        }
        Ok(())
    }

    /// Rings passed *before* the final drop, in path order.
    fn encounters(&self, s: usize, d: usize) -> Result<Vec<RingEncounter>, NetworkError> {
        self.check_pair(s, d)?;
        let n = self.n;
        Ok(match self.topology {
            // Ring walk: every node between s and d (clockwise) exposes its
            // full receiver bank; handled per-set in `analyze`. Here we
            // record the host visits; owners are filled in during analysis.
            CrossbarTopology::Ornoc | CrossbarTopology::Snake => {
                let hops = if self.topology == CrossbarTopology::Ornoc {
                    (d + n - s) % n
                } else {
                    s.abs_diff(d)
                };
                let dir: isize =
                    if self.topology == CrossbarTopology::Ornoc || s < d { 1 } else { -1 };
                (1..hops)
                    .map(|k| {
                        let m = (s as isize + dir * k as isize).rem_euclid(n as isize) as usize;
                        RingEncounter { owner_source: usize::MAX, owner_destination: m, host: m }
                    })
                    .collect()
            }
            // Row s scans columns 0..d; each crosspoint (s, j) holds the
            // ring serving pair (s, j), temperature-tied to column node j.
            CrossbarTopology::Matrix => (0..d)
                .filter(|&j| j != s)
                .map(|j| RingEncounter { owner_source: s, owner_destination: j, host: j })
                .collect(),
            // n-stage multistage fabric: stage k holds the add-drop ring
            // for pair (s, (s + k) mod n); its temperature interpolates
            // between the endpoints (the stages sit between the node rows).
            CrossbarTopology::LambdaRouter => (1..n)
                .map(|k| (s + k) % n)
                .filter(|&j| j != d && j != s)
                .map(|j| RingEncounter { owner_source: s, owner_destination: j, host: j })
                .collect(),
        })
    }

    fn crossings(&self, s: usize, d: usize) -> usize {
        let n = self.n;
        match self.topology {
            CrossbarTopology::Ornoc => 0,
            CrossbarTopology::Matrix => d + s, // columns crossed + rows crossed
            CrossbarTopology::LambdaRouter => n / 2,
            CrossbarTopology::Snake => s.abs_diff(d) / 2,
        }
    }

    fn path_length(&self, s: usize, d: usize) -> Meters {
        let pitch = self.k.node_pitch.value();
        let n = self.n;
        let pitches = match self.topology {
            CrossbarTopology::Ornoc => 1.3 * ((d + n - s) % n) as f64,
            CrossbarTopology::Matrix => (s + d + 2) as f64,
            CrossbarTopology::LambdaRouter => (n / 2 + 2) as f64,
            CrossbarTopology::Snake => 1.5 * s.abs_diff(d) as f64,
        };
        Meters::new(pitches * pitch)
    }

    fn ring_for(&self, channel: usize) -> MicroringResonator {
        MicroringResonator::new(
            self.grid.wavelength(channel),
            self.grid.reference_temperature(),
            self.ring_bandwidth,
            self.drift_nm_per_c,
            vcsel_units::Decibels::ZERO,
        )
        .expect("grid wavelengths are valid")
    }

    fn signal_wavelength(&self, channel: usize, t_src: Celsius) -> Nanometers {
        Nanometers::new(
            self.grid.wavelength(channel).value()
                + self.drift_nm_per_c * (t_src.value() - self.grid.reference_temperature().value()),
        )
    }

    /// Runs the path-level SNR analysis for a communication set under the
    /// given per-node temperatures.
    ///
    /// `injected_power[c]` is the optical power pair `pairs[c]` injects into
    /// the fabric.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::DimensionMismatch`] for wrong-length arrays,
    /// * [`NetworkError::BadCommunication`] for invalid pairs.
    pub fn analyze(
        &self,
        pairs: &[(usize, usize)],
        temperatures: &[Celsius],
        injected_power: &[Watts],
    ) -> Result<CrossbarReport, NetworkError> {
        if temperatures.len() != self.n {
            return Err(NetworkError::DimensionMismatch {
                what: "node temperatures",
                expected: self.n,
                got: temperatures.len(),
            });
        }
        if injected_power.len() != pairs.len() {
            return Err(NetworkError::DimensionMismatch {
                what: "injected powers",
                expected: pairs.len(),
                got: injected_power.len(),
            });
        }
        for &(s, d) in pairs {
            self.check_pair(s, d)?;
        }

        // Pair index lookup for noise attribution.
        let index_of = |s: usize, d: usize| pairs.iter().position(|&(ps, pd)| ps == s && pd == d);

        let mut signal = vec![0.0f64; pairs.len()];
        let mut noise = vec![0.0f64; pairs.len()];

        for (ci, &(s, d)) in pairs.iter().enumerate() {
            let channel = self.channel(s, d);
            let lambda = self.signal_wavelength(channel, temperatures[s]);
            let mut power = injected_power[ci].value();
            if power < 0.0 || !power.is_finite() {
                return Err(NetworkError::BadParameter {
                    reason: format!("injected power for ({s}, {d}) must be non-negative"),
                });
            }

            // Static structural losses, spread evenly across the walk.
            let crossings = self.crossings(s, d) as f64;
            let length_cm = self.path_length(s, d).as_centimeters();
            let static_db =
                crossings * self.k.crossing_db + length_cm * self.k.propagation_db_per_cm;

            let encounters = self.encounters(s, d)?;
            let steps = (encounters.len() + 1) as f64;
            let per_step = 10f64.powf(-static_db / (10.0 * steps));

            for enc in &encounters {
                power *= per_step;
                let t_host = temperatures[enc.host];
                match self.topology {
                    CrossbarTopology::Ornoc | CrossbarTopology::Snake => {
                        // The visited node's full receiver bank: one ring
                        // per pair in the set destined to this node.
                        for (ri, &(rs, rd)) in pairs.iter().enumerate() {
                            if rd != enc.host || ri == ci {
                                continue;
                            }
                            let ring = self.ring_for(self.channel(rs, rd));
                            let drop = ring.drop_fraction_at(lambda, t_host);
                            let dropped = power * drop;
                            noise[ri] += dropped;
                            power -= dropped;
                        }
                    }
                    CrossbarTopology::Matrix | CrossbarTopology::LambdaRouter => {
                        // Exactly one structural ring per encounter, owned
                        // by pair (owner_source, owner_destination).
                        let ring =
                            self.ring_for(self.channel(enc.owner_source, enc.owner_destination));
                        let drop = ring.drop_fraction_at(lambda, t_host);
                        let dropped = power * drop;
                        if let Some(ri) = index_of(enc.owner_source, enc.owner_destination) {
                            if ri != ci {
                                noise[ri] += dropped;
                            }
                        }
                        power -= dropped;
                    }
                }
                if power <= 0.0 {
                    break;
                }
            }

            // Final hop + the destination drop.
            power = (power * per_step).max(0.0);
            let own_ring = self.ring_for(channel);
            let drop_loss = 10f64.powf(-self.k.ring_drop_db / 10.0);
            signal[ci] += power * own_ring.drop_fraction_at(lambda, temperatures[d]) * drop_loss;
        }

        let results = pairs
            .iter()
            .enumerate()
            .map(|(ci, &(s, d))| {
                let sg = Watts::new(signal[ci]);
                let xt = Watts::new(noise[ci]);
                let snr_db = if noise[ci] > 0.0 {
                    10.0 * (signal[ci] / noise[ci]).log10()
                } else if signal[ci] > 0.0 {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                CrossbarCommResult {
                    source: s,
                    destination: d,
                    channel: self.channel(s, d),
                    signal: sg,
                    crosstalk: xt,
                    snr_db,
                    detected: self.photodetector.detects(sg),
                }
            })
            .collect();
        Ok(CrossbarReport { results })
    }
}

/// All-to-all pair set for an `n`-node crossbar.
pub fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n).flat_map(|s| (0..n).filter(move |&d| d != s).map(move |d| (s, d))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(topology: CrossbarTopology, n: usize) -> CrossbarInstance {
        CrossbarInstance::new(
            topology,
            n,
            LossCoefficients::standard(),
            WavelengthGrid::paper_default(),
        )
        .unwrap()
    }

    fn uniform(n: usize, t: f64) -> Vec<Celsius> {
        vec![Celsius::new(t); n]
    }

    fn skewed(n: usize, slope: f64) -> Vec<Celsius> {
        (0..n).map(|i| Celsius::new(50.0 + slope * i as f64)).collect()
    }

    #[test]
    fn channels_are_a_latin_square() {
        let x = instance(CrossbarTopology::Matrix, 8);
        // Each source sees every channel at most once, likewise each dest.
        for s in 0..8 {
            let mut seen = [false; 8];
            for d in 0..8 {
                if d == s {
                    continue;
                }
                let c = x.channel(s, d);
                assert!(!seen[c], "source {s} reuses channel {c}");
                seen[c] = true;
            }
        }
    }

    #[test]
    fn aligned_fabrics_detect_everything() {
        for topo in CrossbarTopology::all() {
            let x = instance(topo, 4);
            let pairs = all_pairs(4);
            let powers = vec![Watts::from_milliwatts(0.3); pairs.len()];
            let r = x.analyze(&pairs, &uniform(4, 50.0), &powers).unwrap();
            assert!(
                r.worst_snr_db() > 10.0,
                "{}: aligned worst SNR {}",
                topo.name(),
                r.worst_snr_db()
            );
            assert!(r.all_detected(), "{}", topo.name());
        }
    }

    #[test]
    fn gradient_degrades_every_topology() {
        for topo in CrossbarTopology::all() {
            let x = instance(topo, 6);
            let pairs = all_pairs(6);
            let powers = vec![Watts::from_milliwatts(0.3); pairs.len()];
            let aligned = x.analyze(&pairs, &uniform(6, 50.0), &powers).unwrap();
            let hot = x.analyze(&pairs, &skewed(6, 3.0), &powers).unwrap();
            assert!(
                hot.worst_snr_db() < aligned.worst_snr_db(),
                "{}: {} !< {}",
                topo.name(),
                hot.worst_snr_db(),
                aligned.worst_snr_db()
            );
        }
    }

    #[test]
    fn ornoc_has_least_static_loss() {
        // No crossings: ORNoC's received signal beats the Matrix's on the
        // worst path of an aligned fabric.
        let pairs = all_pairs(6);
        let powers = vec![Watts::from_milliwatts(0.3); pairs.len()];
        let min_signal = |topo| {
            let x = instance(topo, 6);
            let r = x.analyze(&pairs, &uniform(6, 50.0), &powers).unwrap();
            r.results().iter().map(|c| c.signal.value()).fold(f64::INFINITY, f64::min)
        };
        assert!(min_signal(CrossbarTopology::Ornoc) > min_signal(CrossbarTopology::Matrix));
    }

    #[test]
    fn paths_match_structural_expectations() {
        let n = 8;
        let ornoc = instance(CrossbarTopology::Ornoc, n);
        assert_eq!(ornoc.path(0, 4).unwrap().crossings, 0);
        let matrix = instance(CrossbarTopology::Matrix, n);
        assert_eq!(matrix.path(3, 5).unwrap().crossings, 8);
        let snake = instance(CrossbarTopology::Snake, n);
        assert_eq!(snake.path(1, 7).unwrap().crossings, 3);
        // Ring-walk wraps around.
        let p = ornoc.path(6, 2).unwrap();
        assert_eq!(p.rings_passed, 3); // nodes 7, 0, 1
    }

    #[test]
    fn common_mode_temperature_is_harmless() {
        for topo in CrossbarTopology::all() {
            let x = instance(topo, 4);
            let pairs = all_pairs(4);
            let powers = vec![Watts::from_milliwatts(0.3); pairs.len()];
            let a = x.analyze(&pairs, &uniform(4, 45.0), &powers).unwrap();
            let b = x.analyze(&pairs, &uniform(4, 65.0), &powers).unwrap();
            assert!(
                (a.worst_snr_db() - b.worst_snr_db()).abs() < 1e-6,
                "{}: common mode must cancel",
                topo.name()
            );
        }
    }

    #[test]
    fn validation() {
        assert!(CrossbarInstance::new(
            CrossbarTopology::Matrix,
            1,
            LossCoefficients::standard(),
            WavelengthGrid::paper_default()
        )
        .is_err());
        let x = instance(CrossbarTopology::Matrix, 4);
        assert!(x.path(0, 0).is_err());
        assert!(x.path(0, 9).is_err());
        let pairs = vec![(0usize, 1usize)];
        assert!(x.analyze(&pairs, &uniform(3, 50.0), &[Watts::ZERO]).is_err());
        assert!(x.analyze(&pairs, &uniform(4, 50.0), &[]).is_err());
        assert!(x.analyze(&[(0, 4)], &uniform(4, 50.0), &[Watts::ZERO]).is_err());
    }
}
