//! ORNoC ring-interconnect model and SNR analysis (paper Sections III-A and
//! IV-C), plus the baseline optical crossbars the paper compares against.
//!
//! The paper's interconnect is **ORNoC** \[2\]: a ring-based network where a
//! communication between a source interface `ONI_S` and a destination
//! interface `ONI_D` occupies one wavelength on one waveguide along the arc
//! from S to D; passive microrings drop the signal at the destination, and
//! the same wavelength can be *reused* on disjoint arcs — no arbitration
//! needed.
//!
//! This crate provides:
//!
//! * [`RingTopology`] — ONI positions along a ring waveguide,
//! * [`WavelengthGrid`] + [`assign_channels`] — channel wavelengths and the
//!   ORNoC segment-reuse channel assignment,
//! * [`traffic`] — standard communication patterns (neighbor rings,
//!   all-to-all, custom),
//! * [`SnrAnalyzer`] — the worst-case SNR model of Section IV-C: signal
//!   attenuation through intermediate rings, misalignment-induced crosstalk
//!   from temperature differences between ONIs, propagation loss,
//! * [`baselines`] — worst-case/average insertion-loss models for the
//!   Matrix, λ-router and Snake crossbars, reproducing the "ORNoC reduces
//!   worst-case losses by ~42.5 % and average by ~38 % at 4×4" comparison
//!   quoted from \[20\],
//! * [`CrossbarInstance`] — path-level instantiations of all four fabrics
//!   (ring encounters, crossings, lengths per communication) so the same
//!   misalignment-crosstalk analysis can compare them under an arbitrary
//!   temperature field.
//!
//! # Example
//!
//! ```
//! use vcsel_network::{assign_channels, traffic, RingTopology, SnrAnalyzer, WavelengthGrid};
//! use vcsel_units::{Celsius, Meters, Watts};
//!
//! // 4 ONIs on an 18 mm ring, neighbor traffic, all at 50 °C.
//! let topo = RingTopology::evenly_spaced(4, Meters::from_millimeters(18.0))?;
//! let comms = assign_channels(&topo, &traffic::ring_neighbors(4))?;
//! let analyzer = SnrAnalyzer::paper_default(WavelengthGrid::paper_default());
//! let temps = vec![Celsius::new(50.0); 4];
//! let op = vec![Watts::from_milliwatts(0.3); comms.len()];
//! let report = analyzer.analyze(&topo, &comms, &temps, &op)?;
//! assert!(report.worst_snr_db() > 20.0); // aligned ring, little crosstalk
//! # Ok::<(), vcsel_network::NetworkError>(())
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

pub mod baselines;
mod comm;
mod crossbar;
mod error;
mod snr;
mod topology;
pub mod traffic;
mod wavelength;

pub use comm::Communication;
pub use crossbar::{all_pairs, CrossbarCommResult, CrossbarInstance, CrossbarPath, CrossbarReport};
pub use error::NetworkError;
pub use snr::{CommResult, SnrAnalyzer, SnrReport};
pub use topology::{OniId, RingTopology};
pub use wavelength::{assign_channels, channels_needed, WavelengthGrid};
