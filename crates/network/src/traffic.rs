//! Standard communication patterns for evaluation.

use crate::OniId;

/// Neighbor (ring) traffic: every ONI sends to its forward neighbor —
/// the lightest pattern a ring supports, fully channel-reusable.
///
/// # Example
///
/// ```
/// use vcsel_network::traffic;
///
/// let p = traffic::ring_neighbors(4);
/// assert_eq!(p.len(), 4);
/// assert_eq!(p[3].1.index(), 0); // wraps around
/// ```
pub fn ring_neighbors(n: usize) -> Vec<(OniId, OniId)> {
    (0..n).map(|i| (OniId::new(i), OniId::new((i + 1) % n))).collect()
}

/// All-to-all traffic: every ordered pair communicates (the worst case for
/// wavelength demand).
pub fn all_to_all(n: usize) -> Vec<(OniId, OniId)> {
    let mut out = Vec::with_capacity(n.saturating_sub(1) * n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                out.push((OniId::new(s), OniId::new(d)));
            }
        }
    }
    out
}

/// Shift-by-`k` permutation traffic: ONI `i` sends to ONI `(i + k) mod n`.
/// `k = 1` reduces to [`ring_neighbors`]; `k = n/2` is the "diameter"
/// pattern with the longest arcs.
pub fn shift(n: usize, k: usize) -> Vec<(OniId, OniId)> {
    (0..n).filter(|&i| (i + k) % n != i).map(|i| (OniId::new(i), OniId::new((i + k) % n))).collect()
}

/// Hotspot traffic: every other ONI sends to `hot` (memory-controller-style
/// convergecast).
pub fn hotspot(n: usize, hot: OniId) -> Vec<(OniId, OniId)> {
    (0..n).filter(|&i| i != hot.index()).map(|i| (OniId::new(i), hot)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_count_and_wrap() {
        let p = ring_neighbors(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p[4], (OniId::new(4), OniId::new(0)));
    }

    #[test]
    fn all_to_all_count() {
        assert_eq!(all_to_all(4).len(), 12);
        assert!(all_to_all(4).iter().all(|(s, d)| s != d));
    }

    #[test]
    fn shift_pattern() {
        let p = shift(6, 3);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], (OniId::new(0), OniId::new(3)));
        // shift by 0 or by n produces no valid pairs
        assert!(shift(4, 0).is_empty());
        assert!(shift(4, 4).is_empty());
    }

    #[test]
    fn hotspot_pattern() {
        let p = hotspot(4, OniId::new(2));
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|(_, d)| d.index() == 2));
        assert!(p.iter().all(|(s, _)| s.index() != 2));
    }
}
