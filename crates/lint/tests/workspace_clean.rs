//! Acceptance test: the committed workspace must be clean under every rule
//! with the committed `lint.toml`, and no allowlist entry may be stale.
//!
//! This is the same scan `cargo run -p vcsel_lint -- --check` performs, run
//! as a test so `cargo test --workspace` catches invariant regressions even
//! when CI is not in the loop.

use std::fs;
use std::path::Path;

use vcsel_lint::{apply_allowlist, collect_workspace_files, config, lint_all, stale_suppressions};

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(root.join("lint.toml").exists(), "workspace root {} has no lint.toml", root.display());
    root
}

#[test]
fn committed_workspace_has_no_unallowed_findings() {
    let root = workspace_root();
    let cfg_text = fs::read_to_string(root.join("lint.toml")).expect("lint.toml is readable");
    let cfg = config::parse(&cfg_text).expect("lint.toml parses");
    let env_doc = fs::read_to_string(root.join(&cfg.env_registry_doc)).expect("env doc readable");

    let files = collect_workspace_files(root).expect("workspace sources readable");
    assert!(files.len() > 50, "workspace walk looks truncated: {} files", files.len());

    let findings = lint_all(&files, &cfg, &env_doc);
    let (kept, _suppressed) = apply_allowlist(findings, &files, &cfg);
    let rendered: Vec<String> = kept.iter().map(ToString::to_string).collect();
    assert!(kept.is_empty(), "workspace has unallowlisted lint findings:\n{}", rendered.join("\n"));
}

#[test]
fn committed_allowlist_has_no_stale_entries() {
    let root = workspace_root();
    let cfg_text = fs::read_to_string(root.join("lint.toml")).expect("lint.toml is readable");
    let cfg = config::parse(&cfg_text).expect("lint.toml parses");

    let files = collect_workspace_files(root).expect("workspace sources readable");
    let stale = stale_suppressions(&files, &cfg);
    assert!(stale.is_empty(), "lint.toml has stale allowlist entries:\n{}", stale.join("\n"));
}
