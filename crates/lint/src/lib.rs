//! `vcsel_lint` — a workspace invariant analyzer.
//!
//! The threaded numerical engine (PRs 2–5) rests on conventions that the
//! compiler cannot check: threaded kernels must hide behind the nnz size
//! gate and `hardware_threads()`, relaxed-atomic scratch writes must carry
//! a written justification, hot loops must stay allocation-free, every
//! `env::var` knob must be documented. This crate turns those conventions
//! into machine-checkable rules over a hand-rolled lexer (no `syn` — the
//! same philosophy as the workspace's `serde_derive` shim), with per-rule
//! allowlists in a committed `lint.toml` where every suppression carries a
//! justification string.
//!
//! Rules (see [`rules`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic_surface`    | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test library code without an allowlist entry |
//! | `threaded_gate`    | every spawn site in `vcsel_numerics` is reachable only behind the size gate + `hardware_threads()` |
//! | `hot_path`         | registered hot functions contain no allocation or clone |
//! | `atomic_ordering`  | every atomic `Ordering::` is `Relaxed` with an adjacent `// ORDER:` justification, or allowlisted |
//! | `env_registry`     | every `env::var("…")` literal appears in the README env table |

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::Path;

use config::Config;
use lexer::{functions, lex, test_mask, FnSpan, Token};

/// A lexed workspace source file plus the derived views rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Raw source lines (for `line_contains` matching and reporting).
    pub lines: Vec<String>,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// Per-token flag: `true` for tokens inside `#[test]`/`#[cfg(test)]`.
    pub mask: Vec<bool>,
    /// Named functions with body token ranges.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes `src` and precomputes the test mask and function spans.
    pub fn parse(path: impl Into<String>, src: &str) -> Self {
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let fns = functions(&tokens);
        Self {
            path: path.into(),
            lines: src.lines().map(str::to_string).collect(),
            tokens,
            mask,
            fns,
        }
    }

    /// The source text of 1-indexed `line`, or `""` past end of file.
    pub fn line_text(&self, line: usize) -> &str {
        line.checked_sub(1).and_then(|l| self.lines.get(l)).map_or("", String::as_str)
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule identifier (`panic_surface`, …) — also the allowlist key.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line (0 for file/config-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Runs every rule over `files` and returns the raw (pre-allowlist)
/// findings, sorted by file then line.
pub fn lint_all(files: &[SourceFile], cfg: &Config, env_doc: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(rules::panic_surface(files));
    out.extend(rules::threaded_gate(files, cfg));
    out.extend(rules::hot_path(files, cfg));
    out.extend(rules::atomic_ordering(files));
    out.extend(rules::env_registry(files, cfg, env_doc));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Splits `findings` into (kept, suppressed) under the allowlist: an entry
/// suppresses a finding when the rule and file match and the finding's
/// source line contains the entry's `line_contains` substring.
pub fn apply_allowlist(
    findings: Vec<Finding>,
    files: &[SourceFile],
    cfg: &Config,
) -> (Vec<Finding>, Vec<Finding>) {
    let line_of = |f: &Finding| -> String {
        files
            .iter()
            .find(|s| s.path == f.file)
            .map(|s| s.line_text(f.line).to_string())
            .unwrap_or_default()
    };
    findings.into_iter().partition(|f| {
        let text = line_of(f);
        !cfg.allow.iter().any(|a| {
            a.rule == f.rule
                && a.file == f.file
                && !text.is_empty()
                && text.contains(&a.line_contains)
        })
    })
}

/// Returns one message per stale allowlist entry: entries whose file is
/// gone or whose `line_contains` no longer matches any source line.
pub fn stale_suppressions(files: &[SourceFile], cfg: &Config) -> Vec<String> {
    let mut out = Vec::new();
    for a in &cfg.allow {
        match files.iter().find(|s| s.path == a.file) {
            None => out.push(format!(
                "stale suppression [allow.{}] for {}: file is not part of the workspace scan",
                a.rule, a.file
            )),
            Some(s) => {
                if !s.lines.iter().any(|l| l.contains(&a.line_contains)) {
                    out.push(format!(
                        "stale suppression [allow.{}] for {}: no line contains `{}`",
                        a.rule, a.file, a.line_contains
                    ));
                }
            }
        }
    }
    out
}

/// Collects the workspace's library sources: `src/**/*.rs` (umbrella crate
/// and its bins) plus `crates/*/src/**/*.rs`. `third_party/` shims and
/// build output are deliberately out of scope.
///
/// # Errors
///
/// Propagates I/O failures other than the top-level directories simply not
/// existing.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_rs(&root.join("src"), root, &mut out)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<_> = fs::read_dir(&crates)?.collect::<io::Result<Vec<_>>>()?;
        dirs.sort_by_key(std::fs::DirEntry::file_name);
        for entry in dirs {
            let p = entry.path();
            if p.is_dir() {
                walk_rs(&p.join("src"), root, &mut out)?;
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = fs::read_to_string(&p)?;
            out.push(SourceFile::parse(rel, &text));
        }
    }
    Ok(())
}

/// Serializes findings as a JSON array (hand-rolled: the crate is
/// dependency-free).
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                esc(&f.message)
            )
        })
        .collect();
    format!("[\n{}\n]", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_requires_rule_file_and_line_match() {
        let files = vec![SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n",
        )];
        let cfg = config::parse(
            "[[allow.panic_surface]]\nfile = \"crates/x/src/lib.rs\"\n\
             line_contains = \"a.unwrap()\"\nreason = \"a is constructed infallibly above\"\n",
        )
        .expect("valid config");
        let findings = rules::panic_surface(&files);
        assert_eq!(findings.len(), 2);
        let (kept, suppressed) = apply_allowlist(findings, &files, &cfg);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 2);
    }

    #[test]
    fn stale_suppressions_are_reported() {
        let files = vec![SourceFile::parse("crates/x/src/lib.rs", "fn f() {}\n")];
        let cfg = config::parse(
            "[[allow.panic_surface]]\nfile = \"crates/x/src/lib.rs\"\n\
             line_contains = \"a.unwrap()\"\nreason = \"kept for the stale-entry self-test\"\n\
             [[allow.panic_surface]]\nfile = \"crates/gone/src/lib.rs\"\n\
             line_contains = \"x\"\nreason = \"kept for the missing-file self-test\"\n",
        )
        .expect("valid config");
        let stale = stale_suppressions(&files, &cfg);
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert!(stale[0].contains("no line contains"));
        assert!(stale[1].contains("not part of the workspace scan"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let f = vec![Finding {
            rule: "panic_surface",
            file: "a \"b\".rs".into(),
            line: 3,
            message: "x\ny".into(),
        }];
        let json = findings_to_json(&f);
        assert!(json.contains("a \\\"b\\\".rs"));
        assert!(json.contains("x\\ny"));
    }
}
