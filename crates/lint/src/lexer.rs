//! A hand-rolled, string/comment/attribute-aware Rust lexer.
//!
//! The rules in this crate need exactly three things a regex over raw
//! source cannot give them: (1) `unwrap()` inside a comment, string or
//! doc example must not count, (2) `#[cfg(test)]` / `#[test]` regions must
//! be excluded from production-code rules, and (3) findings need accurate
//! line numbers. A full parser (syn) would be overkill — the same
//! philosophy as the workspace's `serde_derive` shim, which lexes token
//! streams by hand instead of pulling in syn/quote.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Ordering`, …).
    Ident,
    /// A lifetime such as `'a` (kept distinct so `'a` is never a char).
    Lifetime,
    /// String, raw-string, byte-string or char literal (content dropped
    /// except for plain `"…"` strings, which rules inspect — env names).
    Str,
    /// Numeric literal.
    Number,
    /// Line or block comment, including doc comments. Text retained so
    /// justification markers (`// ORDER: …`) can be found.
    Comment,
    /// Any other single punctuation character.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is the *unquoted* content of
    /// plain `"…"` strings and empty for raw/byte/char literals; for
    /// [`TokKind::Comment`] the full comment text.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: usize,
}

impl Token {
    fn new(kind: TokKind, text: impl Into<String>, line: usize) -> Self {
        Self { kind, text: text.into(), line }
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexes `src` into tokens, never failing: unterminated constructs are
/// closed at end of input (a lint pass must degrade gracefully on code
/// rustc itself would reject).
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (also doc `///` and `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.push(Token::new(TokKind::Comment, b[start..i].iter().collect::<String>(), line));
            continue;
        }
        // Block comments, nested per the Rust grammar.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let (start, start_line) = (i, line);
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 1;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            out.push(Token::new(
                TokKind::Comment,
                b[start..i.min(n)].iter().collect::<String>(),
                start_line,
            ));
            continue;
        }
        // Raw strings r"…" / r#"…"# (and br…), which contain no escapes.
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            j + 1 < n && b[j] == 'r' && (b[j + 1] == '"' || b[j + 1] == '#')
        } {
            let start_line = line;
            while i < n && b[i] != '"' && b[i] != '#' {
                i += 1;
            }
            let mut hashes = 0usize;
            while i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            if i < n && b[i] == '"' {
                i += 1;
                loop {
                    if i >= n {
                        break;
                    }
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    if b[i] == '"' {
                        let mut j = i + 1;
                        let mut seen = 0usize;
                        while j < n && b[j] == '#' && seen < hashes {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            i = j;
                            break;
                        }
                    }
                    i += 1;
                }
                out.push(Token::new(TokKind::Str, "", start_line));
                continue;
            }
            // `r` / `b` not actually starting a raw string: fall through as
            // an identifier from the original position.
        }
        // Plain and byte strings with escapes.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            let content_start = i;
            while i < n && b[i] != '"' {
                if b[i] == '\\' && i + 1 < n {
                    i += 1;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            let content: String = b[content_start..i.min(n)].iter().collect();
            i += 1; // closing quote
            out.push(Token::new(
                TokKind::Str,
                if c == '"' { content } else { String::new() },
                start_line,
            ));
            continue;
        }
        // Lifetimes vs char literals.
        if c == '\'' {
            // 'static, 'a → lifetime: quote + ident-start and NOT closed by
            // a quote right after one ident char (which would be 'x').
            if i + 1 < n && is_ident_start(b[i + 1]) && !(i + 2 < n && b[i + 2] == '\'') {
                let start = i;
                i += 1;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                out.push(Token::new(
                    TokKind::Lifetime,
                    b[start..i].iter().collect::<String>(),
                    line,
                ));
                continue;
            }
            // Char literal, possibly escaped ('\n', '\u{7FFF}', '\'').
            i += 1;
            while i < n && b[i] != '\'' {
                if b[i] == '\\' && i + 1 < n {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            out.push(Token::new(TokKind::Str, "", line));
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.push(Token::new(TokKind::Ident, b[start..i].iter().collect::<String>(), line));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (is_ident_cont(b[i])
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit())
                    || ((b[i] == '+' || b[i] == '-')
                        && i > start
                        && (b[i - 1] == 'e' || b[i - 1] == 'E')))
            {
                i += 1;
            }
            out.push(Token::new(TokKind::Number, b[start..i].iter().collect::<String>(), line));
            continue;
        }
        out.push(Token::new(TokKind::Punct, c, line));
        i += 1;
    }
    out
}

/// Marks every token index that lives inside test-only code: an item
/// annotated `#[test]` or `#[cfg(test)]` (but **not** `#[cfg(not(test))]`),
/// including whole `mod tests { … }` blocks.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && i + 1 < tokens.len()
            && (tokens[i + 1].is_punct('[')
                || (tokens[i + 1].is_punct('!')
                    && i + 2 < tokens.len()
                    && tokens[i + 2].is_punct('[')))
        {
            let bracket = if tokens[i + 1].is_punct('[') { i + 1 } else { i + 2 };
            let (attr_end, is_test) = scan_attribute(tokens, bracket);
            if is_test {
                // Skip trailing attributes/comments, then mark the item.
                let mut j = attr_end;
                loop {
                    j = skip_comments(tokens, j);
                    if j + 1 < tokens.len()
                        && tokens[j].is_punct('#')
                        && tokens[j + 1].is_punct('[')
                    {
                        let (e, _) = scan_attribute(tokens, j + 1);
                        j = e;
                    } else {
                        break;
                    }
                }
                let item_end = item_block_end(tokens, j);
                for m in mask.iter_mut().take(item_end).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans an attribute whose `[` is at `open`; returns (index one past the
/// closing `]`, whether the attribute marks test-only code).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            idents.push(&t.text);
        }
        j += 1;
    }
    let is_test = match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (j, is_test)
}

fn skip_comments(tokens: &[Token], mut j: usize) -> usize {
    while j < tokens.len() && tokens[j].kind == TokKind::Comment {
        j += 1;
    }
    j
}

/// Returns the index one past the annotated item starting at `j`: through
/// the matching `}` of its first top-level brace block, or one past the
/// first top-level `;` for block-less items.
fn item_block_end(tokens: &[Token], j: usize) -> usize {
    let mut k = j;
    let mut paren = 0isize;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 && t.is_punct(';') {
            return k + 1;
        } else if paren == 0 && t.is_punct('{') {
            let mut depth = 0isize;
            while k < tokens.len() {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                k += 1;
            }
            return tokens.len();
        }
        k += 1;
    }
    tokens.len()
}

/// A named function and the token range of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, `{` inclusive to `}` inclusive.
    pub body: (usize, usize),
}

/// Extracts every named `fn` and its body token range (brace matching;
/// trait-declaration signatures without a body are skipped).
pub fn functions(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && i + 1 < tokens.len() && tokens[i + 1].kind == TokKind::Ident
        {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // Walk the signature: the body starts at the first `{` outside
            // any paren/bracket nesting; a `;` there means no body.
            let mut j = i + 2;
            let mut depth = 0isize;
            let mut body = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                } else if depth == 0 && t.is_punct('{') {
                    let open = j;
                    let mut braces = 0isize;
                    while j < tokens.len() {
                        if tokens[j].is_punct('{') {
                            braces += 1;
                        } else if tokens[j].is_punct('}') {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    body = Some((open, j.min(tokens.len() - 1)));
                    break;
                }
                j += 1;
            }
            if let Some(body) = body {
                out.push(FnSpan { name, line, body });
            }
            i = j.max(i + 2);
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_not_code() {
        let toks = lex("let a = \"unwrap()\"; // unwrap()\n/* panic! */ b.unwrap();");
        let idents: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["let", "a", "b", "unwrap"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Comment).count(), 2);
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let toks = lex("r#\"x \"quoted\" unwrap()\"# 'a' '\\n' &'static str foo::<'b>()");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("quoted")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str && t.text.is_empty()).count(),
            3,
            "raw string + two char literals"
        );
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("a\n\nb /* c\nd */ e");
        let find = |s: &str| toks.iter().find(|t| t.is_ident(s)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("e"), Some(4));
    }

    #[test]
    fn string_content_is_kept_for_plain_strings() {
        let toks = lex("env::var(\"VCSEL_THREADS\")");
        let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("string token");
        assert_eq!(s.text, "VCSEL_THREADS");
    }

    #[test]
    fn test_mask_covers_cfg_test_mod_but_not_cfg_not_test() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(not(test))] fn also_live() { y.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn helper() { z.unwrap(); }\n}\n";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let masked: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, &m)| m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"helper"));
        assert!(masked.contains(&"z"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"also_live"));
        assert!(!masked.contains(&"y"));
    }

    #[test]
    fn test_attribute_on_fn_masks_only_that_fn() {
        let src = "#[test]\nfn a_test() { x.unwrap(); }\nfn real() { y.unwrap(); }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let live: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, &m)| !m && t.kind == TokKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(live.contains(&"real"));
        assert!(live.contains(&"y"));
        assert!(!live.contains(&"a_test"));
    }

    #[test]
    fn functions_map_names_to_body_ranges() {
        let src = "fn outer(a: &[u8]) -> usize { inner(); a.len() }\n\
                   trait T { fn decl(&self); }\n\
                   fn inner() {}";
        let toks = lex(src);
        let fns = functions(&toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &fns[0];
        assert!(toks[outer.body.0].is_punct('{') && toks[outer.body.1].is_punct('}'));
        let body: Vec<&str> = toks[outer.body.0..=outer.body.1]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(body.contains(&"inner"));
    }
}
