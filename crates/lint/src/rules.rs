//! The five workspace rules.
//!
//! Every rule walks lexed tokens (never raw text), skips test-masked
//! regions where the invariant is production-only, and emits [`Finding`]s
//! that the engine then filters through the `lint.toml` allowlist.

use crate::config::Config;
use crate::lexer::{FnSpan, TokKind, Token};
use crate::{Finding, SourceFile};

/// Atomic memory-ordering variants (so `std::cmp::Ordering::Less` and
/// friends are never audited).
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn finding(rule: &'static str, file: &str, line: usize, message: String) -> Finding {
    Finding { rule, file: file.to_string(), line, message }
}

/// Whether `tokens[i]`, `tokens[i+1]` form `ident "("`.
fn ident_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name) && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Whether `tokens[i..]` starts with `first :: second`.
fn path_pair(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    tokens[i].is_ident(first)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(second))
}

/// Rule 1 — **panic-surface**: `unwrap()` / `expect(` / `panic!` /
/// `unreachable!` in non-test library code requires an allowlist entry
/// with a justification. Binary entry points (`src/bin/`) are exempt: a
/// CLI aborting on bad input is policy, not a library invariant.
pub fn panic_surface(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in files {
        if sf.path.contains("/bin/") {
            continue;
        }
        for (i, t) in sf.tokens.iter().enumerate() {
            if sf.mask[i] || t.kind != TokKind::Ident {
                continue;
            }
            let what = if ident_call(&sf.tokens, i, "unwrap") {
                Some("unwrap()")
            } else if ident_call(&sf.tokens, i, "expect") {
                Some("expect(…)")
            } else if t.is_ident("panic") && sf.tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                Some("panic!")
            } else if t.is_ident("unreachable")
                && sf.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                Some("unreachable!")
            } else {
                None
            };
            if let Some(what) = what {
                out.push(finding(
                    "panic_surface",
                    &sf.path,
                    t.line,
                    format!(
                        "`{what}` in non-test library code — return a typed error, or add a \
                         justified lint.toml allowlist entry"
                    ),
                ));
            }
        }
    }
    out
}

/// Innermost function span containing token index `i`.
fn enclosing_fn(fns: &[FnSpan], i: usize) -> Option<&FnSpan> {
    fns.iter().filter(|f| f.body.0 <= i && i <= f.body.1).max_by_key(|f| f.body.0)
}

/// Whether the body of `span` mentions any identifier in `names`.
fn body_mentions(sf: &SourceFile, span: &FnSpan, names: &[&str]) -> bool {
    sf.tokens[span.body.0..=span.body.1]
        .iter()
        .any(|t| t.kind == TokKind::Ident && names.iter().any(|n| t.text == *n))
}

/// Rule 2 — **threaded-gate conformance**: every spawn site under the
/// configured path (`crates/numerics/src`) must be reachable only behind
/// the size gates (`PARALLEL_*_THRESHOLD`) and `hardware_threads()`.
///
/// A spawn site passes when its enclosing function references a gate
/// (constant, gate function, or a configured gate *predicate* such as
/// `wants_parallel`), or when every non-test caller of that function does.
/// Gate predicates are themselves verified each run to reference a gate,
/// so the indirection cannot go stale.
pub fn threaded_gate(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let scoped: Vec<&SourceFile> =
        files.iter().filter(|s| s.path.starts_with(&cfg.threaded_gate_path)).collect();
    let gate_names: Vec<&str> = cfg
        .gate_consts
        .iter()
        .chain(&cfg.gate_fns)
        .chain(&cfg.gate_predicates)
        .map(String::as_str)
        .collect();

    // Verify the predicates really encapsulate a gate.
    for pred in &cfg.gate_predicates {
        let mut seen = false;
        for sf in &scoped {
            for f in sf.fns.iter().filter(|f| f.name == *pred) {
                seen = true;
                if !body_mentions(sf, f, &gate_names) {
                    out.push(finding(
                        "threaded_gate",
                        &sf.path,
                        f.line,
                        format!(
                            "gate predicate `{pred}` (lint.toml) does not reference any gate \
                             constant or gate function"
                        ),
                    ));
                }
            }
        }
        if !seen {
            out.push(finding(
                "threaded_gate",
                "lint.toml",
                0,
                format!(
                    "gate predicate `{pred}` matches no function under {}",
                    cfg.threaded_gate_path
                ),
            ));
        }
    }

    for sf in &scoped {
        // One finding per ungated enclosing function, at its first spawn.
        let mut flagged: Vec<(usize, usize)> = Vec::new();
        for (i, t) in sf.tokens.iter().enumerate() {
            if sf.mask[i] || !ident_call(&sf.tokens, i, "spawn") {
                continue;
            }
            let Some(owner) = enclosing_fn(&sf.fns, i) else {
                out.push(finding(
                    "threaded_gate",
                    &sf.path,
                    t.line,
                    "spawn site outside any function body".to_string(),
                ));
                continue;
            };
            if flagged.contains(&owner.body) {
                continue;
            }
            flagged.push(owner.body);
            if body_mentions(sf, owner, &gate_names) {
                continue;
            }
            // One-level caller analysis: all non-test callers must gate.
            let mut callers = 0usize;
            let mut ungated_caller: Option<String> = None;
            for other in &scoped {
                for g in &other.fns {
                    if (other.path == sf.path && g.body == owner.body)
                        || other.mask.get(g.body.0) == Some(&true)
                    {
                        continue;
                    }
                    let calls =
                        other.tokens[g.body.0..=g.body.1].iter().any(|t| t.is_ident(&owner.name));
                    if calls {
                        callers += 1;
                        if !body_mentions(other, g, &gate_names) {
                            ungated_caller
                                .get_or_insert_with(|| format!("{}::{}", other.path, g.name));
                        }
                    }
                }
            }
            if callers == 0 || ungated_caller.is_some() {
                let via = match ungated_caller {
                    Some(c) => format!("caller `{c}` does not apply the gate"),
                    None => "no caller found to verify the gate".to_string(),
                };
                out.push(finding(
                    "threaded_gate",
                    &sf.path,
                    t.line,
                    format!(
                        "spawn in `{}` is not behind a size gate ({}) or `{}()`: {via}",
                        owner.name,
                        cfg.gate_consts.join("/"),
                        cfg.gate_fns.join("/"),
                    ),
                ));
            }
        }
    }
    out
}

/// Rule 3 — **hot-path allocation**: functions registered in `lint.toml`
/// (`[[hot_path.functions]]`) must contain no allocation, clone, or
/// string construction. Registrations that no longer match a function are
/// findings too, so the set cannot rot.
pub fn hot_path(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for reg in &cfg.hot_path_fns {
        let Some(sf) = files.iter().find(|s| s.path == reg.file) else {
            out.push(finding(
                "hot_path",
                &reg.file,
                0,
                format!("stale hot-path registration: `{}` is not in the workspace scan", reg.file),
            ));
            continue;
        };
        let spans: Vec<&FnSpan> = sf.fns.iter().filter(|f| f.name == reg.name).collect();
        if spans.is_empty() {
            out.push(finding(
                "hot_path",
                &sf.path,
                0,
                format!("stale hot-path registration: no `fn {}` in this file", reg.name),
            ));
            continue;
        }
        for span in spans {
            for (off, t) in sf.tokens[span.body.0..=span.body.1].iter().enumerate() {
                let i = span.body.0 + off;
                if t.kind != TokKind::Ident {
                    continue;
                }
                let next = sf.tokens.get(i + 1);
                let what = match t.text.as_str() {
                    "vec" | "format" if next.is_some_and(|n| n.is_punct('!')) => {
                        Some(format!("{}!", t.text))
                    }
                    "Vec"
                        if path_pair(&sf.tokens, i, "Vec", "new")
                            || path_pair(&sf.tokens, i, "Vec", "with_capacity")
                            || path_pair(&sf.tokens, i, "Vec", "from") =>
                    {
                        Some(format!("Vec::{}", sf.tokens[i + 3].text))
                    }
                    "Box" if path_pair(&sf.tokens, i, "Box", "new") => Some("Box::new".into()),
                    "String"
                        if path_pair(&sf.tokens, i, "String", "new")
                            || path_pair(&sf.tokens, i, "String", "from")
                            || path_pair(&sf.tokens, i, "String", "with_capacity") =>
                    {
                        Some(format!("String::{}", sf.tokens[i + 3].text))
                    }
                    "clone" | "to_vec" | "to_string" | "to_owned"
                        if next.is_some_and(|n| n.is_punct('(')) =>
                    {
                        Some(format!(".{}()", t.text))
                    }
                    // `collect` may take a turbofish before the parens.
                    "collect" if next.is_some_and(|n| n.is_punct('(') || n.is_punct(':')) => {
                        Some(".collect()".into())
                    }
                    _ => None,
                };
                if let Some(what) = what {
                    out.push(finding(
                        "hot_path",
                        &sf.path,
                        t.line,
                        format!(
                            "hot-path fn `{}` allocates via `{what}` — hoist the allocation to \
                             setup or use a preallocated scratch buffer",
                            reg.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Rule 4 — **atomic-ordering audit**: every atomic `Ordering::X` must be
/// `Relaxed` and carry an adjacent `// ORDER: …` justification (same line
/// or the line above). Stronger orderings (`Acquire`/`Release`/`AcqRel`/
/// `SeqCst`) always require an allowlist entry naming why. `std::cmp::
/// Ordering` variants are not audited.
pub fn atomic_ordering(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in files {
        let comment_lines: Vec<usize> =
            sf.tokens.iter().filter(|t| t.kind == TokKind::Comment).map(|t| t.line).collect();
        let order_lines: Vec<usize> = sf
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Comment && t.text.contains("ORDER:"))
            .map(|t| t.line)
            .collect();
        // A use on line T is justified by an `// ORDER:` on T itself or
        // anywhere in the contiguous comment block ending at T - 1.
        let justified = |target: usize| -> bool {
            if order_lines.contains(&target) {
                return true;
            }
            let mut l = target.saturating_sub(1);
            while l > 0 && comment_lines.contains(&l) {
                if order_lines.contains(&l) {
                    return true;
                }
                l -= 1;
            }
            false
        };
        for (i, t) in sf.tokens.iter().enumerate() {
            if sf.mask[i] || !t.is_ident("Ordering") {
                continue;
            }
            let Some(variant) =
                ATOMIC_ORDERINGS.iter().find(|v| path_pair(&sf.tokens, i, "Ordering", v))
            else {
                continue;
            };
            if *variant == "Relaxed" {
                if !justified(t.line) {
                    out.push(finding(
                        "atomic_ordering",
                        &sf.path,
                        t.line,
                        "Ordering::Relaxed without an adjacent `// ORDER:` justification comment"
                            .to_string(),
                    ));
                }
            } else {
                out.push(finding(
                    "atomic_ordering",
                    &sf.path,
                    t.line,
                    format!(
                        "non-relaxed atomic ordering `Ordering::{variant}` requires a lint.toml \
                         allowlist entry explaining the required synchronization"
                    ),
                ));
            }
        }
    }
    out
}

/// Rule 5 — **env-var registry**: every `env::var("NAME")` literal in the
/// workspace must appear backtick-quoted in the README env table
/// (`env_doc`), so knobs cannot drift undocumented.
pub fn env_registry(files: &[SourceFile], cfg: &Config, env_doc: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in files {
        for (i, t) in sf.tokens.iter().enumerate() {
            if !(path_pair(&sf.tokens, i, "env", "var")
                || path_pair(&sf.tokens, i, "env", "var_os"))
            {
                continue;
            }
            // env :: var ( "NAME"  — the string may be absent (dynamic name).
            let Some(arg) = sf.tokens.get(i + 5) else { continue };
            if !sf.tokens[i + 4].is_punct('(') || arg.kind != TokKind::Str {
                continue;
            }
            let name = &arg.text;
            if name.is_empty() {
                continue;
            }
            // Table rows document knobs as `NAME` or `NAME=<value>`.
            let documented =
                env_doc.contains(&format!("`{name}`")) || env_doc.contains(&format!("`{name}="));
            if !documented {
                out.push(finding(
                    "env_registry",
                    &sf.path,
                    t.line,
                    format!(
                        "env var `{name}` is read here but missing from the `{}` env table",
                        cfg.env_registry_doc
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn sf(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    fn gate_cfg() -> Config {
        config::parse(
            "[threaded_gate]\npath = \"crates/numerics/src\"\n\
             gate_consts = [\"PARALLEL_NNZ_THRESHOLD\"]\n\
             gate_fns = [\"hardware_threads\"]\n\
             gate_predicates = [\"wants_parallel\"]\n\
             [env_registry]\ndoc = \"README.md\"\n",
        )
        .expect("valid fixture config")
    }

    // ---- rule 1: panic_surface -------------------------------------------

    #[test]
    fn panic_surface_fires_on_each_macro_and_method() {
        let f = sf(
            "crates/x/src/lib.rs",
            "fn f() { a.unwrap(); b.expect(\"m\"); panic!(\"x\"); unreachable!(); }",
        );
        let got = panic_surface(&[f]);
        assert_eq!(got.len(), 4, "{got:?}");
    }

    #[test]
    fn panic_surface_passes_tests_strings_comments_and_bins() {
        let clean = sf(
            "crates/x/src/lib.rs",
            "// a.unwrap()\nfn f() { let s = \"panic!\"; g(s); }\n\
             #[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n",
        );
        let bin = sf("src/bin/tool.rs", "fn main() { run().unwrap(); }");
        assert!(panic_surface(&[clean, bin]).is_empty());
    }

    // ---- rule 2: threaded_gate -------------------------------------------

    #[test]
    fn threaded_gate_fires_on_ungated_spawn() {
        let f = sf(
            "crates/numerics/src/bad.rs",
            "fn wants_parallel() -> bool { hardware_threads() > 1 }\n\
             fn rogue(s: &S) { std::thread::scope(|t| { t.spawn(|| work()); }); }",
        );
        let got = threaded_gate(&[f], &gate_cfg());
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("rogue"));
    }

    #[test]
    fn threaded_gate_passes_direct_and_caller_level_gates() {
        let direct = sf(
            "crates/numerics/src/a.rs",
            "fn gated() { if nnz >= PARALLEL_NNZ_THRESHOLD { \
             std::thread::scope(|t| { t.spawn(|| w()); }); } }",
        );
        let split = sf(
            "crates/numerics/src/b.rs",
            "fn driver() { if hardware_threads() > 1 { kernel(); } }\n\
             fn kernel() { std::thread::scope(|t| { t.spawn(|| w()); }); }\n\
             fn wants_parallel() -> bool { hardware_threads() > 1 }\n",
        );
        let got = threaded_gate(&[direct, split], &gate_cfg());
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn threaded_gate_fires_when_any_caller_skips_the_gate() {
        let f = sf(
            "crates/numerics/src/c.rs",
            "fn good() { if hardware_threads() > 1 { kernel(); } }\n\
             fn bad() { kernel(); }\n\
             fn kernel() { std::thread::scope(|t| { t.spawn(|| w()); }); }\n\
             fn wants_parallel() -> bool { hardware_threads() > 1 }\n",
        );
        let got = threaded_gate(&[f], &gate_cfg());
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("bad"), "{got:?}");
    }

    #[test]
    fn threaded_gate_verifies_predicates_reference_a_gate() {
        let f = sf(
            "crates/numerics/src/d.rs",
            "fn wants_parallel() -> bool { true }\n\
             fn apply() { if wants_parallel() { std::thread::scope(|t| { t.spawn(|| w()); }); } }\n",
        );
        let got = threaded_gate(&[f], &gate_cfg());
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("gate predicate"), "{got:?}");
    }

    #[test]
    fn threaded_gate_ignores_files_outside_scope_and_test_spawns() {
        let outside = sf(
            "crates/thermal/src/x.rs",
            "fn rogue() { std::thread::scope(|t| { t.spawn(|| w()); }); }",
        );
        let test_only = sf(
            "crates/numerics/src/e.rs",
            "fn wants_parallel() -> bool { hardware_threads() > 1 }\n\
             #[cfg(test)]\nmod tests { fn t() { std::thread::scope(|s| { s.spawn(|| w()); }); } }\n",
        );
        let got = threaded_gate(&[outside, test_only], &gate_cfg());
        assert!(got.is_empty(), "{got:?}");
    }

    // ---- rule 3: hot_path ------------------------------------------------

    fn hot_cfg(file: &str, name: &str) -> Config {
        config::parse(&format!("[[hot_path.functions]]\nfile = \"{file}\"\nname = \"{name}\"\n"))
            .expect("valid fixture config")
    }

    #[test]
    fn hot_path_fires_on_every_allocation_kind() {
        let src = "fn hot(v: &[f64]) -> f64 {\n\
                   let a = Vec::new();\n\
                   let b = vec![0.0; 4];\n\
                   let c = v.to_vec();\n\
                   let d = c.clone();\n\
                   let e: Vec<f64> = d.iter().copied().collect();\n\
                   let f = Box::new(e);\n\
                   let g = format!(\"{}\", f.len());\n\
                   let h = String::from(\"x\");\n\
                   a.len() as f64\n}";
        let f = sf("crates/numerics/src/k.rs", src);
        let got = hot_path(&[f], &hot_cfg("crates/numerics/src/k.rs", "hot"));
        assert_eq!(got.len(), 8, "{got:?}");
    }

    #[test]
    fn hot_path_passes_clean_kernels_and_ignores_unregistered_fns() {
        let src = "fn hot(y: &mut [f64], x: &[f64]) { for (o, i) in y.iter_mut().zip(x) \
                   { *o += *i; } }\nfn setup() -> Vec<f64> { vec![0.0; 8] }";
        let f = sf("crates/numerics/src/k.rs", src);
        let got = hot_path(&[f], &hot_cfg("crates/numerics/src/k.rs", "hot"));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn hot_path_flags_stale_registrations() {
        let f = sf("crates/numerics/src/k.rs", "fn other() {}");
        let missing_fn = hot_path(&[f], &hot_cfg("crates/numerics/src/k.rs", "gone"));
        assert_eq!(missing_fn.len(), 1);
        assert!(missing_fn[0].message.contains("stale"));
        let missing_file = hot_path(&[], &hot_cfg("crates/numerics/src/gone.rs", "hot"));
        assert_eq!(missing_file.len(), 1);
        assert!(missing_file[0].message.contains("stale"));
    }

    // ---- rule 4: atomic_ordering -----------------------------------------

    #[test]
    fn atomic_ordering_requires_order_comment_on_relaxed() {
        let f = sf(
            "crates/numerics/src/a.rs",
            "fn f(x: &AtomicU64) { x.store(1, Ordering::Relaxed); }",
        );
        let got = atomic_ordering(&[f]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("ORDER:"));
    }

    #[test]
    fn atomic_ordering_accepts_adjacent_justifications() {
        let f = sf(
            "crates/numerics/src/a.rs",
            "fn f(x: &AtomicU64) {\n\
             // ORDER: slots are disjoint per worker; the barrier publishes.\n\
             x.store(1, Ordering::Relaxed);\n\
             x.load(Ordering::Relaxed); // ORDER: same-thread readback.\n\
             // ORDER: a multi-line justification whose marker sits on the\n\
             // first line of the comment block still counts.\n\
             x.store(2, Ordering::Relaxed);\n}",
        );
        let got = atomic_ordering(&[f]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn atomic_ordering_flags_stronger_orderings_and_skips_cmp() {
        let f = sf(
            "crates/numerics/src/a.rs",
            "fn f(x: &AtomicUsize) -> Ordering { x.fetch_add(1, Ordering::AcqRel); \
             Ordering::Less }",
        );
        let got = atomic_ordering(&[f]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("AcqRel"));
    }

    // ---- rule 5: env_registry --------------------------------------------

    #[test]
    fn env_registry_fires_on_undocumented_and_passes_documented() {
        let f = sf(
            "crates/x/src/lib.rs",
            "fn f() { let _ = std::env::var(\"DOCUMENTED\"); \
             let _ = std::env::var(\"WITH_VALUE\"); \
             let _ = std::env::var(\"MYSTERY_KNOB\"); }",
        );
        let cfg = config::parse("[env_registry]\ndoc = \"README.md\"\n").expect("valid");
        let doc = "| `DOCUMENTED` | documented knob |\n| `WITH_VALUE=<n>` | documented knob |";
        let got = env_registry(&[f], &cfg, doc);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("MYSTERY_KNOB"));
    }
}
