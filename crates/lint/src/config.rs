//! `lint.toml` — rule configuration and per-rule allowlists.
//!
//! Parsed by a deliberately small hand-rolled TOML-subset reader (the
//! workspace builds offline and dependency-free): tables `[a.b]`, arrays
//! of tables `[[a.b]]`, `key = "string"`, `key = ["array", "of",
//! "strings"]`, and `#` comments. That subset is the whole
//! format of `lint.toml`; anything else is a hard error so drift in the
//! file surfaces immediately instead of being silently ignored.

use std::collections::BTreeMap;

/// One allowlist entry: suppresses findings of `rule` in `file` on lines
/// containing `line_contains`. The `reason` is mandatory — an allowlist
/// entry without a justification is itself a lint error.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    /// Rule the suppression applies to (`panic_surface`, …).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Substring the offending source line must contain.
    pub line_contains: String,
    /// Why this site is allowed to violate the rule.
    pub reason: String,
}

/// A hot-path function registration: `name` in `file` must stay
/// allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub struct HotPathFn {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Function name (every function of that name in the file is checked).
    pub name: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory prefix the threaded-gate rule scans.
    pub threaded_gate_path: String,
    /// Constants that act as size gates (`PARALLEL_NNZ_THRESHOLD`, …).
    pub gate_consts: Vec<String>,
    /// Functions that act as worker-count sources (`hardware_threads`).
    pub gate_fns: Vec<String>,
    /// Functions that *encapsulate* the gate. Each must itself reference a
    /// gate constant — verified every run, so the list cannot go stale.
    pub gate_predicates: Vec<String>,
    /// Functions whose bodies must stay allocation-free.
    pub hot_path_fns: Vec<HotPathFn>,
    /// Path of the env-var registry document (the README table).
    pub env_registry_doc: String,
    /// All allowlist entries, keyed by rule at lookup time.
    pub allow: Vec<AllowEntry>,
}

/// A configuration-file problem (syntax or semantic), with its line.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// 1-indexed line in `lint.toml`.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// One `key = value` binding in the subset grammar.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    List(Vec<String>),
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

/// Unquotes a `"…"` literal supporting the escapes TOML basic strings
/// share with Rust (`\\`, `\"`, `\n`, `\t`).
fn unquote(raw: &str, line: usize) -> Result<String, ConfigError> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{raw}`")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => return Err(err(line, "dangling escape in string")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Splits a `["a", "b"]` literal into its elements.
fn parse_list(raw: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let inner = raw
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [\"…\", …], got `{raw}`")))?;
    let mut out = Vec::new();
    let chars: Vec<char> = inner.chars().collect();
    let mut i = 0;
    loop {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() {
            break;
        }
        if chars[i] != '"' {
            return Err(err(line, format!("expected a quoted list element, found `{}`", chars[i])));
        }
        // Find the closing quote, honouring escapes.
        let start = i;
        i += 1;
        while i < chars.len() && chars[i] != '"' {
            if chars[i] == '\\' {
                i += 1;
            }
            i += 1;
        }
        if i >= chars.len() {
            return Err(err(line, "unterminated string in list"));
        }
        let elem: String = chars[start..=i].iter().collect();
        out.push(unquote(&elem, line)?);
        i += 1;
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i < chars.len() {
            if chars[i] != ',' {
                return Err(err(line, "expected `,` between list elements"));
            }
            i += 1;
        }
    }
    Ok(out)
}

/// Key/value lines grouped under one table header: key → (value, line).
type TableKeys = BTreeMap<String, (Value, usize)>;

/// Parses the `lint.toml` text into a [`Config`].
///
/// # Errors
///
/// Returns the first syntax or semantic problem (unknown table/key, entry
/// missing a mandatory field, empty `reason`, …) with its line number.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    // Pass 1: group `key = value` lines under their table headers.
    let mut tables: Vec<(String, usize, TableKeys)> = Vec::new();
    let mut current: Option<usize> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            tables.push((format!("[[{}]]", header.trim()), lineno, BTreeMap::new()));
            current = Some(tables.len() - 1);
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            tables.push((format!("[{}]", header.trim()), lineno, BTreeMap::new()));
            current = Some(tables.len() - 1);
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
        let (key, value) = (key.trim(), value.trim());
        // Strip a trailing comment outside of strings: scan for `#` not
        // inside quotes.
        let mut in_str = false;
        let mut escaped = false;
        let mut cut = value.len();
        for (i, c) in value.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '#' if !in_str => {
                    cut = i;
                    break;
                }
                _ => {}
            }
        }
        let value = value[..cut].trim();
        let parsed = if value.starts_with('[') {
            Value::List(parse_list(value, lineno)?)
        } else {
            Value::Str(unquote(value, lineno)?)
        };
        let slot = current.ok_or_else(|| err(lineno, "key before any table header"))?;
        tables[slot].2.insert(key.to_string(), (parsed, lineno));
    }

    // Pass 2: interpret the grouped tables.
    let mut cfg = Config::default();
    for (header, hline, keys) in tables {
        let get_str = |keys: &TableKeys, k: &str| -> Result<String, ConfigError> {
            match keys.get(k) {
                Some((Value::Str(s), _)) => Ok(s.clone()),
                Some((Value::List(_), l)) => Err(err(*l, format!("`{k}` must be a string"))),
                None => Err(err(hline, format!("{header} entry is missing `{k}`"))),
            }
        };
        let get_list = |keys: &TableKeys, k: &str| -> Result<Vec<String>, ConfigError> {
            match keys.get(k) {
                Some((Value::List(v), _)) => Ok(v.clone()),
                Some((Value::Str(_), l)) => Err(err(*l, format!("`{k}` must be a list"))),
                None => Err(err(hline, format!("{header} entry is missing `{k}`"))),
            }
        };
        match header.as_str() {
            "[threaded_gate]" => {
                cfg.threaded_gate_path = get_str(&keys, "path")?;
                cfg.gate_consts = get_list(&keys, "gate_consts")?;
                cfg.gate_fns = get_list(&keys, "gate_fns")?;
                cfg.gate_predicates = get_list(&keys, "gate_predicates")?;
            }
            "[env_registry]" => {
                cfg.env_registry_doc = get_str(&keys, "doc")?;
            }
            "[[hot_path.functions]]" => {
                cfg.hot_path_fns.push(HotPathFn {
                    file: get_str(&keys, "file")?,
                    name: get_str(&keys, "name")?,
                });
            }
            h if h.starts_with("[[allow.") && h.ends_with("]]") => {
                let rule = h["[[allow.".len()..h.len() - 2].to_string();
                let entry = AllowEntry {
                    rule,
                    file: get_str(&keys, "file")?,
                    line_contains: get_str(&keys, "line_contains")?,
                    reason: get_str(&keys, "reason")?,
                };
                if entry.reason.trim().len() < 10 {
                    return Err(err(
                        hline,
                        format!(
                            "allowlist entry for {} needs a real justification (≥ 10 chars), got \
                             `{}`",
                            entry.file, entry.reason
                        ),
                    ));
                }
                if entry.line_contains.trim().is_empty() {
                    return Err(err(hline, "allowlist `line_contains` must be non-empty"));
                }
                cfg.allow.push(entry);
            }
            other => return Err(err(hline, format!("unknown table {other}"))),
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[threaded_gate]
path = "crates/numerics/src"
gate_consts = ["PARALLEL_NNZ_THRESHOLD", "PARALLEL_LEN_THRESHOLD"]
gate_fns = ["hardware_threads"]
gate_predicates = ["wants_parallel"]

[env_registry]
doc = "README.md"  # trailing comment

[[hot_path.functions]]
file = "crates/numerics/src/solver.rs"
name = "preconditioned_cg"

[[allow.panic_surface]]
file = "crates/a/src/x.rs"
line_contains = ".expect(\"non-empty\")"
reason = "slice is built three lines above with fixed length"
"##;

    #[test]
    fn parses_the_full_shape() {
        let cfg = parse(SAMPLE).expect("parses");
        assert_eq!(cfg.threaded_gate_path, "crates/numerics/src");
        assert_eq!(cfg.gate_consts.len(), 2);
        assert_eq!(cfg.gate_fns, vec!["hardware_threads"]);
        assert_eq!(cfg.hot_path_fns.len(), 1);
        assert_eq!(cfg.hot_path_fns[0].name, "preconditioned_cg");
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].rule, "panic_surface");
        assert_eq!(cfg.allow[0].line_contains, ".expect(\"non-empty\")");
    }

    #[test]
    fn rejects_missing_reason() {
        let bad = "[[allow.panic_surface]]\nfile = \"a.rs\"\nline_contains = \"x\"\n";
        let e = parse(bad).expect_err("must reject");
        assert!(e.message.contains("missing `reason`"), "{e}");
    }

    #[test]
    fn rejects_trivial_reason() {
        let bad =
            "[[allow.panic_surface]]\nfile = \"a.rs\"\nline_contains = \"x\"\nreason = \"ok\"\n";
        let e = parse(bad).expect_err("must reject");
        assert!(e.message.contains("justification"), "{e}");
    }

    #[test]
    fn rejects_unknown_tables_and_bare_keys() {
        assert!(parse("[mystery]\nx = \"y\"\n").is_err());
        assert!(parse("x = \"y\"\n").is_err());
        assert!(parse("[env_registry]\ndoc = [\"a\"]\n").is_err());
    }
}
