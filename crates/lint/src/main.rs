//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! cargo run -p vcsel_lint -- --check               # CI gate: fail on findings
//! cargo run -p vcsel_lint -- --check-suppressions  # fail on stale allowlist entries
//! cargo run -p vcsel_lint -- --json                # unallowlisted findings as JSON
//! ```
//!
//! All modes accept `--root <dir>` to override the workspace root (default:
//! two levels above this crate's manifest, i.e. the repository root).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vcsel_lint::{
    apply_allowlist, collect_workspace_files, config, findings_to_json, lint_all,
    stale_suppressions,
};

enum Mode {
    Check,
    CheckSuppressions,
    Json,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vcsel_lint [--root <dir>] (--check | --check-suppressions | --json)\n\
         \n\
         --check               run all rules, fail on any unallowlisted finding\n\
         --check-suppressions  fail if any lint.toml allowlist entry no longer\n\
         \u{20}                     matches a real source line\n\
         --json                print unallowlisted findings as a JSON array"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut mode = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Some(Mode::Check),
            "--check-suppressions" => mode = Some(Mode::CheckSuppressions),
            "--json" => mode = Some(Mode::Json),
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(mode) = mode else {
        return usage();
    };
    let root = root.unwrap_or_else(|| {
        // crates/lint → crates → workspace root.
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        manifest.parent().and_then(Path::parent).unwrap_or(manifest).to_path_buf()
    });
    match run(&mode, &root) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("vcsel_lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(mode: &Mode, root: &Path) -> Result<ExitCode, String> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&cfg_text).map_err(|e| e.to_string())?;
    let files = collect_workspace_files(root).map_err(|e| format!("workspace scan: {e}"))?;
    if files.is_empty() {
        return Err(format!("no sources found under {}", root.display()));
    }

    if matches!(mode, Mode::CheckSuppressions) {
        let stale = stale_suppressions(&files, &cfg);
        return if stale.is_empty() {
            println!(
                "vcsel_lint: all {} allowlist entries match a live source line",
                cfg.allow.len()
            );
            Ok(ExitCode::SUCCESS)
        } else {
            for s in &stale {
                eprintln!("{s}");
            }
            eprintln!("vcsel_lint: {} stale suppression(s) — prune lint.toml", stale.len());
            Ok(ExitCode::FAILURE)
        };
    }

    let env_doc_path = root.join(&cfg.env_registry_doc);
    let env_doc = std::fs::read_to_string(&env_doc_path)
        .map_err(|e| format!("cannot read {}: {e}", env_doc_path.display()))?;
    let findings = lint_all(&files, &cfg, &env_doc);
    let (kept, suppressed) = apply_allowlist(findings, &files, &cfg);

    match mode {
        Mode::Json => {
            println!("{}", findings_to_json(&kept));
            Ok(if kept.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        Mode::Check | Mode::CheckSuppressions => {
            for f in &kept {
                println!("{f}");
            }
            if kept.is_empty() {
                println!(
                    "vcsel_lint: {} file(s) clean across 5 rules ({} finding(s) allowlisted)",
                    files.len(),
                    suppressed.len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!(
                    "vcsel_lint: {} unallowlisted finding(s); fix them or add a justified \
                     entry to lint.toml",
                    kept.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
    }
}
