//! One-dimensional compact (resistance-network) thermal model.
//!
//! For early design-space scoping — before committing to a full FVM solve —
//! a package stack can be collapsed into series thermal resistances:
//! `R_layer = t / (k·A)` plus a convective term `1/(h·A)`. The paper uses
//! full simulations for its results; this model is the quick sanity check an
//! engineer runs first, and our tests use it to cross-validate the FVM
//! solver in the 1-D limit.

use vcsel_units::{Celsius, KelvinPerWatt, Meters, SquareMeters, Watts, WattsPerSquareMeterKelvin};

use crate::{Material, ThermalError};

/// One layer of a 1-D stack.
#[derive(Debug, Clone, PartialEq)]
pub struct StackLayer {
    name: String,
    thickness: Meters,
    material: Material,
}

impl StackLayer {
    /// Creates a layer.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] for a non-positive thickness.
    pub fn new(
        name: impl Into<String>,
        thickness: Meters,
        material: Material,
    ) -> Result<Self, ThermalError> {
        if !(thickness.value() > 0.0) || !thickness.value().is_finite() {
            return Err(ThermalError::BadParameter {
                reason: format!("layer thickness must be positive, got {thickness}"),
            });
        }
        Ok(Self { name: name.into(), thickness, material })
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer thickness.
    pub fn thickness(&self) -> Meters {
        self.thickness
    }

    /// Layer material.
    pub fn material(&self) -> &Material {
        &self.material
    }
}

/// A 1-D series resistance stack: heat enters at the bottom layer and
/// leaves through a convective interface above the top layer.
///
/// # Example
///
/// ```
/// use vcsel_thermal::{Material, ResistanceStack, StackLayer};
/// use vcsel_units::{Celsius, Meters, SquareMeters, Watts, WattsPerSquareMeterKelvin};
///
/// let stack = ResistanceStack::new(
///     SquareMeters::new(567e-6), // ~SCC die area
///     vec![
///         StackLayer::new("silicon", Meters::from_micrometers(50.0), Material::SILICON)?,
///         StackLayer::new("TIM", Meters::from_micrometers(75.0), Material::TIM)?,
///         StackLayer::new("lid", Meters::from_millimeters(2.0), Material::COPPER)?,
///     ],
///     WattsPerSquareMeterKelvin::new(750.0),
///     Celsius::new(40.0),
/// )?;
/// let junction = stack.source_temperature(Watts::new(25.0));
/// assert!(junction > Celsius::new(40.0));
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResistanceStack {
    area: SquareMeters,
    layers: Vec<StackLayer>,
    h: WattsPerSquareMeterKelvin,
    ambient: Celsius,
}

impl ResistanceStack {
    /// Creates a stack with cross-section `area`, cooled by convection
    /// coefficient `h` into `ambient`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] for non-positive area or `h`.
    pub fn new(
        area: SquareMeters,
        layers: Vec<StackLayer>,
        h: WattsPerSquareMeterKelvin,
        ambient: Celsius,
    ) -> Result<Self, ThermalError> {
        if !(area.value() > 0.0) || !area.value().is_finite() {
            return Err(ThermalError::BadParameter {
                reason: format!("area must be positive, got {area}"),
            });
        }
        if !(h.value() > 0.0) || !h.value().is_finite() {
            return Err(ThermalError::BadParameter {
                reason: format!("heat-transfer coefficient must be positive, got {h}"),
            });
        }
        Ok(Self { area, layers, h, ambient })
    }

    /// The layers, bottom (heat source side) to top (sink side).
    pub fn layers(&self) -> &[StackLayer] {
        &self.layers
    }

    /// Total conductive + convective resistance.
    pub fn total_resistance(&self) -> KelvinPerWatt {
        let conductive: f64 = self
            .layers
            .iter()
            .map(|l| l.thickness.value() / (l.material.conductivity().value() * self.area.value()))
            .sum();
        let convective = 1.0 / (self.h.value() * self.area.value());
        KelvinPerWatt::new(conductive + convective)
    }

    /// Temperature at the heat-source plane for the given power.
    pub fn source_temperature(&self, power: Watts) -> Celsius {
        self.ambient
            + vcsel_units::TemperatureDelta::new(power.value() * self.total_resistance().value())
    }

    /// Temperature at the interface above layer `index` (0 = just above the
    /// bottom layer); `None` if `index` is out of range.
    pub fn interface_temperature(&self, power: Watts, index: usize) -> Option<Celsius> {
        if index >= self.layers.len() {
            return None;
        }
        // Resistance from the interface up to the ambient.
        let above: f64 = self.layers[index + 1..]
            .iter()
            .map(|l| l.thickness.value() / (l.material.conductivity().value() * self.area.value()))
            .sum::<f64>()
            + 1.0 / (self.h.value() * self.area.value());
        Some(self.ambient + vcsel_units::TemperatureDelta::new(power.value() * above))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_stack() -> ResistanceStack {
        ResistanceStack::new(
            SquareMeters::new(1e-4), // 1 cm²
            vec![
                StackLayer::new("si", Meters::from_micrometers(500.0), Material::SILICON).unwrap(),
                StackLayer::new("tim", Meters::from_micrometers(100.0), Material::TIM).unwrap(),
            ],
            WattsPerSquareMeterKelvin::new(1_000.0),
            Celsius::new(25.0),
        )
        .unwrap()
    }

    #[test]
    fn resistance_is_sum_of_series_terms() {
        let s = simple_stack();
        let expected = 500e-6 / (148.0 * 1e-4) + 100e-6 / (4.0 * 1e-4) + 1.0 / (1_000.0 * 1e-4);
        assert!((s.total_resistance().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn source_temperature_is_linear_in_power() {
        let s = simple_stack();
        let t1 = s.source_temperature(Watts::new(1.0));
        let t2 = s.source_temperature(Watts::new(2.0));
        let rise1 = t1.value() - 25.0;
        let rise2 = t2.value() - 25.0;
        assert!((rise2 - 2.0 * rise1).abs() < 1e-12);
    }

    #[test]
    fn interface_temperatures_decrease_towards_sink() {
        let s = simple_stack();
        let p = Watts::new(5.0);
        let t_src = s.source_temperature(p);
        let t_mid = s.interface_temperature(p, 0).unwrap();
        let t_top = s.interface_temperature(p, 1).unwrap();
        assert!(t_src > t_mid);
        assert!(t_mid > t_top);
        assert!(t_top > Celsius::new(25.0));
        assert!(s.interface_temperature(p, 2).is_none());
    }

    #[test]
    fn zero_power_is_ambient() {
        let s = simple_stack();
        assert!((s.source_temperature(Watts::ZERO).value() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(StackLayer::new("bad", Meters::ZERO, Material::SILICON).is_err());
        assert!(ResistanceStack::new(
            SquareMeters::ZERO,
            vec![],
            WattsPerSquareMeterKelvin::new(1.0),
            Celsius::new(25.0)
        )
        .is_err());
        assert!(ResistanceStack::new(
            SquareMeters::new(1.0),
            vec![],
            WattsPerSquareMeterKelvin::ZERO,
            Celsius::new(25.0)
        )
        .is_err());
    }
}
