//! Mesh-convergence verification (Richardson extrapolation, GCI).
//!
//! The paper validates IcTherm against COMSOL (<1 % error). Our substitute
//! for that cross-validation is *solution verification*: solve the same
//! design on a sequence of refined meshes, fit the observed convergence
//! order, extrapolate the zero-spacing limit (Richardson), and bound the
//! finest-grid error with Roache's Grid Convergence Index — the standard
//! procedure when no reference solver is available.

use vcsel_units::Meters;

use crate::{Design, MeshSpec, Simulator, SolveContext, ThermalError};

/// One refinement level of a convergence study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceLevel {
    /// Representative cell size `h`, m.
    pub h: f64,
    /// The scalar observable at this resolution (e.g. a probe temperature).
    pub value: f64,
    /// Cells in the mesh at this level.
    pub cells: usize,
}

/// Result of a grid-refinement study on one scalar observable.
///
/// Levels are ordered coarse → fine.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceStudy {
    levels: Vec<ConvergenceLevel>,
}

impl ConvergenceStudy {
    /// Builds a study from externally computed levels (coarse → fine).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] for fewer than two levels or
    /// non-decreasing cell sizes.
    pub fn from_levels(levels: Vec<ConvergenceLevel>) -> Result<Self, ThermalError> {
        if levels.len() < 2 {
            return Err(ThermalError::BadParameter {
                reason: "a convergence study needs at least two levels".into(),
            });
        }
        for w in levels.windows(2) {
            if !(w[1].h < w[0].h) {
                return Err(ThermalError::BadParameter {
                    reason: "levels must be ordered coarse to fine (strictly decreasing h)".into(),
                });
            }
        }
        Ok(Self { levels })
    }

    /// Runs the study directly: solves `design` at each cell size in
    /// `cell_sizes` (coarse → fine) and records `observe(map)`.
    ///
    /// Each level builds its own [`SolveContext`] (the meshes differ, so
    /// the matrices cannot be shared), keeping the study on the same
    /// IC(0)-preconditioned engine as every other solve path.
    ///
    /// # Errors
    ///
    /// Propagates meshing/solver errors; level-ordering errors as in
    /// [`ConvergenceStudy::from_levels`].
    pub fn run(
        simulator: &Simulator,
        design: &Design,
        cell_sizes: &[Meters],
        mut observe: impl FnMut(&crate::ThermalMap) -> f64,
    ) -> Result<Self, ThermalError> {
        let mut levels = Vec::with_capacity(cell_sizes.len());
        for &h in cell_sizes {
            let mut ctx = SolveContext::new(design, &MeshSpec::uniform(h))?
                .with_options(*simulator.options());
            let map = ctx.solve()?;
            levels.push(ConvergenceLevel {
                h: h.value(),
                value: observe(&map),
                cells: map.mesh().cell_count(),
            });
        }
        Self::from_levels(levels)
    }

    /// The recorded levels, coarse → fine.
    pub fn levels(&self) -> &[ConvergenceLevel] {
        &self.levels
    }

    /// The finest-level value.
    pub fn finest(&self) -> f64 {
        self.levels.last().expect("at least two levels").value
    }

    /// Observed convergence order from the last three levels:
    /// `p = ln((f1 − f2)/(f2 − f3)) / ln(r)` for a constant refinement
    /// ratio `r` (generalized to non-constant ratios by a log fit).
    ///
    /// Returns `None` with fewer than three levels or when the differences
    /// change sign / vanish (non-monotone convergence).
    pub fn observed_order(&self) -> Option<f64> {
        if self.levels.len() < 3 {
            return None;
        }
        let n = self.levels.len();
        let (l1, l2, l3) = (&self.levels[n - 3], &self.levels[n - 2], &self.levels[n - 1]);
        let d12 = l1.value - l2.value;
        let d23 = l2.value - l3.value;
        if d12 == 0.0 || d23 == 0.0 || (d12 / d23) <= 0.0 {
            return None;
        }
        let r12 = l1.h / l2.h;
        let r23 = l2.h / l3.h;
        // For constant ratio this reduces to the textbook formula; otherwise
        // solve d12/d23 = (r12^p (r23^p - 1) + ...) approximately by using
        // the mean ratio (adequate for mild ratio variation).
        let r = (r12 * r23).sqrt();
        if r <= 1.0 {
            return None;
        }
        Some((d12 / d23).ln() / r.ln())
    }

    /// Richardson extrapolation of the zero-spacing limit from the last two
    /// levels at order `p` (use [`ConvergenceStudy::observed_order`] or the
    /// scheme's formal order, 2 for this FVM).
    ///
    /// Returns `None` when the refinement ratio is not > 1 or `p` is not
    /// positive.
    pub fn richardson(&self, p: f64) -> Option<f64> {
        if !(p > 0.0) {
            return None;
        }
        let n = self.levels.len();
        let (lc, lf) = (&self.levels[n - 2], &self.levels[n - 1]);
        let r = lc.h / lf.h;
        if !(r > 1.0) {
            return None;
        }
        let rp = r.powf(p);
        Some(lf.value + (lf.value - lc.value) / (rp - 1.0))
    }

    /// Roache's Grid Convergence Index on the finest level, as a *fraction*
    /// of the finest value: `GCI = Fs·|ε|/(r^p − 1)`, `ε` the relative
    /// change between the two finest levels, with safety factor `Fs`
    /// (1.25 for studies with an observed order, 3.0 for two-level checks).
    pub fn gci(&self, p: f64, safety: f64) -> Option<f64> {
        if !(p > 0.0) || !(safety > 0.0) {
            return None;
        }
        let n = self.levels.len();
        let (lc, lf) = (&self.levels[n - 2], &self.levels[n - 1]);
        let r = lc.h / lf.h;
        if !(r > 1.0) || lf.value == 0.0 {
            return None;
        }
        let eps = ((lf.value - lc.value) / lf.value).abs();
        Some(safety * eps / (r.powf(p) - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Boundary, BoundaryCondition, BoxRegion, Material};
    use vcsel_units::{Celsius, Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn mk(levels: &[(f64, f64)]) -> ConvergenceStudy {
        ConvergenceStudy::from_levels(
            levels.iter().map(|&(h, value)| ConvergenceLevel { h, value, cells: 0 }).collect(),
        )
        .unwrap()
    }

    #[test]
    fn exact_second_order_sequence_is_recovered() {
        // f(h) = 10 + 3 h²: order 2, limit 10.
        let study = mk(&[(0.4, 10.48), (0.2, 10.12), (0.1, 10.03)]);
        let p = study.observed_order().unwrap();
        assert!((p - 2.0).abs() < 1e-9, "order {p}");
        let limit = study.richardson(p).unwrap();
        assert!((limit - 10.0).abs() < 1e-9, "limit {limit}");
    }

    #[test]
    fn first_order_sequence_is_distinguished() {
        // f(h) = 5 − 2 h.
        let study = mk(&[(0.4, 4.2), (0.2, 4.6), (0.1, 4.8)]);
        let p = study.observed_order().unwrap();
        assert!((p - 1.0).abs() < 1e-9);
        let limit = study.richardson(p).unwrap();
        assert!((limit - 5.0).abs() < 1e-9);
    }

    #[test]
    fn non_monotone_sequences_return_none() {
        let study = mk(&[(0.4, 10.0), (0.2, 10.5), (0.1, 10.2)]);
        assert!(study.observed_order().is_none());
        // Richardson still well-defined per two levels.
        assert!(study.richardson(2.0).is_some());
    }

    #[test]
    fn gci_bounds_the_known_error() {
        // For the exact h² sequence the GCI at p=2 must bound the true
        // finest-grid error (0.03 of ~10 => 0.3 %).
        let study = mk(&[(0.4, 10.48), (0.2, 10.12), (0.1, 10.03)]);
        let gci = study.gci(2.0, 1.25).unwrap();
        let true_err = (10.03 - 10.0) / 10.0;
        assert!(gci >= true_err, "GCI {gci} must bound {true_err}");
        assert!(gci < 0.05, "GCI {gci} implausibly large");
    }

    #[test]
    fn fvm_probe_converges_on_refinement() {
        // A real solve: the hotspot temperature of a heated slab must
        // converge with a positive observed order and a small GCI.
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(40.0),
            },
        );
        let src =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(3.0), mm(0.25)]).unwrap();
        d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(0.5)));

        let study =
            ConvergenceStudy::run(&Simulator::new(), &d, &[mm(0.5), mm(0.25), mm(0.125)], |map| {
                map.average().value()
            })
            .unwrap();
        // Refinement multiplies the cell count eightfold per level.
        assert!(study.levels()[1].cells > 4 * study.levels()[0].cells);
        let gci = study.gci(2.0, 3.0).unwrap();
        assert!(gci < 0.01, "average temperature GCI {gci} too large");
        // The extrapolated limit is close to the finest level.
        let limit = study.richardson(2.0).unwrap();
        assert!((limit - study.finest()).abs() / study.finest() < 0.01);
    }

    #[test]
    fn validation() {
        assert!(ConvergenceStudy::from_levels(vec![]).is_err());
        assert!(ConvergenceStudy::from_levels(vec![ConvergenceLevel {
            h: 0.1,
            value: 1.0,
            cells: 1
        }])
        .is_err());
        // Wrong order (fine -> coarse).
        assert!(ConvergenceStudy::from_levels(vec![
            ConvergenceLevel { h: 0.1, value: 1.0, cells: 1 },
            ConvergenceLevel { h: 0.2, value: 1.0, cells: 1 },
        ])
        .is_err());
        let study = mk(&[(0.4, 10.48), (0.2, 10.12), (0.1, 10.03)]);
        assert!(study.richardson(0.0).is_none());
        assert!(study.gci(2.0, 0.0).is_none());
    }
}
