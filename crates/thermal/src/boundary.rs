//! Boundary conditions on the six faces of the simulation domain.

use serde::{Deserialize, Serialize};
use vcsel_units::{Celsius, WattsPerSquareMeterKelvin};

/// Identifies one face of the rectangular simulation domain.
///
/// # Example
///
/// ```
/// use vcsel_thermal::Boundary;
///
/// assert_eq!(Boundary::top().axis(), 2);
/// assert!(Boundary::top().is_max_side());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Boundary {
    /// x = min face.
    XMin,
    /// x = max face.
    XMax,
    /// y = min face.
    YMin,
    /// y = max face.
    YMax,
    /// z = min face (conventionally the board side).
    ZMin,
    /// z = max face (conventionally the heat-sink side).
    ZMax,
}

impl Boundary {
    /// The z = max face — where the heat sink sits in the paper's package.
    pub fn top() -> Self {
        Boundary::ZMax
    }

    /// The z = min face — the board/back-plate side.
    pub fn bottom() -> Self {
        Boundary::ZMin
    }

    /// All six faces.
    pub fn all() -> [Boundary; 6] {
        [
            Boundary::XMin,
            Boundary::XMax,
            Boundary::YMin,
            Boundary::YMax,
            Boundary::ZMin,
            Boundary::ZMax,
        ]
    }

    /// Axis normal to the face (0 = x, 1 = y, 2 = z).
    pub fn axis(&self) -> usize {
        match self {
            Boundary::XMin | Boundary::XMax => 0,
            Boundary::YMin | Boundary::YMax => 1,
            Boundary::ZMin | Boundary::ZMax => 2,
        }
    }

    /// Whether the face sits at the axis maximum.
    pub fn is_max_side(&self) -> bool {
        matches!(self, Boundary::XMax | Boundary::YMax | Boundary::ZMax)
    }
}

/// The thermal condition applied to a boundary face.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BoundaryCondition {
    /// No heat flux through the face (symmetry plane or perfect insulator).
    Adiabatic,
    /// Convective (Robin) exchange with an ambient: q = h·(T − T_amb).
    ///
    /// The paper's heat sink + fan is modelled as an effective `h` on the
    /// copper-lid face.
    Convective {
        /// Effective heat-transfer coefficient.
        h: WattsPerSquareMeterKelvin,
        /// Ambient (coolant inlet) temperature.
        ambient: Celsius,
    },
    /// Fixed-temperature (Dirichlet) face; mostly useful for validation
    /// against analytic solutions.
    Isothermal {
        /// Imposed face temperature.
        temperature: Celsius,
    },
}

impl BoundaryCondition {
    /// Whether this condition lets heat escape the domain.
    pub fn is_heat_path(&self) -> bool {
        !matches!(self, BoundaryCondition::Adiabatic)
    }
}

/// Conditions for all six faces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundarySet {
    faces: [BoundaryCondition; 6],
}

impl BoundarySet {
    /// All faces adiabatic (a valid *starting point*, but unsolvable until
    /// at least one face becomes a heat path).
    pub fn adiabatic() -> Self {
        Self { faces: [BoundaryCondition::Adiabatic; 6] }
    }

    /// Returns the condition on `face`.
    pub fn get(&self, face: Boundary) -> BoundaryCondition {
        self.faces[Self::index(face)]
    }

    /// Sets the condition on `face`.
    pub fn set(&mut self, face: Boundary, condition: BoundaryCondition) {
        self.faces[Self::index(face)] = condition;
    }

    /// Whether at least one face lets heat escape.
    pub fn has_heat_path(&self) -> bool {
        self.faces.iter().any(BoundaryCondition::is_heat_path)
    }

    fn index(face: Boundary) -> usize {
        match face {
            Boundary::XMin => 0,
            Boundary::XMax => 1,
            Boundary::YMin => 2,
            Boundary::YMax => 3,
            Boundary::ZMin => 4,
            Boundary::ZMax => 5,
        }
    }
}

impl Default for BoundarySet {
    fn default() -> Self {
        Self::adiabatic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_axis_mapping() {
        assert_eq!(Boundary::XMin.axis(), 0);
        assert_eq!(Boundary::YMax.axis(), 1);
        assert_eq!(Boundary::ZMax.axis(), 2);
        assert!(!Boundary::XMin.is_max_side());
        assert!(Boundary::YMax.is_max_side());
        assert_eq!(Boundary::all().len(), 6);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut set = BoundarySet::adiabatic();
        assert!(!set.has_heat_path());
        let bc = BoundaryCondition::Convective {
            h: WattsPerSquareMeterKelvin::new(500.0),
            ambient: Celsius::new(25.0),
        };
        set.set(Boundary::top(), bc);
        assert_eq!(set.get(Boundary::top()), bc);
        assert_eq!(set.get(Boundary::bottom()), BoundaryCondition::Adiabatic);
        assert!(set.has_heat_path());
    }

    #[test]
    fn isothermal_is_heat_path() {
        assert!(BoundaryCondition::Isothermal { temperature: Celsius::new(20.0) }.is_heat_path());
        assert!(!BoundaryCondition::Adiabatic.is_heat_path());
    }
}
