//! The reusable steady-state solve engine.
//!
//! Everything the run-time management loop does — design-space sweeps,
//! influence-matrix calibration (one solve per tile), mesh-convergence
//! studies, superposition bases — funnels into the same pattern: *many
//! solves of one FVM system whose matrix never changes*, because the
//! conduction operator depends only on geometry, materials and boundary
//! conditions, while the injected powers only move the right-hand side.
//!
//! [`SolveContext`] exploits that: it assembles the system **once**, paints
//! one power vector per controllable group, factors a preconditioner
//! **once**, and then serves any number of right-hand sides with
//! warm-started, allocation-free conjugate gradient — each solve reuses the
//! previous solution as its initial guess and the same scratch buffers.
//!
//! The default preconditioner scales with the system: small meshes get the
//! IC(0) factorization, while systems at or above
//! [`SolveContext::MULTIGRID_CELL_THRESHOLD`] unknowns get the
//! smoothed-aggregation multigrid hierarchy
//! ([`PreconditionerKind::Multigrid`]), whose CG iteration counts stay
//! nearly mesh-independent — the property that makes paper-fidelity steady
//! solves tractable. Sweeps whose designs share a mesh (e.g. the same
//! floorplan under different activity patterns) can keep the assembled
//! matrix and factorization and only re-paint powers via
//! [`SolveContext::adopt_design`].

use std::sync::Arc;

use vcsel_numerics::solver::{CgWorkspace, SolveOptions};
use vcsel_numerics::{
    AnyPreconditioner, BlockCgWorkspace, BlockVector, CsrMatrix, MultigridConfig, NumericsError,
    PreconditionerKind, SolveLadder,
};
use vcsel_telemetry::{ArgValue, SolveSample, TelemetrySink};
use vcsel_units::{Celsius, Meters};

use crate::assembly::{self, BoundaryFace};
use crate::{Design, Mesh, MeshSpec, SolveHealth, ThermalError, ThermalMap};

/// Factors the preferred preconditioner for an SPD FVM system, falling back
/// to Jacobi if the requested factorization breaks down (IC(0) cannot fail
/// on the M-matrices our assembly produces, but a fallback keeps the engine
/// total for exotic user matrices). The one-shot [`TransientSimulator`]
/// (crate::TransientSimulator) still uses this directly; the cached engines
/// get the same behaviour — plus runtime escalation — from their
/// [`SolveLadder`].
pub(crate) fn factor_preconditioner(
    a: &CsrMatrix,
    kind: PreconditionerKind,
) -> Result<AnyPreconditioner, NumericsError> {
    match kind.build(a) {
        Ok(p) => Ok(p),
        Err(_) if kind != PreconditionerKind::Jacobi => PreconditionerKind::Jacobi.build(a),
        Err(e) => Err(e),
    }
}

/// The escalation chain a ladder-backed engine runs for a preferred
/// preconditioner `kind`: the kind itself, then progressively cheaper,
/// sturdier rungs down to Jacobi — which only needs the positive diagonal
/// FVM assembly guarantees, so the last rung always builds and the engine
/// degrades gracefully instead of failing.
pub(crate) fn escalation_chain(kind: PreconditionerKind) -> Vec<PreconditionerKind> {
    match kind {
        PreconditionerKind::Multigrid { .. } => {
            vec![kind, PreconditionerKind::IncompleteCholesky, PreconditionerKind::Jacobi]
        }
        PreconditionerKind::IncompleteCholesky | PreconditionerKind::Ssor { .. } => {
            vec![kind, PreconditionerKind::Jacobi]
        }
        PreconditionerKind::Jacobi => vec![kind],
    }
}

/// `(static power, sorted per-group power vectors)` as painted by
/// [`paint_design`].
type PaintedPowers = (Vec<f64>, Vec<(String, Vec<f64>)>);

/// Paints the static (ungrouped) power vector and one per-group power
/// vector at the design's reference block powers. Shared with the
/// blueprint layer: the fresh build and the cache-restore path must paint
/// powers identically for restored first solves to be bitwise-equal.
pub(crate) fn paint_design(design: &Design, mesh: &Mesh) -> Result<PaintedPowers, ThermalError> {
    let mut groups: Vec<String> =
        design.blocks().iter().filter_map(|b| b.group().map(str::to_owned)).collect();
    groups.sort();
    groups.dedup();
    let mut group_power = Vec::with_capacity(groups.len());
    for g in &groups {
        let mut only = design.clone();
        for b in only.blocks_mut() {
            if b.group() != Some(g.as_str()) {
                b.set_power(vcsel_units::Watts::ZERO);
            }
        }
        group_power.push((g.clone(), assembly::paint_power(&only, mesh)?));
    }
    let mut ungrouped = design.clone();
    for b in ungrouped.blocks_mut() {
        if b.group().is_some() {
            b.set_power(vcsel_units::Watts::ZERO);
        }
    }
    let static_power = assembly::paint_power(&ungrouped, mesh)?;
    Ok((static_power, group_power))
}

/// Validates `scales` against the painted groups and builds one right-hand
/// side into `rhs`: boundary + static power, plus each group's painted
/// vector at its requested (or default) scale. Returns the injected power
/// in watts. Shared by the scalar solve path and the batched multi-RHS
/// path, so both reject exactly the same paintings.
fn paint_rhs(
    boundary_rhs: &[f64],
    static_power: &[f64],
    group_power: &[(String, Vec<f64>)],
    scales: &[(&str, f64)],
    default_scale: f64,
    rhs: &mut [f64],
) -> Result<f64, ThermalError> {
    for &(name, s) in scales {
        if !group_power.iter().any(|(g, _)| g == name) {
            return Err(ThermalError::UnknownGroup { group: name.to_string() });
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ThermalError::BadParameter {
                reason: format!("scale for group '{name}' must be non-negative, got {s}"),
            });
        }
    }
    for ((ri, bi), si) in rhs.iter_mut().zip(boundary_rhs).zip(static_power) {
        *ri = bi + si;
    }
    let mut injected = static_power.iter().sum::<f64>();
    for (g, q) in group_power {
        let scale =
            scales.iter().find(|(name, _)| name == g).map(|&(_, s)| s).unwrap_or(default_scale);
        if scale == 0.0 {
            continue;
        }
        for (ri, qi) in rhs.iter_mut().zip(q) {
            *ri += scale * qi;
        }
        injected += scale * q.iter().sum::<f64>();
    }
    Ok(injected)
}

/// The operator-derived state of one engine, as produced by the blueprint
/// layer (fresh build or artifact restore) and consumed by
/// [`SolveContext::from_parts`]. Everything here is a function of the
/// `(design, mesh)` pair; the solve-time state (options, warm-start field,
/// workspaces) is layered on top by `from_parts`.
pub(crate) struct EngineParts {
    pub(crate) mesh: Mesh,
    pub(crate) matrix: Arc<CsrMatrix>,
    pub(crate) boundary_rhs: Vec<f64>,
    pub(crate) boundary_faces: Vec<BoundaryFace>,
    pub(crate) static_power: Vec<f64>,
    pub(crate) group_power: Vec<(String, Vec<f64>)>,
    pub(crate) conductivity: Vec<f64>,
    pub(crate) boundaries: crate::BoundarySet,
    pub(crate) ladder: SolveLadder,
}

/// A cached, reusable solve engine for one `(design, mesh)` pair.
///
/// Construction performs the expensive, power-independent work — meshing
/// (unless a prebuilt [`Mesh`] is supplied), FVM assembly, power painting
/// per group, preconditioner factorization. Every subsequent
/// [`solve`](SolveContext::solve) /
/// [`solve_scaled`](SolveContext::solve_scaled) /
/// [`solve_probes`](SolveContext::solve_probes) only rebuilds the
/// right-hand side in a held buffer and runs warm-started CG.
///
/// # Example
///
/// ```
/// use vcsel_thermal::{
///     Block, Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, SolveContext,
/// };
/// use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};
///
/// // A 4 x 4 x 1 mm silicon slab, convectively cooled from the top, with
/// // one grouped heat source.
/// let mm = Meters::from_millimeters;
/// let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)])?;
/// let mut design = Design::new(domain, Material::SILICON)?;
/// design.set_boundary(
///     Boundary::top(),
///     BoundaryCondition::Convective {
///         h: WattsPerSquareMeterKelvin::new(2_000.0),
///         ambient: Celsius::new(40.0),
///     },
/// );
/// let src = BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(3.0), mm(0.2)])?;
/// design.add_block(
///     Block::heat_source("laser", src, Material::COPPER, Watts::new(0.5)).with_group("laser"),
/// );
///
/// // Assemble + factor once; every later solve only rebuilds the RHS and
/// // warm-starts from the previous field.
/// let mut ctx = SolveContext::new(&design, &MeshSpec::uniform(mm(0.5)))?;
/// let reference = ctx.solve()?; // all groups at reference power
/// let dimmed = ctx.solve_scaled(&[("laser", 0.5)])?; // halved source, warm start
/// assert!(dimmed.hottest().1.value() < reference.hottest().1.value());
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SolveContext {
    mesh: Mesh,
    /// The assembled conduction operator, shared (never cloned) with the
    /// operator-holding preconditioners — the fine level of a multigrid
    /// hierarchy and the SSOR splitting alias this same allocation.
    matrix: Arc<CsrMatrix>,
    /// Boundary-condition contribution to the RHS (no sources).
    boundary_rhs: Vec<f64>,
    boundary_faces: Vec<BoundaryFace>,
    /// Power of blocks without a group, applied at scale 1 on every solve.
    static_power: Vec<f64>,
    /// `(group, per-cell power at the design's reference block powers)`,
    /// sorted by group name.
    group_power: Vec<(String, Vec<f64>)>,
    /// Painted per-cell conductivity — the geometry/material fingerprint
    /// [`SolveContext::adopt_design`] validates against, since the matrix
    /// is exactly a function of it (plus the fixed mesh and boundaries).
    conductivity: Vec<f64>,
    /// Boundary conditions at construction, also validated on adoption.
    boundaries: crate::BoundarySet,
    /// The escalating preconditioner chain every solve runs through.
    ladder: SolveLadder,
    /// Health report of the most recent solve.
    health: SolveHealth,
    options: SolveOptions,
    /// Last solution; doubles as the next solve's warm-start guess.
    temps: Vec<f64>,
    rhs: Vec<f64>,
    ws: CgWorkspace,
    /// Block scratch for [`SolveContext::solve_batch`], sized lazily on the
    /// first batched call and reused after that.
    block_ws: BlockCgWorkspace,
    last_iterations: usize,
    total_iterations: usize,
}

impl SolveContext {
    /// Meshes `design` per `spec` and builds the engine.
    ///
    /// # Errors
    ///
    /// Propagates meshing and assembly failures ([`ThermalError::NoHeatPath`],
    /// [`ThermalError::MeshTooLarge`], [`ThermalError::BadParameter`]).
    pub fn new(design: &Design, spec: &MeshSpec) -> Result<Self, ThermalError> {
        let mesh = Mesh::build(design, spec)?;
        Self::on_mesh(design, mesh)
    }

    /// Like [`SolveContext::new`] but with an explicit preconditioner
    /// choice, skipping the size-based default entirely (benches and
    /// ablations use this to avoid paying for a factorization they are
    /// about to replace).
    ///
    /// # Errors
    ///
    /// Same contract as [`SolveContext::new`], plus factorization failures
    /// of the requested kind.
    pub fn new_preconditioned(
        design: &Design,
        spec: &MeshSpec,
        kind: PreconditionerKind,
    ) -> Result<Self, ThermalError> {
        let mesh = Mesh::build(design, spec)?;
        Self::on_mesh_with(design, mesh, kind)
    }

    /// Builds the engine on an already-built mesh (lets sweeps share one).
    ///
    /// # Errors
    ///
    /// Same contract as [`SolveContext::new`], minus the meshing errors.
    pub fn on_mesh(design: &Design, mesh: Mesh) -> Result<Self, ThermalError> {
        crate::EngineBlueprint::on_mesh(design, mesh).build()
    }

    /// [`SolveContext::on_mesh`] with an explicit preconditioner choice.
    ///
    /// # Errors
    ///
    /// Same contract as [`SolveContext::new_preconditioned`], minus the
    /// meshing errors.
    pub fn on_mesh_with(
        design: &Design,
        mesh: Mesh,
        kind: PreconditionerKind,
    ) -> Result<Self, ThermalError> {
        crate::EngineBlueprint::on_mesh(design, mesh).with_kind(kind).build()
    }

    /// Final assembly step of the blueprint pipeline: wraps the expensive
    /// operator-derived parts — produced either by a fresh
    /// [`EngineBlueprint::build`](crate::EngineBlueprint::build) or a
    /// zero-factorization
    /// [`EngineBlueprint::restore`](crate::EngineBlueprint::restore) —
    /// with the per-engine solve state (options, warm-start field, scratch
    /// workspaces).
    pub(crate) fn from_parts(parts: EngineParts) -> Self {
        let n = parts.mesh.cell_count();
        Self {
            mesh: parts.mesh,
            matrix: parts.matrix,
            boundary_rhs: parts.boundary_rhs,
            boundary_faces: parts.boundary_faces,
            static_power: parts.static_power,
            group_power: parts.group_power,
            conductivity: parts.conductivity,
            boundaries: parts.boundaries,
            ladder: parts.ladder,
            health: SolveHealth::default(),
            options: SolveOptions { tolerance: 1e-9, max_iterations: 50_000, relaxation: 1.6 },
            temps: vec![0.0; n],
            rhs: vec![0.0; n],
            ws: CgWorkspace::with_capacity(n),
            block_ws: BlockCgWorkspace::new(),
            last_iterations: 0,
            total_iterations: 0,
        }
    }

    /// Boundary-condition RHS contribution (no sources) — serialized into
    /// the engine artifact, since it is a function of the operator key.
    pub(crate) fn boundary_rhs_ref(&self) -> &[f64] {
        &self.boundary_rhs
    }

    /// The boundary faces the transient stepper and artifact codec read.
    pub(crate) fn boundary_faces_ref(&self) -> &[BoundaryFace] {
        &self.boundary_faces
    }

    /// Unknown count at which steady engines switch their default
    /// preconditioner from IC(0) to the smoothed-aggregation multigrid
    /// hierarchy.
    ///
    /// Below the threshold (the test-scale meshes) IC(0)'s cheap setup and
    /// ~1-SpMV application win on wall clock; above it, one-level
    /// preconditioners pay iteration counts that grow with resolution while
    /// the multigrid V-cycle stays flat — at `Fidelity::Paper` scale
    /// (~2.6 M unknowns) that difference is what makes cold steady solves
    /// tractable at all.
    pub const MULTIGRID_CELL_THRESHOLD: usize = 150_000;

    /// The preconditioner a steady engine picks for `n` unknowns: IC(0)
    /// below [`SolveContext::MULTIGRID_CELL_THRESHOLD`], multigrid at or
    /// above it.
    pub fn default_steady_kind(n: usize) -> PreconditionerKind {
        if n >= Self::MULTIGRID_CELL_THRESHOLD {
            PreconditionerKind::Multigrid { config: MultigridConfig::default() }
        } else {
            PreconditionerKind::IncompleteCholesky
        }
    }

    /// Re-points the engine at `new_design` **without** re-assembling or
    /// re-factoring: only the painted power vectors are rebuilt. The warm-
    /// start field carries over, so sweep hops stay cheap.
    ///
    /// The new design must produce the *same operator* — identical
    /// geometry, materials and boundary conditions on the same mesh; only
    /// block powers (and group tags) may differ. This is the activity-
    /// pattern sweep shape: tile powers change, silicon does not. The
    /// painted conductivity field is validated cell-for-cell to enforce the
    /// contract.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] if the conductivity paint
    /// differs anywhere (the design is *not* operator-compatible), and
    /// propagates power-painting failures.
    pub fn adopt_design(&mut self, new_design: &Design) -> Result<(), ThermalError> {
        if *new_design.boundaries() != self.boundaries {
            return Err(ThermalError::BadParameter {
                reason: "adopt_design requires identical boundary conditions — \
                         build a new SolveContext"
                    .into(),
            });
        }
        let conductivity = assembly::paint_conductivity(new_design, &self.mesh);
        if conductivity != self.conductivity {
            return Err(ThermalError::BadParameter {
                reason: "adopt_design requires identical geometry and materials; \
                         the painted conductivity differs — build a new SolveContext"
                    .into(),
            });
        }
        let (static_power, group_power) = paint_design(new_design, &self.mesh)?;
        self.static_power = static_power;
        self.group_power = group_power;
        Ok(())
    }

    /// Overrides the linear-solver options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the linear-solver options in place (for engines already
    /// embedded in a larger cache, e.g. a re-targeted study).
    pub fn set_options(&mut self, options: SolveOptions) {
        self.options = options;
    }

    /// Re-factors with a different preconditioner (builder style; benches
    /// use this to ablate Jacobi vs SSOR vs IC(0) on identical systems).
    ///
    /// Re-factoring replaces the whole preconditioner, including any
    /// apply-knob state — call [`SolveContext::with_parallel_apply`] /
    /// [`SolveContext::with_apply_threads`] *after* this, not before.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures for the requested kind.
    pub fn with_preconditioner(mut self, kind: PreconditionerKind) -> Result<Self, ThermalError> {
        self.ladder = SolveLadder::new(&self.matrix, &escalation_chain(kind), true)
            .map_err(ThermalError::from)?;
        Ok(self)
    }

    /// Enables/disables the level-scheduled parallel IC(0) triangular
    /// solves on the cached factor (builder style; on by default, with the
    /// usual size gate). No effect unless the active preconditioner is
    /// IC(0) — the other kinds thread through their own gates
    /// (`MultigridConfig::parallel_sweeps`, the SSOR band policy). The
    /// `false` setting is the serial A/B baseline `perf_record` measures
    /// the threaded apply against.
    #[must_use]
    pub fn with_parallel_apply(mut self, on: bool) -> Self {
        self.set_parallel_apply(on);
        self
    }

    /// In-place form of [`SolveContext::with_parallel_apply`]; returns
    /// whether the knob landed on a cached IC(0) factor.
    pub fn set_parallel_apply(&mut self, on: bool) -> bool {
        self.ladder.set_parallel_apply(on)
    }

    /// Pins the IC(0) wavefront worker count (builder style), forcing the
    /// level-scheduled apply past its size gate — so tests and benches can
    /// exercise the threaded path deterministically on any machine. No
    /// effect on non-IC(0) preconditioners.
    #[must_use]
    pub fn with_apply_threads(mut self, threads: usize) -> Self {
        self.ladder.set_apply_threads(threads);
        self
    }

    /// The assembled conduction operator. Shared, not owned: the same
    /// allocation backs the multigrid hierarchy's finest level (or the
    /// SSOR splitting), which the engine tests pin with [`Arc::ptr_eq`].
    pub fn shared_operator(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }

    /// The active preconditioner, for inspection by benches and tests
    /// (e.g. reaching the multigrid hierarchy behind a paper-scale
    /// engine via [`AnyPreconditioner::as_multigrid`]).
    pub fn preconditioner(&self) -> &AnyPreconditioner {
        self.ladder.active_preconditioner()
    }

    /// Health report of the most recent solve: which ladder rungs ran, how
    /// many escalations it took, and whether the answer is degraded.
    pub fn health(&self) -> &SolveHealth {
        &self.health
    }

    /// Replaces the engine's telemetry sink. The [`SolveLadder`] owns the
    /// handle, so rung attempts, escalations and the engine's own
    /// `steady_solve` spans all record through the same buffer. Engines
    /// default to [`vcsel_telemetry::global`]; tests inject private sinks.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.ladder.set_telemetry(sink);
    }

    /// Builder form of [`SolveContext::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.set_telemetry(sink);
        self
    }

    /// The engine's telemetry sink (disabled unless tracing is on).
    pub fn telemetry(&self) -> &TelemetrySink {
        self.ladder.telemetry()
    }

    /// Corrupts the active preconditioner's apply until the next ladder
    /// escalation (fault-injection hook for the scenario engine and the
    /// recovery tests — the next solve genuinely stalls on the corrupted
    /// rung and recovers on the one below it).
    pub fn inject_solver_fault(&mut self) {
        self.ladder.inject_apply_fault();
    }

    /// The mesh the engine solves on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of unknowns (mesh cells).
    pub fn unknowns(&self) -> usize {
        self.mesh.cell_count()
    }

    /// The controllable group names, sorted.
    pub fn groups(&self) -> Vec<&str> {
        self.group_power.iter().map(|(g, _)| g.as_str()).collect()
    }

    /// Total reference power of a group in watts (the sum of its painted
    /// per-cell sources at scale 1), or `None` for an unknown group.
    pub fn group_reference_power(&self, group: &str) -> Option<f64> {
        self.group_power.iter().find(|(g, _)| g == group).map(|(_, q)| q.iter().sum::<f64>())
    }

    /// CG iterations of the most recent solve.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// CG iterations summed over every solve this context has served.
    pub fn total_iterations(&self) -> usize {
        self.total_iterations
    }

    /// Name of the active preconditioner (`"ic0"`, `"jacobi"`, `"ssor"`,
    /// `"multigrid"`).
    pub fn preconditioner_name(&self) -> &'static str {
        self.ladder.active_name()
    }

    /// Discards the warm-start state so the next solve starts from zero
    /// (used by benches to measure cold-start behaviour).
    pub fn reset_guess(&mut self) {
        self.temps.fill(0.0);
    }

    /// Solves with every group at its reference power — the design exactly
    /// as constructed.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`ThermalError::Solver`]).
    pub fn solve(&mut self) -> Result<ThermalMap, ThermalError> {
        let injected = self.solve_field_with_default(&[], 1.0)?;
        Ok(self.snapshot(injected))
    }

    /// Solves with each named group at `scale ×` its reference power.
    /// Groups not mentioned contribute **zero** power; ungrouped blocks
    /// always dissipate their design power (mirroring
    /// [`TransientStepper::step`](crate::TransientStepper::step)).
    ///
    /// # Errors
    ///
    /// [`ThermalError::UnknownGroup`] for an unknown name,
    /// [`ThermalError::BadParameter`] for negative or non-finite scales,
    /// plus solver failures.
    pub fn solve_scaled(&mut self, scales: &[(&str, f64)]) -> Result<ThermalMap, ThermalError> {
        let injected = self.solve_field(scales)?;
        Ok(self.snapshot(injected))
    }

    /// Solves a **batch** of power paintings against the one cached
    /// operator, preconditioner and mesh — the design-space-exploration
    /// shape, where many `(group, scale)` combinations interrogate the same
    /// silicon. Each painting follows [`SolveContext::solve_scaled`]
    /// semantics (omitted groups contribute zero; ungrouped blocks always
    /// dissipate), but the right-hand sides solve **together**: one
    /// [`BlockVector`] runs through the ladder's block conjugate-gradient
    /// path, so every operator sweep streams the matrix nonzeros from
    /// memory once and serves every still-active column.
    ///
    /// Failure is per slot, not wholesale: a poisoned painting (unknown
    /// group, negative scale) gets its own `Err` while the remaining
    /// columns still solve; a column the active rung cannot converge
    /// re-solves through the full scalar ladder (escalation included).
    /// The outer `Err` is reserved for systemic failures — a broken
    /// operator fails every painting identically.
    ///
    /// The warm-start field after a batch is the last successful column,
    /// exactly where a sequential sweep of the same paintings would have
    /// left it.
    ///
    /// # Errors
    ///
    /// Outer: shape/definiteness failures from the block solver. Inner,
    /// per painting: [`ThermalError::UnknownGroup`],
    /// [`ThermalError::BadParameter`], and solver failures that survive
    /// the scalar-ladder fallback.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_thermal::{
    ///     Block, Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, SolveContext,
    /// };
    /// use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};
    ///
    /// let mm = Meters::from_millimeters;
    /// let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)])?;
    /// let mut design = Design::new(domain, Material::SILICON)?;
    /// design.set_boundary(
    ///     Boundary::top(),
    ///     BoundaryCondition::Convective {
    ///         h: WattsPerSquareMeterKelvin::new(2_000.0),
    ///         ambient: Celsius::new(40.0),
    ///     },
    /// );
    /// let src = BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(3.0), mm(0.2)])?;
    /// design.add_block(
    ///     Block::heat_source("laser", src, Material::COPPER, Watts::new(0.5)).with_group("laser"),
    /// );
    /// let mut ctx = SolveContext::new(&design, &MeshSpec::uniform(mm(0.5)))?;
    ///
    /// // Three power points, one operator sweep stream — and a poisoned
    /// // painting that fails alone without taking the batch down.
    /// let maps = ctx.solve_batch(&[
    ///     &[("laser", 1.0)],
    ///     &[("laser", 0.5)],
    ///     &[("no-such-group", 1.0)],
    /// ])?;
    /// let full = maps[0].as_ref().unwrap();
    /// let dimmed = maps[1].as_ref().unwrap();
    /// assert!(dimmed.hottest().1.value() < full.hottest().1.value());
    /// assert!(maps[2].is_err());
    /// # Ok::<(), vcsel_thermal::ThermalError>(())
    /// ```
    pub fn solve_batch(
        &mut self,
        paintings: &[&[(&str, f64)]],
    ) -> Result<Vec<Result<ThermalMap, ThermalError>>, ThermalError> {
        let n = self.temps.len();
        // Pre-fill every slot; each is overwritten exactly once below.
        let mut results: Vec<Result<ThermalMap, ThermalError>> = paintings
            .iter()
            .map(|_| {
                Err(ThermalError::BadParameter {
                    reason: "batched solve did not reach this painting".into(),
                })
            })
            .collect();
        // Validate and paint every right-hand side up front; a poisoned
        // painting fails its own slot and drops out of the block.
        let mut columns: Vec<Vec<f64>> = Vec::new();
        let mut injected: Vec<f64> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (slot, scales) in paintings.iter().enumerate() {
            let mut rhs = vec![0.0; n];
            match paint_rhs(
                &self.boundary_rhs,
                &self.static_power,
                &self.group_power,
                scales,
                0.0,
                &mut rhs,
            ) {
                Ok(w) => {
                    columns.push(rhs);
                    injected.push(w);
                    slots.push(slot);
                }
                Err(e) => results[slot] = Err(e),
            }
        }
        if columns.is_empty() {
            return Ok(results);
        }

        let refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
        let b = BlockVector::from_columns(&refs).map_err(ThermalError::from)?;
        let mut x = BlockVector::zeros(n, columns.len());
        for c in 0..columns.len() {
            x.column_mut(c).copy_from_slice(&self.temps);
        }
        let sink = self.ladder.telemetry().clone();
        let start_ns = vcsel_telemetry::now_ns();
        let timer = std::time::Instant::now();
        let summaries = {
            let mut span = sink.span("thermal", "batch_solve");
            span.arg("unknowns", ArgValue::U64(n as u64));
            span.arg("points", ArgValue::U64(paintings.len() as u64));
            span.arg("columns", ArgValue::U64(columns.len() as u64));
            self.ladder
                .solve_block(&self.matrix, &b, &mut x, &self.options, &mut self.block_ws)
                .map_err(ThermalError::from)?
        };
        if sink.is_enabled() {
            let mut sample = self.batch_sample(&summaries);
            sample.start_ns = start_ns;
            sample.dur_ns = u64::try_from(timer.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.record_sample(sample);
        }

        // Snapshot the converged columns; the last one becomes the next
        // warm start, exactly where a sequential sweep would have parked.
        let mut last_good = None;
        let mut block_iterations = 0;
        for (c, summary) in summaries.iter().enumerate() {
            self.total_iterations += summary.iterations;
            if summary.converged {
                block_iterations = block_iterations.max(summary.iterations);
                results[slots[c]] = Ok(ThermalMap::new(
                    self.mesh.clone(),
                    x.column(c).to_vec(),
                    self.boundary_faces.clone(),
                    injected[c],
                ));
                last_good = Some(c);
            }
        }
        if let Some(c) = last_good {
            self.last_iterations = block_iterations;
            self.temps.copy_from_slice(x.column(c));
        }
        // Columns the active rung could not converge re-solve through the
        // full scalar ladder — escalation and self-healing included — so a
        // batch degrades per column, never wholesale.
        for (c, summary) in summaries.iter().enumerate() {
            if !summary.converged {
                results[slots[c]] = self.solve_scaled(paintings[slots[c]]);
            }
        }
        Ok(results)
    }

    /// Assembles the telemetry [`SolveSample`] for one batched solve: the
    /// operator-sweep count stands in for `spmv` (each sweep streams the
    /// nonzeros once, however many columns it serves), while
    /// preconditioner applies stay per column — blocking does not amortize
    /// them. The caller stamps the timing fields.
    fn batch_sample(&self, summaries: &[vcsel_numerics::solver::CgSummary]) -> SolveSample {
        let applies = self.block_ws.preconditioner_applies();
        let mut sample = SolveSample {
            label: String::from("batch_solve"),
            cat: "thermal",
            solver: self.ladder.active_name(),
            unknowns: self.temps.len() as u64,
            iterations: summaries.iter().map(|s| s.iterations as u64).max().unwrap_or(0),
            total_iterations: summaries.iter().map(|s| s.iterations as u64).sum(),
            converged: summaries.iter().all(|s| s.converged),
            residual: summaries.iter().map(|s| s.residual).fold(0.0, f64::max),
            spmv: self.block_ws.operator_sweeps(),
            precond_applies: applies,
            ..SolveSample::default()
        };
        match sample.solver {
            "multigrid" => sample.vcycles = applies,
            "ic0" | "ssor" => sample.trisolves = 2 * applies,
            _ => {}
        }
        sample
    }

    /// Solves like [`SolveContext::solve_scaled`] but returns only the
    /// temperatures at `probes` — the multi-right-hand-side shape influence
    /// calibration needs, without cloning the mesh into a full
    /// [`ThermalMap`] per solve.
    ///
    /// # Errors
    ///
    /// Additionally returns [`ThermalError::BadParameter`] for a probe
    /// outside the domain.
    pub fn solve_probes(
        &mut self,
        scales: &[(&str, f64)],
        probes: &[[Meters; 3]],
    ) -> Result<Vec<Celsius>, ThermalError> {
        let cells: Vec<usize> = probes
            .iter()
            .map(|&p| {
                self.mesh.locate(p).ok_or_else(|| ThermalError::BadParameter {
                    reason: "probe lies outside the design domain".into(),
                })
            })
            .collect::<Result<_, _>>()?;
        self.solve_field(scales)?;
        Ok(cells.into_iter().map(|c| Celsius::new(self.temps[c])).collect())
    }

    /// Builds the RHS for `scales` into the held buffer and runs one
    /// warm-started CG solve; returns the injected power in watts.
    fn solve_field(&mut self, scales: &[(&str, f64)]) -> Result<f64, ThermalError> {
        self.solve_field_with_default(scales, 0.0)
    }

    /// Like [`Self::solve_field`] but groups omitted from `scales` run at
    /// `default_scale` (1.0 reproduces the design as constructed).
    fn solve_field_with_default(
        &mut self,
        scales: &[(&str, f64)],
        default_scale: f64,
    ) -> Result<f64, ThermalError> {
        let n = self.temps.len();
        let injected = paint_rhs(
            &self.boundary_rhs,
            &self.static_power,
            &self.group_power,
            scales,
            default_scale,
            &mut self.rhs,
        )?;
        let sink = self.ladder.telemetry().clone();
        let start_ns = vcsel_telemetry::now_ns();
        let timer = std::time::Instant::now();
        let summary = {
            let mut span = sink.span("thermal", "steady_solve");
            span.arg("unknowns", ArgValue::U64(n as u64));
            self.ladder.solve(
                &self.matrix,
                &self.rhs,
                &mut self.temps,
                &self.options,
                &mut self.ws,
            )?
        };
        if sink.is_enabled() {
            let mut sample = self.ladder.telemetry_sample(&summary, &self.ws);
            sample.label = String::from("steady_solve");
            sample.cat = "thermal";
            sample.start_ns = start_ns;
            sample.dur_ns = u64::try_from(timer.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.record_sample(sample);
        }
        self.last_iterations = summary.iterations;
        self.total_iterations += summary.total_iterations;
        self.health = SolveHealth::from_ladder(summary, self.ladder.attempts());
        if !summary.converged {
            // The field buffer holds the failed rung's final iterate —
            // poison both as an answer and as the next warm start.
            self.reset_guess();
            return Err(ThermalError::Solver(NumericsError::NoConvergence {
                iterations: summary.iterations,
                residual: summary.residual,
                tolerance: self.options.tolerance,
            }));
        }
        Ok(injected)
    }

    fn snapshot(&self, injected: f64) -> ThermalMap {
        ThermalMap::new(
            self.mesh.clone(),
            self.temps.clone(),
            self.boundary_faces.clone(),
            injected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Boundary, BoundaryCondition, BoxRegion, Material, Simulator};
    use vcsel_units::{Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn grouped_slab() -> (Design, MeshSpec) {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(40.0),
            },
        );
        let src =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(3.0), mm(0.2)]).unwrap();
        d.add_block(
            Block::heat_source("s", src, Material::COPPER, Watts::new(0.5)).with_group("src"),
        );
        let bg =
            BoxRegion::new([mm(3.0), mm(3.0), Meters::ZERO], [mm(4.0), mm(4.0), mm(0.2)]).unwrap();
        d.add_block(Block::heat_source("bg", bg, Material::COPPER, Watts::new(0.1)));
        (d, MeshSpec::uniform(mm(0.5)))
    }

    #[test]
    fn matches_the_one_shot_simulator() {
        let (design, spec) = grouped_slab();
        let direct = Simulator::new().solve(&design, &spec).unwrap();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        let cached = ctx.solve().unwrap();
        for (a, b) in direct.temperatures().iter().zip(cached.temperatures()) {
            assert!((a - b).abs() < 1e-6, "direct {a} vs context {b}");
        }
        assert!((direct.injected_power().value() - cached.injected_power().value()).abs() < 1e-12);
    }

    #[test]
    fn scaled_solve_matches_scaled_design() {
        let (design, spec) = grouped_slab();
        let mut scaled = design.clone();
        scaled.scale_group_power("src", 2.5);
        let direct = Simulator::new().solve(&scaled, &spec).unwrap();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        let cached = ctx.solve_scaled(&[("src", 2.5)]).unwrap();
        for (a, b) in direct.temperatures().iter().zip(cached.temperatures()) {
            assert!((a - b).abs() < 1e-6, "direct {a} vs context {b}");
        }
    }

    #[test]
    fn warm_start_cuts_iterations_on_repeat_solves() {
        let (design, spec) = grouped_slab();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        ctx.solve().unwrap();
        let cold = ctx.last_iterations();
        assert!(cold > 0);
        // Identical RHS again: the warm start must converge instantly.
        ctx.solve().unwrap();
        assert_eq!(ctx.last_iterations(), 0, "identical re-solve must be free");
        // A nearby RHS: strictly cheaper than the cold solve.
        ctx.solve_scaled(&[("src", 1.01)]).unwrap();
        assert!(ctx.last_iterations() < cold, "warm {} vs cold {cold}", ctx.last_iterations());
        assert!(ctx.total_iterations() >= cold);
    }

    #[test]
    fn probes_match_the_full_map() {
        let (design, spec) = grouped_slab();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        let map = ctx.solve_scaled(&[("src", 1.0)]).unwrap();
        let probed = ctx.solve_probes(&[("src", 1.0)], &[probe]).unwrap();
        assert!((map.temperature_at(probe).unwrap().value() - probed[0].value()).abs() < 1e-9);
    }

    #[test]
    fn omitted_groups_are_off_but_static_power_stays() {
        let (design, spec) = grouped_slab();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        let off = ctx.solve_scaled(&[]).unwrap();
        // Static "bg" block keeps its corner warm even with "src" off.
        let bg_probe = [mm(3.5), mm(3.5), mm(0.1)];
        assert!(off.temperature_at(bg_probe).unwrap().value() > 40.05);
        // And the hottest spot moved off the (disabled) main source.
        let src_probe = [mm(1.5), mm(1.5), mm(0.1)];
        assert!(
            off.temperature_at(bg_probe).unwrap() > off.temperature_at(src_probe).unwrap(),
            "src must be off"
        );
    }

    #[test]
    fn preconditioner_choice_changes_iterations_not_answers() {
        let (design, spec) = grouped_slab();
        let mut ic = SolveContext::new(&design, &spec).unwrap();
        let mut jac = SolveContext::new(&design, &spec)
            .unwrap()
            .with_preconditioner(PreconditionerKind::Jacobi)
            .unwrap();
        assert_eq!(ic.preconditioner_name(), "ic0");
        assert_eq!(jac.preconditioner_name(), "jacobi");
        let a = ic.solve().unwrap();
        let b = jac.solve().unwrap();
        for (x, y) in a.temperatures().iter().zip(b.temperatures()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(ic.last_iterations() < jac.last_iterations());
    }

    #[test]
    fn default_kind_scales_with_system_size() {
        assert_eq!(
            SolveContext::default_steady_kind(SolveContext::MULTIGRID_CELL_THRESHOLD - 1),
            PreconditionerKind::IncompleteCholesky
        );
        assert!(matches!(
            SolveContext::default_steady_kind(SolveContext::MULTIGRID_CELL_THRESHOLD),
            PreconditionerKind::Multigrid { .. }
        ));
        // The tiny test meshes stay on IC(0).
        let (design, spec) = grouped_slab();
        let ctx = SolveContext::new(&design, &spec).unwrap();
        assert_eq!(ctx.preconditioner_name(), "ic0");
    }

    #[test]
    fn explicit_preconditioner_choice_propagates_factorization_failures() {
        // The defensive Jacobi downgrade belongs to the *default* engines
        // only: an explicitly requested kind that cannot build must error
        // (same contract as with_preconditioner), never silently run a
        // different preconditioner under the requested label.
        let (design, spec) = grouped_slab();
        let bad = PreconditionerKind::Multigrid {
            config: vcsel_numerics::MultigridConfig {
                strength_threshold: -1.0,
                ..Default::default()
            },
        };
        assert!(SolveContext::new_preconditioned(&design, &spec, bad).is_err());
        assert!(SolveContext::new_preconditioned(
            &design,
            &spec,
            PreconditionerKind::IncompleteCholesky
        )
        .is_ok());
    }

    #[test]
    fn adopted_design_repaints_powers_without_reassembly() {
        let (design, spec) = grouped_slab();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        let direct = ctx.solve_scaled(&[("src", 2.0)]).unwrap();

        // Same geometry, doubled source power: adopting must make scale 1.0
        // reproduce the old scale 2.0 field exactly.
        let mut doubled = design.clone();
        doubled.scale_group_power("src", 2.0);
        ctx.adopt_design(&doubled).unwrap();
        let adopted = ctx.solve_scaled(&[("src", 1.0)]).unwrap();
        for (a, b) in direct.temperatures().iter().zip(adopted.temperatures()) {
            assert!((a - b).abs() < 1e-9, "direct {a} vs adopted {b}");
        }
        assert!(
            (ctx.group_reference_power("src").unwrap() - 1.0).abs() < 1e-9,
            "reference power must track the adopted design"
        );
    }

    #[test]
    fn adopt_rejects_operator_changes() {
        let (design, spec) = grouped_slab();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();

        // A new block changes the painted conductivity.
        let mut regrown = design.clone();
        let extra =
            BoxRegion::new([mm(0.0), mm(0.0), mm(0.5)], [mm(1.0), mm(1.0), mm(1.0)]).unwrap();
        regrown.add_block(Block::passive("slug", extra, Material::COPPER));
        assert!(matches!(ctx.adopt_design(&regrown), Err(ThermalError::BadParameter { .. })));

        // Changed boundary conditions are rejected, too.
        let mut rechilled = design.clone();
        rechilled.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(9_999.0),
                ambient: Celsius::new(40.0),
            },
        );
        assert!(matches!(ctx.adopt_design(&rechilled), Err(ThermalError::BadParameter { .. })));
    }

    #[test]
    fn engine_and_hierarchy_share_one_fine_operator() {
        // The shared-operator contract: a multigrid engine must not hold a
        // second copy of the assembled matrix — the hierarchy's finest
        // level *is* the context's operator allocation.
        let (design, spec) = grouped_slab();
        let ctx = SolveContext::new_preconditioned(
            &design,
            &spec,
            PreconditionerKind::Multigrid { config: vcsel_numerics::MultigridConfig::default() },
        )
        .unwrap();
        let mg = ctx.preconditioner().as_multigrid().expect("multigrid engine");
        assert!(
            Arc::ptr_eq(ctx.shared_operator(), mg.hierarchy().fine_operator()),
            "hierarchy must alias the engine's operator, not clone it"
        );

        // Same story for the SSOR splitting (it used to clone the matrix).
        let ssor = SolveContext::new_preconditioned(
            &design,
            &spec,
            PreconditionerKind::Ssor { omega: 1.2 },
        )
        .unwrap();
        // Engine handle + SSOR handle = 2 strong counts, 1 allocation.
        assert_eq!(Arc::strong_count(ssor.shared_operator()), 2);
    }

    #[test]
    fn multigrid_engine_agrees_with_ic0_on_the_slab() {
        let (design, spec) = grouped_slab();
        let mut ic0 = SolveContext::new(&design, &spec).unwrap();
        let mut mg = SolveContext::new(&design, &spec)
            .unwrap()
            .with_preconditioner(PreconditionerKind::Multigrid {
                config: vcsel_numerics::MultigridConfig::default(),
            })
            .unwrap();
        assert_eq!(mg.preconditioner_name(), "multigrid");
        let a = ic0.solve().unwrap();
        let b = mg.solve().unwrap();
        for (x, y) in a.temperatures().iter().zip(b.temperatures()) {
            assert!((x - y).abs() < 1e-6, "ic0 {x} vs multigrid {y}");
        }
    }

    #[test]
    fn level_scheduled_apply_matches_serial_on_the_slab() {
        // Forcing the wavefront worker count pushes the cached IC(0)
        // factor onto the level-scheduled path even on one core and below
        // the size gate; the solved field must match the serial engine.
        let (design, spec) = grouped_slab();
        let mut serial = SolveContext::new(&design, &spec).unwrap().with_parallel_apply(false);
        let mut wavefront = SolveContext::new(&design, &spec).unwrap().with_apply_threads(3);
        assert!(
            wavefront.preconditioner().as_incomplete_cholesky().unwrap().runs_parallel(),
            "pinned workers must force the level-scheduled apply"
        );
        let a = serial.solve().unwrap();
        let b = wavefront.solve().unwrap();
        for (x, y) in a.temperatures().iter().zip(b.temperatures()) {
            assert!((x - y).abs() < 1e-6, "serial {x} vs level-scheduled {y}");
        }
        // Identical preconditioner arithmetic: identical CG trajectory.
        assert_eq!(serial.last_iterations(), wavefront.last_iterations());
        // The knob only lands on IC(0) engines.
        assert!(serial.set_parallel_apply(true));
        let mut jacobi = SolveContext::new(&design, &spec)
            .unwrap()
            .with_preconditioner(PreconditionerKind::Jacobi)
            .unwrap();
        assert!(!jacobi.set_parallel_apply(false));
    }

    #[test]
    fn batched_solve_matches_sequential_point_for_point() {
        let (design, spec) = grouped_slab();
        let scales = [0.0, 0.4, 1.0, 1.7, 2.5];
        let mut seq = SolveContext::new(&design, &spec).unwrap();
        let sequential: Vec<ThermalMap> =
            scales.iter().map(|&s| seq.solve_scaled(&[("src", s)]).unwrap()).collect();

        let mut batched = SolveContext::new(&design, &spec).unwrap();
        let paintings: Vec<Vec<(&str, f64)>> = scales.iter().map(|&s| vec![("src", s)]).collect();
        let refs: Vec<&[(&str, f64)]> = paintings.iter().map(Vec::as_slice).collect();
        let maps = batched.solve_batch(&refs).unwrap();
        assert_eq!(maps.len(), scales.len());
        for (i, (map, reference)) in maps.iter().zip(&sequential).enumerate() {
            let map = map.as_ref().unwrap();
            let scale = reference.temperatures().iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (a, b) in map.temperatures().iter().zip(reference.temperatures()) {
                assert!((a - b).abs() / scale < 1e-10, "point {i}: batched {a} vs sequential {b}");
            }
            assert!(
                (map.injected_power().value() - reference.injected_power().value()).abs() < 1e-12
            );
        }
        // Warm-start continuity: the batch leaves the field where the
        // sequential sweep would, so a repeat of the last point is free.
        batched.solve_scaled(&[("src", 2.5)]).unwrap();
        assert_eq!(batched.last_iterations(), 0);
    }

    #[test]
    fn poisoned_painting_fails_alone() {
        let (design, spec) = grouped_slab();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        let maps = ctx
            .solve_batch(&[&[("src", 1.0)], &[("ghost", 1.0)], &[("src", -3.0)], &[("src", 0.5)]])
            .unwrap();
        assert!(maps[0].is_ok());
        assert!(matches!(maps[1], Err(ThermalError::UnknownGroup { .. })));
        assert!(matches!(maps[2], Err(ThermalError::BadParameter { .. })));
        assert!(maps[3].is_ok());
    }

    #[test]
    fn empty_batch_is_empty() {
        let (design, spec) = grouped_slab();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        assert!(ctx.solve_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn validation() {
        let (design, spec) = grouped_slab();
        let mut ctx = SolveContext::new(&design, &spec).unwrap();
        assert!(matches!(
            ctx.solve_scaled(&[("nope", 1.0)]),
            Err(ThermalError::UnknownGroup { .. })
        ));
        assert!(ctx.solve_scaled(&[("src", -1.0)]).is_err());
        assert!(ctx.solve_scaled(&[("src", f64::NAN)]).is_err());
        assert!(ctx.solve_probes(&[], &[[mm(99.0), mm(0.0), mm(0.0)]]).is_err());
        assert_eq!(ctx.groups(), vec!["src"]);
        assert!(ctx.unknowns() > 0);
        assert_eq!(ctx.mesh().cell_count(), ctx.unknowns());
    }
}
