//! Non-uniform rectilinear meshing.
//!
//! "The structure of the system is discretized into small cubic cells that
//! match the distribution of the materials and the heat sources. […] we use
//! a fine-grain resolution with a cell size of 5 µm × 5 µm for meshing the
//! region containing the interfaces. For the rest of the system, we use a
//! coarser resolution" (paper Section IV-B / Figure 4).
//!
//! We realize this with a *tensor-product* mesh: each axis has its own
//! strictly-increasing tick vector. Block boundaries always become ticks, so
//! material interfaces coincide with cell faces; [`RefineRegion`]s impose a
//! smaller maximum cell size over the axis intervals they span.

use serde::{Deserialize, Serialize};
use vcsel_units::Meters;

use crate::{BoxRegion, Design, ThermalError};

/// One axis of the tensor-product mesh: a strictly increasing tick vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    ticks: Vec<f64>,
}

impl Axis {
    fn from_ticks(ticks: Vec<f64>) -> Result<Self, ThermalError> {
        if ticks.len() < 2 {
            return Err(ThermalError::BadRegion { reason: "axis needs at least two ticks".into() });
        }
        if ticks.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ThermalError::BadRegion {
                reason: "axis ticks must be strictly increasing".into(),
            });
        }
        Ok(Self { ticks })
    }

    /// Number of cells (= ticks − 1).
    pub fn cell_count(&self) -> usize {
        self.ticks.len() - 1
    }

    /// The tick positions in meters.
    pub fn ticks(&self) -> &[f64] {
        &self.ticks
    }

    /// Center coordinate of cell `i` in meters.
    #[inline]
    pub fn center(&self, i: usize) -> f64 {
        0.5 * (self.ticks[i] + self.ticks[i + 1])
    }

    /// Width of cell `i` in meters.
    #[inline]
    pub fn width(&self, i: usize) -> f64 {
        self.ticks[i + 1] - self.ticks[i]
    }

    /// Index of the cell containing coordinate `x` (meters); the last cell
    /// is closed on both sides so the domain max maps to the last cell.
    pub fn locate(&self, x: f64) -> Option<usize> {
        let n = self.cell_count();
        if x < self.ticks[0] || x > self.ticks[n] {
            return None;
        }
        if x >= self.ticks[n] {
            return Some(n - 1);
        }
        // partition_point: first tick > x, so the containing cell is one less.
        let hi = self.ticks.partition_point(|&t| t <= x);
        Some(hi.saturating_sub(1).min(n - 1))
    }

    /// Index range `[lo, hi)` of cells whose extent overlaps `[a, b]`
    /// (meters), snapping to ticks with a small tolerance.
    pub(crate) fn cell_range(&self, a: f64, b: f64) -> (usize, usize) {
        let eps = 1e-9 * (self.ticks[self.ticks.len() - 1] - self.ticks[0]).max(1e-12);
        let lo = self.ticks.partition_point(|&t| t < a - eps).min(self.cell_count());
        let hi = self.ticks.partition_point(|&t| t < b - eps).min(self.cell_count());
        (lo, hi)
    }
}

/// A box inside which the mesh must use cells no larger than `max_cell`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefineRegion {
    region: BoxRegion,
    max_cell: [f64; 3],
}

impl RefineRegion {
    /// Creates a refinement that caps the cell size at `max_cell` (same cap
    /// on all three axes) inside `region`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] if `max_cell` is not strictly
    /// positive and finite.
    pub fn new(region: BoxRegion, max_cell: Meters) -> Result<Self, ThermalError> {
        Self::per_axis(region, [max_cell; 3])
    }

    /// Creates a refinement with a per-axis cell-size cap.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] if any cap is not strictly
    /// positive and finite.
    pub fn per_axis(region: BoxRegion, max_cell: [Meters; 3]) -> Result<Self, ThermalError> {
        let raw = [max_cell[0].value(), max_cell[1].value(), max_cell[2].value()];
        if raw.iter().any(|&v| !(v > 0.0) || !v.is_finite()) {
            return Err(ThermalError::BadParameter {
                reason: format!("refinement cell size must be positive, got {raw:?}"),
            });
        }
        Ok(Self { region, max_cell: raw })
    }

    /// The refined region.
    pub fn region(&self) -> &BoxRegion {
        &self.region
    }

    /// The per-axis cell-size cap in meters.
    pub fn max_cell(&self) -> [Meters; 3] {
        [
            Meters::new(self.max_cell[0]),
            Meters::new(self.max_cell[1]),
            Meters::new(self.max_cell[2]),
        ]
    }
}

/// Meshing policy: global maximum cell size plus local refinements.
///
/// # Example
///
/// ```
/// use vcsel_thermal::{BoxRegion, MeshSpec, RefineRegion};
/// use vcsel_units::Meters;
///
/// // 500 µm everywhere, 5 µm over one interface (the paper's resolutions).
/// let oni = BoxRegion::with_size(
///     [Meters::from_millimeters(1.0); 3],
///     [Meters::from_micrometers(200.0); 3],
/// )?;
/// let spec = MeshSpec::uniform(Meters::from_micrometers(500.0))
///     .with_refinement(RefineRegion::new(oni, Meters::from_micrometers(5.0))?);
/// assert_eq!(spec.refinements().len(), 1);
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshSpec {
    max_cell: [f64; 3],
    refinements: Vec<RefineRegion>,
    cell_limit: usize,
}

impl MeshSpec {
    /// Default cap on the total number of cells (guards against accidental
    /// billion-cell meshes).
    pub const DEFAULT_CELL_LIMIT: usize = 20_000_000;

    /// Same maximum cell size on all three axes.
    ///
    /// # Panics
    ///
    /// Panics if `max_cell` is not strictly positive and finite.
    pub fn uniform(max_cell: Meters) -> Self {
        Self::per_axis([max_cell; 3])
    }

    /// Per-axis maximum cell size (e.g. coarse in x/y, fine in z to resolve
    /// thin layers).
    ///
    /// # Panics
    ///
    /// Panics if any size is not strictly positive and finite.
    pub fn per_axis(max_cell: [Meters; 3]) -> Self {
        let raw = [max_cell[0].value(), max_cell[1].value(), max_cell[2].value()];
        assert!(
            raw.iter().all(|&v| v > 0.0 && v.is_finite()),
            "cell sizes must be positive and finite, got {raw:?}"
        );
        Self { max_cell: raw, refinements: Vec::new(), cell_limit: Self::DEFAULT_CELL_LIMIT }
    }

    /// Adds a refinement region (builder style).
    #[must_use]
    pub fn with_refinement(mut self, refinement: RefineRegion) -> Self {
        self.refinements.push(refinement);
        self
    }

    /// Replaces the cell-count limit (builder style).
    #[must_use]
    pub fn with_cell_limit(mut self, limit: usize) -> Self {
        self.cell_limit = limit.max(8);
        self
    }

    /// The registered refinements.
    pub fn refinements(&self) -> &[RefineRegion] {
        &self.refinements
    }

    /// The cell-count limit.
    pub fn cell_limit(&self) -> usize {
        self.cell_limit
    }

    /// Global per-axis maximum cell size in meters.
    pub fn max_cell(&self) -> [Meters; 3] {
        [
            Meters::new(self.max_cell[0]),
            Meters::new(self.max_cell[1]),
            Meters::new(self.max_cell[2]),
        ]
    }
}

/// The tensor-product mesh of a design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    x: Axis,
    y: Axis,
    z: Axis,
}

impl Mesh {
    /// Builds the mesh for `design` under the `spec` policy.
    ///
    /// Block and refinement boundaries become ticks, then every interval is
    /// subdivided to satisfy the applicable maximum cell size.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::MeshTooLarge`] if the resulting cell count exceeds
    ///   the spec's limit.
    pub fn build(design: &Design, spec: &MeshSpec) -> Result<Self, ThermalError> {
        let x = Self::build_axis(design, spec, 0)?;
        let y = Self::build_axis(design, spec, 1)?;
        let z = Self::build_axis(design, spec, 2)?;
        let cells = x.cell_count() * y.cell_count() * z.cell_count();
        if cells > spec.cell_limit {
            return Err(ThermalError::MeshTooLarge { cells, limit: spec.cell_limit });
        }
        Ok(Self { x, y, z })
    }

    fn build_axis(design: &Design, spec: &MeshSpec, axis: usize) -> Result<Axis, ThermalError> {
        let lo = design.domain().min(axis).value();
        let hi = design.domain().max(axis).value();

        // 1. Collect breakpoints: domain + block + refinement boundaries
        //    (refinements pre-clamp, since they may legally overhang the
        //    domain).
        let mut breaks = vec![lo, hi];
        for b in design.blocks() {
            breaks.push(b.region().min(axis).value());
            breaks.push(b.region().max(axis).value());
        }
        let clamp_from = breaks.len();
        for r in &spec.refinements {
            breaks.push(r.region().min(axis).value());
            breaks.push(r.region().max(axis).value());
        }
        // Validate every breakpoint up front. The constructors reject
        // non-finite coordinates, but deserialized designs/specs bypass
        // them — and a NaN or infinite breakpoint downstream either
        // panics the sort, silently drops a block boundary, or explodes
        // the interval subdivision.
        if let Some(bad) = breaks.iter().find(|v| !v.is_finite()) {
            return Err(ThermalError::BadRegion {
                reason: format!(
                    "non-finite mesh breakpoint {bad} on axis {axis}; the domain, a block or \
                     a refinement region carries a non-finite coordinate"
                ),
            });
        }
        let extent = hi - lo;
        let eps = 1e-9 * extent.max(1e-12);
        for v in &mut breaks[clamp_from..] {
            *v = v.clamp(lo, hi);
        }
        breaks.retain(|v| *v >= lo - eps && *v <= hi + eps);
        breaks.sort_by(f64::total_cmp);
        breaks.dedup_by(|a, b| (*a - *b).abs() <= eps);

        // 2. Subdivide each interval to meet the finest applicable cap.
        let mut ticks = Vec::with_capacity(breaks.len() * 2);
        for w in breaks.windows(2) {
            let (a, b) = (w[0], w[1]);
            let mid = 0.5 * (a + b);
            let mut cap = spec.max_cell[axis];
            for r in &spec.refinements {
                let rmin = r.region().min(axis).value();
                let rmax = r.region().max(axis).value();
                if mid > rmin && mid < rmax {
                    cap = cap.min(r.max_cell[axis]);
                }
            }
            let n = ((b - a) / cap).ceil().max(1.0) as usize;
            for i in 0..n {
                ticks.push(a + (b - a) * i as f64 / n as f64);
            }
        }
        ticks.push(hi);
        Axis::from_ticks(ticks)
    }

    /// The x axis.
    pub fn x(&self) -> &Axis {
        &self.x
    }

    /// The y axis.
    pub fn y(&self) -> &Axis {
        &self.y
    }

    /// The z axis.
    pub fn z(&self) -> &Axis {
        &self.z
    }

    /// Axis by index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics for `a >= 3` — the index is a documented contract (callers
    /// iterate `0..3`), not runtime input.
    pub fn axis(&self, a: usize) -> &Axis {
        match a {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis index must be 0..3, got {a}"),
        }
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.x.cell_count() * self.y.cell_count() * self.z.cell_count()
    }

    /// Per-axis cell counts `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.x.cell_count(), self.y.cell_count(), self.z.cell_count())
    }

    /// Linear index of cell `(i, j, k)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.x.cell_count());
        debug_assert!(j < self.y.cell_count());
        debug_assert!(k < self.z.cell_count());
        (k * self.y.cell_count() + j) * self.x.cell_count() + i
    }

    /// Inverse of [`Mesh::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let nx = self.x.cell_count();
        let ny = self.y.cell_count();
        let i = idx % nx;
        let j = (idx / nx) % ny;
        let k = idx / (nx * ny);
        (i, j, k)
    }

    /// Center of cell `idx` in raw meters.
    pub(crate) fn cell_center_raw(&self, idx: usize) -> [f64; 3] {
        let (i, j, k) = self.coords(idx);
        [self.x.center(i), self.y.center(j), self.z.center(k)]
    }

    /// Center of cell `idx`.
    pub fn cell_center(&self, idx: usize) -> [Meters; 3] {
        let c = self.cell_center_raw(idx);
        [Meters::new(c[0]), Meters::new(c[1]), Meters::new(c[2])]
    }

    /// Volume of cell `idx` in cubic meters.
    pub fn cell_volume(&self, idx: usize) -> f64 {
        let (i, j, k) = self.coords(idx);
        self.x.width(i) * self.y.width(j) * self.z.width(k)
    }

    /// Linear index of the cell containing `point`, if inside the domain.
    pub fn locate(&self, point: [Meters; 3]) -> Option<usize> {
        let i = self.x.locate(point[0].value())?;
        let j = self.y.locate(point[1].value())?;
        let k = self.z.locate(point[2].value())?;
        Some(self.index(i, j, k))
    }

    /// Iterates over the linear indices of all cells whose centers lie in
    /// `region`.
    pub fn cells_in(&self, region: &BoxRegion) -> Vec<usize> {
        let (x0, x1) = self.x.cell_range(region.min(0).value(), region.max(0).value());
        let (y0, y1) = self.y.cell_range(region.min(1).value(), region.max(1).value());
        let (z0, z1) = self.z.cell_range(region.min(2).value(), region.max(2).value());
        let mut out = Vec::with_capacity((x1 - x0) * (y1 - y0) * (z1 - z0));
        for k in z0..z1 {
            for j in y0..y1 {
                for i in x0..x1 {
                    out.push(self.index(i, j, k));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Material;

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn slab_design() -> Design {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(10.0), mm(8.0), mm(1.0)]).unwrap();
        Design::new(domain, Material::SILICON).unwrap()
    }

    #[test]
    fn non_finite_breakpoints_are_rejected_not_panicked() {
        // The geometry constructors validate finiteness, but a
        // deserialized design bypasses them (serde fills fields
        // directly) — a JSON `1e999` parses to +∞. Before the up-front
        // breakpoint validation this either panicked the breakpoint sort
        // deep inside mesh construction or made the interval subdivision
        // attempt ~usize::MAX ticks; now it is a typed error.
        let mut d = slab_design();
        let block =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(2.0), mm(2.0), mm(0.5)]).unwrap();
        d.add_block(crate::Block::passive("b", block, Material::COPPER));
        let json = serde_json::to_string(&d).expect("serializes");

        // Poison the domain max (10 mm) and, separately, a block corner.
        for (needle, what) in [("0.01", "domain max"), ("0.002", "block corner")] {
            let poisoned = json.replacen(needle, "1e999", 1);
            assert_ne!(poisoned, json, "replacement must hit ({what})");
            let bad: Design = serde_json::from_str(&poisoned).expect("deserializes");
            let err = Mesh::build(&bad, &MeshSpec::uniform(mm(1.0)))
                .expect_err("non-finite breakpoint must be rejected");
            match err {
                ThermalError::BadRegion { reason } => {
                    assert!(reason.contains("non-finite"), "unexpected reason: {reason} ({what})");
                }
                other => panic!("expected BadRegion, got {other:?} ({what})"),
            }
        }
    }

    #[test]
    fn uniform_mesh_counts() {
        let d = slab_design();
        let m = Mesh::build(&d, &MeshSpec::uniform(mm(1.0))).unwrap();
        assert_eq!(m.shape(), (10, 8, 1));
        assert_eq!(m.cell_count(), 80);
    }

    #[test]
    fn volume_is_conserved() {
        let d = slab_design();
        let spec = MeshSpec::per_axis([mm(0.7), mm(1.0), mm(0.3)]);
        let m = Mesh::build(&d, &spec).unwrap();
        let total: f64 = (0..m.cell_count()).map(|i| m.cell_volume(i)).sum();
        assert!((total - d.domain().volume().value()).abs() < 1e-15);
    }

    #[test]
    fn block_boundaries_become_ticks() {
        let mut d = slab_design();
        let block = BoxRegion::new([mm(2.35), mm(1.2), Meters::ZERO], [mm(3.11), mm(2.2), mm(0.4)])
            .unwrap();
        d.add_block(crate::Block::passive("b", block, Material::COPPER));
        let m = Mesh::build(&d, &MeshSpec::uniform(mm(5.0))).unwrap();
        let has = |axis: &Axis, v: f64| axis.ticks().iter().any(|t| (t - v).abs() < 1e-12);
        assert!(has(m.x(), 2.35e-3));
        assert!(has(m.x(), 3.11e-3));
        assert!(has(m.y(), 1.2e-3));
        assert!(has(m.z(), 0.4e-3));
    }

    #[test]
    fn refinement_caps_cell_size() {
        let d = slab_design();
        let fine =
            BoxRegion::new([mm(4.0), mm(4.0), Meters::ZERO], [mm(5.0), mm(5.0), mm(1.0)]).unwrap();
        let spec = MeshSpec::uniform(mm(1.0))
            .with_refinement(RefineRegion::new(fine, Meters::from_micrometers(100.0)).unwrap());
        let m = Mesh::build(&d, &spec).unwrap();
        // Inside the refined x-range, every cell must be <= 100 µm wide.
        for i in 0..m.x().cell_count() {
            let c = m.x().center(i);
            if c > 4.0e-3 && c < 5.0e-3 {
                assert!(m.x().width(i) <= 100.1e-6, "cell {i} too wide: {}", m.x().width(i));
            }
        }
        // Outside, at least one cell should be near the coarse size.
        let coarse_exists = (0..m.x().cell_count()).any(|i| m.x().width(i) > 0.5e-3);
        assert!(coarse_exists);
    }

    #[test]
    fn cell_limit_enforced() {
        let d = slab_design();
        let spec = MeshSpec::uniform(Meters::from_micrometers(10.0)).with_cell_limit(1000);
        match Mesh::build(&d, &spec) {
            Err(ThermalError::MeshTooLarge { cells, limit }) => {
                assert!(cells > limit);
            }
            other => panic!("expected MeshTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn locate_and_index_round_trip() {
        let d = slab_design();
        let m = Mesh::build(&d, &MeshSpec::uniform(mm(1.0))).unwrap();
        for idx in [0, 7, 35, m.cell_count() - 1] {
            let c = m.cell_center(idx);
            assert_eq!(m.locate(c), Some(idx));
            let (i, j, k) = m.coords(idx);
            assert_eq!(m.index(i, j, k), idx);
        }
        // Outside the domain.
        assert_eq!(m.locate([mm(-1.0), mm(1.0), mm(0.5)]), None);
        assert_eq!(m.locate([mm(11.0), mm(1.0), mm(0.5)]), None);
    }

    #[test]
    fn domain_max_maps_to_last_cell() {
        let d = slab_design();
        let m = Mesh::build(&d, &MeshSpec::uniform(mm(1.0))).unwrap();
        let idx = m.locate([mm(10.0), mm(8.0), mm(1.0)]).expect("max corner is inside");
        assert_eq!(idx, m.cell_count() - 1);
    }

    #[test]
    fn cells_in_region() {
        let d = slab_design();
        let m = Mesh::build(&d, &MeshSpec::uniform(mm(1.0))).unwrap();
        let region =
            BoxRegion::new([mm(0.0), mm(0.0), Meters::ZERO], [mm(3.0), mm(2.0), mm(1.0)]).unwrap();
        let cells = m.cells_in(&region);
        assert_eq!(cells.len(), 6);
        for idx in cells {
            let c = m.cell_center(idx);
            assert!(region.contains(c));
        }
    }

    #[test]
    fn axis_locate_edges() {
        let d = slab_design();
        let m = Mesh::build(&d, &MeshSpec::uniform(mm(1.0))).unwrap();
        assert_eq!(m.x().locate(0.0), Some(0));
        assert_eq!(m.x().locate(0.5e-3), Some(0));
        assert_eq!(m.x().locate(1.0e-3), Some(1)); // tick belongs to upper cell
        assert_eq!(m.x().locate(10.0e-3), Some(9));
        assert_eq!(m.x().locate(10.1e-3), None);
    }
}
