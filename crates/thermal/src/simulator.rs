//! The steady-state solve driver.

use vcsel_numerics::solver::SolveOptions;

use crate::{Design, Mesh, MeshSpec, SolveContext, ThermalError, ThermalMap};

/// Steady-state thermal simulator (the IcTherm-equivalent entry point).
///
/// Stateless apart from solver options, so one simulator can be reused
/// across designs and sweeps.
///
/// # Example
///
/// ```
/// use vcsel_thermal::{
///     Block, Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, Simulator,
/// };
/// use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};
///
/// let domain = BoxRegion::with_size(
///     [Meters::ZERO; 3],
///     [Meters::from_millimeters(2.0), Meters::from_millimeters(2.0),
///      Meters::from_millimeters(0.5)],
/// )?;
/// let mut design = Design::new(domain, Material::SILICON)?;
/// design.set_boundary(Boundary::top(), BoundaryCondition::Convective {
///     h: WattsPerSquareMeterKelvin::new(5_000.0),
///     ambient: Celsius::new(40.0),
/// });
/// let src = BoxRegion::with_size(
///     [Meters::from_millimeters(0.8), Meters::from_millimeters(0.8), Meters::ZERO],
///     [Meters::from_millimeters(0.4), Meters::from_millimeters(0.4),
///      Meters::from_millimeters(0.1)],
/// )?;
/// design.add_block(Block::heat_source("hot", src, Material::COPPER,
///                                     Watts::from_milliwatts(100.0)));
///
/// let map = Simulator::new()
///     .solve(&design, &MeshSpec::uniform(Meters::from_micrometers(200.0)))?;
/// // The source region is hotter than ambient and the map conserves energy.
/// assert!(map.hottest().1 > Celsius::new(40.0));
/// assert!(map.energy_balance_defect() < 1e-6);
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    options: SolveOptions,
}

impl Simulator {
    /// Simulator with default solver options (CG, 1e-9 relative residual).
    pub fn new() -> Self {
        Self { options: SolveOptions { tolerance: 1e-9, max_iterations: 50_000, relaxation: 1.6 } }
    }

    /// Overrides the linear-solver options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// The active solver options.
    pub fn options(&self) -> &SolveOptions {
        &self.options
    }

    /// Meshes the design and solves for the steady-state temperature field.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::NoHeatPath`] if every boundary is adiabatic,
    /// * [`ThermalError::MeshTooLarge`] if the spec exceeds its cell limit,
    /// * [`ThermalError::BadParameter`] for invalid powers/coefficients,
    /// * [`ThermalError::Solver`] if CG fails to converge.
    pub fn solve(&self, design: &Design, spec: &MeshSpec) -> Result<ThermalMap, ThermalError> {
        let mesh = Mesh::build(design, spec)?;
        self.solve_on(design, mesh)
    }

    /// Solves on an already-built mesh (lets sweeps reuse the mesh).
    ///
    /// One-shot solves route through the same [`SolveContext`] engine the
    /// cached paths use, so every caller gets the size-matched default
    /// preconditioner — IC(0) on small meshes, the smoothed-aggregation
    /// multigrid hierarchy at or above
    /// [`SolveContext::MULTIGRID_CELL_THRESHOLD`] unknowns (which is what
    /// makes `Fidelity::Paper` steady maps tractable). Code that solves
    /// the same design repeatedly should hold a [`SolveContext`] directly
    /// and keep its warm starts.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::solve`].
    pub fn solve_on(&self, design: &Design, mesh: Mesh) -> Result<ThermalMap, ThermalError> {
        let mut ctx = SolveContext::on_mesh(design, mesh)?.with_options(self.options);
        ctx.solve()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Boundary, BoundaryCondition, BoxRegion, Material};
    use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    /// 1-D composite-wall validation: silicon slab, uniform heat flux
    /// injected at the bottom, convective top. The analytic solution is
    /// T_bottom = T_amb + q''·(t/k + 1/h), T_top = T_amb + q''/h.
    #[test]
    fn one_dimensional_slab_matches_analytic() {
        let a = 2.0e-3; // 2 mm x 2 mm column
        let t = 1.0e-3; // 1 mm thick
        let h = 2_000.0;
        let ambient = 30.0;
        let power = 0.5; // W
        let domain =
            BoxRegion::new([Meters::ZERO; 3], [Meters::new(a), Meters::new(a), Meters::new(t)])
                .unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(h),
                ambient: Celsius::new(ambient),
            },
        );
        // Thin heater covering the whole bottom -> 1-D heat flow.
        let heater = BoxRegion::new(
            [Meters::ZERO; 3],
            [Meters::new(a), Meters::new(a), Meters::new(t / 50.0)],
        )
        .unwrap();
        d.add_block(Block::heat_source("heater", heater, Material::SILICON, Watts::new(power)));

        let map = Simulator::new()
            .solve(&d, &MeshSpec::per_axis([mm(1.0), mm(1.0), Meters::new(t / 50.0)]))
            .unwrap();

        let area = a * a;
        let flux = power / area;
        let k = Material::SILICON.conductivity().value();
        let t_top_expected = ambient + flux / h;
        let t_bottom_expected = ambient + flux * (1.0 / h + (t - t / 100.0) / k);

        let t_top = map.temperature_at([mm(1.0), mm(1.0), Meters::new(t * 0.999)]).unwrap();
        let t_bottom = map.temperature_at([mm(1.0), mm(1.0), Meters::new(t / 100.0)]).unwrap();
        assert!(
            (t_top.value() - t_top_expected).abs() < 0.5,
            "top: got {}, expected {t_top_expected}",
            t_top.value()
        );
        assert!(
            (t_bottom.value() - t_bottom_expected).abs() < 0.5,
            "bottom: got {}, expected {t_bottom_expected}",
            t_bottom.value()
        );
        assert!(map.energy_balance_defect() < 1e-6);
    }

    /// With no power anywhere, the field must settle at the ambient.
    #[test]
    fn zero_power_settles_to_ambient() {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(3.0), mm(3.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::COPPER).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(100.0),
                ambient: Celsius::new(42.0),
            },
        );
        let map = Simulator::new().solve(&d, &MeshSpec::uniform(mm(0.5))).unwrap();
        for &t in map.temperatures() {
            assert!((t - 42.0).abs() < 1e-6, "expected uniform 42 °C, got {t}");
        }
    }

    /// Isothermal boundary pins the adjacent cells near the set temperature.
    #[test]
    fn isothermal_boundary_pins_temperature() {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(2.0), mm(2.0), mm(2.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::bottom(),
            BoundaryCondition::Isothermal { temperature: Celsius::new(20.0) },
        );
        let src = BoxRegion::new([mm(0.5), mm(0.5), mm(1.5)], [mm(1.5), mm(1.5), mm(2.0)]).unwrap();
        d.add_block(Block::heat_source("s", src, Material::SILICON, Watts::new(0.1)));
        let map = Simulator::new().solve(&d, &MeshSpec::uniform(mm(0.25))).unwrap();
        // Bottom cells sit within a fraction of a degree of the plate.
        let t = map.temperature_at([mm(1.0), mm(1.0), Meters::new(1e-6)]).unwrap();
        assert!(t.value() >= 20.0 && t.value() < 21.0, "got {t}");
        // Source region is the hottest part.
        let (_, hottest) = map.hottest();
        let t_src = map.temperature_at([mm(1.0), mm(1.0), mm(1.75)]).unwrap();
        assert!((hottest.value() - t_src.value()).abs() < 0.5);
        assert!(map.energy_balance_defect() < 1e-6);
    }

    /// Doubling every power must exactly double every temperature rise
    /// (linearity of the discrete operator).
    #[test]
    fn linearity_in_power() {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let build = |p: f64| {
            let mut d = Design::new(domain, Material::SILICON).unwrap();
            d.set_boundary(
                Boundary::top(),
                BoundaryCondition::Convective {
                    h: WattsPerSquareMeterKelvin::new(3_000.0),
                    ambient: Celsius::new(40.0),
                },
            );
            let src = BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(2.0), mm(0.2)])
                .unwrap();
            d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(p)));
            d
        };
        let sim = Simulator::new().with_options(SolveOptions {
            tolerance: 1e-12,
            max_iterations: 50_000,
            relaxation: 1.6,
        });
        let spec = MeshSpec::uniform(mm(0.5));
        let m1 = sim.solve(&build(1.0), &spec).unwrap();
        let m2 = sim.solve(&build(2.0), &spec).unwrap();
        for (a, b) in m1.temperatures().iter().zip(m2.temperatures()) {
            let rise1 = a - 40.0;
            let rise2 = b - 40.0;
            assert!((rise2 - 2.0 * rise1).abs() < 1e-6, "rise {rise1} vs {rise2}");
        }
    }

    /// A symmetric design must produce a symmetric field.
    #[test]
    fn mirror_symmetry() {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(2.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(25.0),
            },
        );
        // Source centered in x.
        let src =
            BoxRegion::new([mm(1.5), mm(0.5), Meters::ZERO], [mm(2.5), mm(1.5), mm(0.2)]).unwrap();
        d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(0.5)));
        let map = Simulator::new().solve(&d, &MeshSpec::uniform(mm(0.25))).unwrap();
        let left = map.temperature_at([mm(0.625), mm(1.0), mm(0.5)]).unwrap();
        let right = map.temperature_at([mm(3.375), mm(1.0), mm(0.5)]).unwrap();
        assert!((left.value() - right.value()).abs() < 1e-6, "asymmetry: {left} vs {right}");
    }

    /// Heat spreads better through copper than oxide: the hot spot over a
    /// low-conductivity layer is hotter.
    #[test]
    fn conductivity_ordering_affects_peak() {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let peak = |material: Material| {
            let mut d = Design::new(domain, Material::SILICON).unwrap();
            d.set_boundary(
                Boundary::top(),
                BoundaryCondition::Convective {
                    h: WattsPerSquareMeterKelvin::new(2_000.0),
                    ambient: Celsius::new(25.0),
                },
            );
            let layer = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(0.5)]).unwrap();
            d.add_block(Block::passive("layer", layer, material));
            let src = BoxRegion::new([mm(1.8), mm(1.8), Meters::ZERO], [mm(2.2), mm(2.2), mm(0.1)])
                .unwrap();
            d.add_block(Block::heat_source("s", src, Material::SILICON, Watts::new(0.2)));
            let map = Simulator::new().solve(&d, &MeshSpec::uniform(mm(0.2))).unwrap();
            map.hottest().1
        };
        let hot_oxide = peak(Material::SILICON_DIOXIDE);
        let hot_copper = peak(Material::COPPER);
        assert!(
            hot_oxide.value() > hot_copper.value() + 1.0,
            "oxide {hot_oxide} should be much hotter than copper {hot_copper}"
        );
    }
}
