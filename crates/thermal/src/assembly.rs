//! Finite-volume assembly of the steady-state conduction system.
//!
//! For each cell i with neighbors j: Σ_j G_ij (T_j − T_i) + q_i = 0, with the
//! face conductance between adjacent cells computed from the two half-cell
//! resistances in series (harmonic mean for unequal materials/sizes):
//!
//! ```text
//!            A_face
//! G_ij = ------------------------
//!        d_i/(2 k_i) + d_j/(2 k_j)
//! ```
//!
//! Convective (Robin) faces add `G = A / (d/(2k) + 1/h)` to the diagonal and
//! `G·T_amb` to the right-hand side; isothermal faces omit the `1/h` term.
//! The resulting matrix is symmetric positive definite as long as at least
//! one face provides a heat path.

use vcsel_numerics::{CsrMatrix, TripletBuilder};

use crate::boundary::{Boundary, BoundaryCondition};
use crate::{Design, Mesh, ThermalError};

/// One boundary-face coupling retained for post-solve heat-flow accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BoundaryFace {
    /// Cell adjacent to the face.
    pub cell: usize,
    /// Conductance to the external reference (W/K).
    pub conductance: f64,
    /// External reference temperature (°C).
    pub reference: f64,
}

/// The assembled linear system plus bookkeeping for queries.
#[derive(Debug, Clone)]
pub(crate) struct Discretization {
    pub matrix: CsrMatrix,
    pub rhs: Vec<f64>,
    /// Per-cell injected power in watts.
    pub cell_power: Vec<f64>,
    /// Boundary couplings for energy-balance checks.
    pub boundary_faces: Vec<BoundaryFace>,
}

/// Paints the per-cell conductivity: background first, then blocks in
/// insertion order (later blocks override).
pub(crate) fn paint_conductivity(design: &Design, mesh: &Mesh) -> Vec<f64> {
    let mut k = vec![design.background().conductivity().value(); mesh.cell_count()];
    for block in design.blocks() {
        let kb = block.material().conductivity().value();
        for idx in mesh.cells_in(block.region()) {
            k[idx] = kb;
        }
    }
    k
}

/// Distributes every block's power over the cells it covers, proportional to
/// cell volume.
pub(crate) fn paint_power(design: &Design, mesh: &Mesh) -> Result<Vec<f64>, ThermalError> {
    let mut q = vec![0.0; mesh.cell_count()];
    for block in design.blocks() {
        let p = block.power().value();
        if p == 0.0 {
            continue;
        }
        if !p.is_finite() || p < 0.0 {
            return Err(ThermalError::BadParameter {
                reason: format!("block '{}' has invalid power {p} W", block.name()),
            });
        }
        let cells = mesh.cells_in(block.region());
        if cells.is_empty() {
            // The mesh always puts ticks on block boundaries, so a block
            // covers at least one cell; keep a defensive fallback anyway.
            let center = block.region().center();
            let idx = mesh.locate(center).ok_or_else(|| ThermalError::BlockOutsideDomain {
                block: block.name().to_string(),
            })?;
            q[idx] += p;
            continue;
        }
        let total_volume: f64 = cells.iter().map(|&c| mesh.cell_volume(c)).sum();
        for &c in &cells {
            q[c] += p * mesh.cell_volume(c) / total_volume;
        }
    }
    Ok(q)
}

/// Assembles the FVM system for `design` on `mesh`.
pub(crate) fn assemble(design: &Design, mesh: &Mesh) -> Result<Discretization, ThermalError> {
    if !design.boundaries().has_heat_path() {
        return Err(ThermalError::NoHeatPath);
    }

    let k = paint_conductivity(design, mesh);
    let q = paint_power(design, mesh)?;

    let (nx, ny, nz) = mesh.shape();
    let n = mesh.cell_count();
    // 7-point stencil: diagonal + up to 6 neighbors.
    let mut builder = TripletBuilder::with_capacity(n, n, 7 * n);
    let mut rhs = q.clone();
    let mut boundary_faces = Vec::new();

    for kz in 0..nz {
        for jy in 0..ny {
            for ix in 0..nx {
                let idx = mesh.index(ix, jy, kz);
                let widths = [mesh.x().width(ix), mesh.y().width(jy), mesh.z().width(kz)];
                let faces = [widths[1] * widths[2], widths[0] * widths[2], widths[0] * widths[1]];

                // Interior couplings: only the +axis neighbor per axis so
                // each face is assembled exactly once (symmetrically).
                let neighbors = [
                    (0usize, ix + 1 < nx, mesh_index_checked(mesh, ix + 1, jy, kz, 0)),
                    (1usize, jy + 1 < ny, mesh_index_checked(mesh, ix, jy + 1, kz, 1)),
                    (2usize, kz + 1 < nz, mesh_index_checked(mesh, ix, jy, kz + 1, 2)),
                ];
                for &(axis, exists, nbr) in &neighbors {
                    if !exists {
                        continue;
                    }
                    let nbr = nbr.expect("neighbor exists");
                    let d_i = widths[axis];
                    let d_j = match axis {
                        0 => mesh.x().width(ix + 1),
                        1 => mesh.y().width(jy + 1),
                        _ => mesh.z().width(kz + 1),
                    };
                    let r = d_i / (2.0 * k[idx]) + d_j / (2.0 * k[nbr]);
                    let g = faces[axis] / r;
                    builder.add(idx, idx, g);
                    builder.add(nbr, nbr, g);
                    builder.add(idx, nbr, -g);
                    builder.add(nbr, idx, -g);
                }

                // Boundary faces.
                for face in Boundary::all() {
                    let axis = face.axis();
                    let on_boundary = match face {
                        Boundary::XMin => ix == 0,
                        Boundary::XMax => ix == nx - 1,
                        Boundary::YMin => jy == 0,
                        Boundary::YMax => jy == ny - 1,
                        Boundary::ZMin => kz == 0,
                        Boundary::ZMax => kz == nz - 1,
                    };
                    if !on_boundary {
                        continue;
                    }
                    let bc = design.boundaries().get(face);
                    let half = widths[axis] / (2.0 * k[idx]);
                    let (g, t_ref) = match bc {
                        BoundaryCondition::Adiabatic => continue,
                        BoundaryCondition::Convective { h, ambient } => {
                            let hv = h.value();
                            if !(hv > 0.0) || !hv.is_finite() {
                                return Err(ThermalError::BadParameter {
                                    reason: format!(
                                        "convective coefficient must be positive, got {hv}"
                                    ),
                                });
                            }
                            (faces[axis] / (half + 1.0 / hv), ambient.value())
                        }
                        BoundaryCondition::Isothermal { temperature } => {
                            (faces[axis] / half, temperature.value())
                        }
                    };
                    builder.add(idx, idx, g);
                    rhs[idx] += g * t_ref;
                    boundary_faces.push(BoundaryFace {
                        cell: idx,
                        conductance: g,
                        reference: t_ref,
                    });
                }
            }
        }
    }

    let matrix = builder.build();
    // The FVM conduction operator must come out structurally valid and
    // symmetric with a positive diagonal; catch assembly bugs here rather
    // than as solver divergence (debug builds only — the check is O(nnz log)).
    debug_assert!(
        matrix.validate_symmetric().is_ok(),
        "FVM assembly produced an invalid operator: {:?}",
        matrix.validate_symmetric().err()
    );
    Ok(Discretization { matrix, rhs, cell_power: q, boundary_faces })
}

fn mesh_index_checked(mesh: &Mesh, i: usize, j: usize, k: usize, _axis: usize) -> Option<usize> {
    let (nx, ny, nz) = mesh.shape();
    if i < nx && j < ny && k < nz {
        Some(mesh.index(i, j, k))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, BoundaryCondition, BoxRegion, Material, MeshSpec};
    use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn cooled_slab() -> Design {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(1e4),
                ambient: Celsius::new(25.0),
            },
        );
        d
    }

    #[test]
    fn adiabatic_only_is_rejected() {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(1.0), mm(1.0), mm(1.0)]).unwrap();
        let d = Design::new(domain, Material::SILICON).unwrap();
        let mesh = Mesh::build(&d, &MeshSpec::uniform(mm(0.5))).unwrap();
        assert!(matches!(assemble(&d, &mesh), Err(ThermalError::NoHeatPath)));
    }

    #[test]
    fn matrix_is_symmetric_and_dominant() {
        let mut d = cooled_slab();
        let src =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(2.0), mm(2.0), mm(0.2)]).unwrap();
        d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(1.0)));
        let mesh = Mesh::build(&d, &MeshSpec::uniform(mm(0.5))).unwrap();
        let disc = assemble(&d, &mesh).unwrap();
        assert!(disc.matrix.is_symmetric(1e-12));
        assert!(disc.matrix.is_diagonally_dominant());
    }

    #[test]
    fn power_is_conserved_in_painting() {
        let mut d = cooled_slab();
        let src =
            BoxRegion::new([mm(0.3), mm(0.3), Meters::ZERO], [mm(3.7), mm(2.9), mm(0.35)]).unwrap();
        d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(2.5)));
        let mesh = Mesh::build(&d, &MeshSpec::uniform(mm(0.4))).unwrap();
        let q = paint_power(&d, &mesh).unwrap();
        let total: f64 = q.iter().sum();
        assert!((total - 2.5).abs() < 1e-12, "painted {total} W");
    }

    #[test]
    fn conductivity_painting_respects_precedence() {
        let mut d = cooled_slab();
        let big = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(0.5)]).unwrap();
        let small =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(2.0), mm(2.0), mm(0.5)]).unwrap();
        d.add_block(Block::passive("oxide", big, Material::SILICON_DIOXIDE));
        d.add_block(Block::passive("plug", small, Material::COPPER));
        let mesh = Mesh::build(&d, &MeshSpec::uniform(mm(0.5))).unwrap();
        let k = paint_conductivity(&d, &mesh);
        let inside = mesh.locate([mm(1.25), mm(1.25), mm(0.25)]).unwrap();
        let oxide = mesh.locate([mm(3.75), mm(3.75), mm(0.25)]).unwrap();
        let background = mesh.locate([mm(3.75), mm(3.75), mm(0.75)]).unwrap();
        assert_eq!(k[inside], Material::COPPER.conductivity().value());
        assert_eq!(k[oxide], Material::SILICON_DIOXIDE.conductivity().value());
        assert_eq!(k[background], Material::SILICON.conductivity().value());
    }

    #[test]
    fn negative_power_rejected() {
        let mut d = cooled_slab();
        let src =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(2.0), mm(2.0), mm(0.2)]).unwrap();
        let mut block = Block::heat_source("s", src, Material::COPPER, Watts::new(1.0));
        block.set_power(Watts::new(-1.0));
        d.add_block(block);
        let mesh = Mesh::build(&d, &MeshSpec::uniform(mm(0.5))).unwrap();
        assert!(matches!(assemble(&d, &mesh), Err(ThermalError::BadParameter { .. })));
    }

    #[test]
    fn boundary_faces_cover_convective_face() {
        let d = cooled_slab();
        let mesh = Mesh::build(&d, &MeshSpec::uniform(mm(1.0))).unwrap();
        let disc = assemble(&d, &mesh).unwrap();
        // 4x4 top faces, one convective coupling each.
        assert_eq!(disc.boundary_faces.len(), 16);
        for f in &disc.boundary_faces {
            assert!(f.conductance > 0.0);
            assert_eq!(f.reference, 25.0);
        }
    }
}
