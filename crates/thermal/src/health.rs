//! Solve-health reporting for the fault-tolerant thermal engines.
//!
//! Every [`SolveContext`](crate::SolveContext) /
//! [`TransientStepper`](crate::TransientStepper) solve now runs through a
//! [`SolveLadder`](vcsel_numerics::SolveLadder), which may silently recover
//! from a preconditioner breakdown by escalating to a weaker rung. That
//! recovery must not be *invisible*: the scenario engine and the runtime-
//! management loop both need to know a solve was degraded (it costs
//! iterations and signals failing hardware models). [`SolveHealth`] is the
//! per-solve report they read.

use vcsel_numerics::{LadderSummary, RungAttempt};

/// Health report of the most recent ladder-backed solve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveHealth {
    /// Whether the final rung met the tolerance. The engines convert a
    /// `false` into a typed error, so after an `Ok` solve this is always
    /// `true` — the field matters when inspecting health after an `Err`.
    pub converged: bool,
    /// `true` when the solve only succeeded by escalating past at least
    /// one failed rung — converged, but on degraded (weaker) numerics.
    pub recovered: bool,
    /// CG iterations of the deciding attempt.
    pub iterations: usize,
    /// CG iterations across every attempt, including failed rungs — the
    /// honest cost of the solve.
    pub total_iterations: usize,
    /// Relative residual of the deciding attempt.
    pub residual: f64,
    /// Rungs retired during the solve.
    pub escalations: usize,
    /// The per-rung story, in attempt order.
    pub attempts: Vec<RungAttempt>,
}

impl SolveHealth {
    /// Builds the report from a ladder solve's summary and attempt log.
    pub fn from_ladder(summary: LadderSummary, attempts: &[RungAttempt]) -> Self {
        Self {
            converged: summary.converged,
            recovered: summary.converged && summary.escalations > 0,
            iterations: summary.iterations,
            total_iterations: summary.total_iterations,
            residual: summary.residual,
            escalations: summary.escalations,
            attempts: attempts.to_vec(),
        }
    }

    /// `true` when the solve converged on its first attempt with no
    /// escalations — the everyday case.
    pub fn is_clean(&self) -> bool {
        self.converged && self.escalations == 0
    }
}
