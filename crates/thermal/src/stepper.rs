//! Stateful transient stepping with time-varying group powers.
//!
//! [`TransientSimulator`](crate::TransientSimulator) integrates a *fixed*
//! power map from a uniform initial condition — enough for step responses,
//! but closed-loop studies (feedback heater control, activity migration)
//! need to change the injected powers **between steps** while carrying the
//! temperature field forward. [`TransientStepper`] factors the backward-
//! Euler scheme accordingly: the conduction matrix, capacity and boundary
//! terms are assembled once; each [`TransientStepper::step`] takes a set of
//! power-group scale factors (relative to the design's reference powers,
//! exactly like [`ResponseBasis::compose`](crate::ResponseBasis::compose))
//! and advances the field by one Δt.
//!
//! The `A + C/Δt` system is SPD and constant, so [`TransientStepper::new`]
//! factors its IC(0) preconditioner exactly once; every step reuses that
//! factorization, a held right-hand-side buffer and CG workspace (zero
//! per-step allocations) and warm-starts from the current field.

use std::collections::BTreeMap;
use std::sync::Arc;

use vcsel_numerics::solver::{CgWorkspace, SolveOptions};
use vcsel_numerics::{
    AnyPreconditioner, CsrMatrix, NumericsError, PreconditionerKind, SolveLadder, TripletBuilder,
};
use vcsel_telemetry::{ArgValue, TelemetrySink};
use vcsel_units::{Celsius, Meters};

use crate::assembly::{self, BoundaryFace};
use crate::context::escalation_chain;
use crate::{Design, Mesh, MeshSpec, PowerSchedule, SolveHealth, ThermalError, ThermalMap};

/// A backward-Euler integrator whose group powers can change every step.
///
/// # Example
///
/// ```no_run
/// use vcsel_thermal::{Design, MeshSpec, TransientStepper};
/// use vcsel_units::Celsius;
/// # fn get(_: ()) -> (Design, MeshSpec) { unimplemented!() }
/// # let (design, spec) = get(());
/// let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-3)?;
/// // Heater off for 10 ms, then on at 2x its reference power.
/// for _ in 0..10 { stepper.step(&[("heater", 0.0)])?; }
/// for _ in 0..10 { stepper.step(&[("heater", 2.0)])?; }
/// println!("field after 20 ms: {}", stepper.snapshot().hottest().1);
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TransientStepper {
    mesh: Mesh,
    /// `A + C/Δt` (SPD), shared with the ladder's operator-holding rungs.
    system: Arc<CsrMatrix>,
    /// Boundary-condition contribution to the RHS (no sources).
    boundary_rhs: Vec<f64>,
    /// Power of blocks without a group, applied at scale 1 every step.
    static_power: Vec<f64>,
    /// Per-group per-cell power at the design's reference block powers.
    group_power: BTreeMap<String, Vec<f64>>,
    /// Per-cell heat capacity over Δt, J/(K·s) · s⁻¹ = W/K.
    capacity_over_dt: Vec<f64>,
    boundary_faces: Vec<BoundaryFace>,
    temps: Vec<f64>,
    dt_s: f64,
    steps: usize,
    options: SolveOptions,
    /// Escalating preconditioner chain, IC(0) → Jacobi by default. The
    /// active rung is factored once in [`TransientStepper::new`]; the
    /// `A + C/Δt` matrix never changes, so it serves every step.
    ladder: SolveLadder,
    /// Health report of the most recent step's solve.
    health: SolveHealth,
    /// Reusable right-hand-side buffer (no per-step allocation).
    rhs: Vec<f64>,
    ws: CgWorkspace,
    warm_start: bool,
    last_iterations: usize,
    total_iterations: usize,
}

impl TransientStepper {
    /// Assembles the stepper for `design` on the mesh given by `spec`,
    /// starting from a uniform `initial` field with step size `dt_s`.
    ///
    /// Blocks carrying a [`group`](crate::Block::with_group) become
    /// per-step controllable; ungrouped powered blocks dissipate their
    /// design power on every step.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] for a non-positive step, and
    /// propagates meshing/assembly errors.
    pub fn new(
        design: &Design,
        spec: &MeshSpec,
        initial: Celsius,
        dt_s: f64,
    ) -> Result<Self, ThermalError> {
        if !(dt_s > 0.0) || !dt_s.is_finite() {
            return Err(ThermalError::BadParameter {
                reason: format!("time step must be positive, got {dt_s}"),
            });
        }
        let mesh = Mesh::build(design, spec)?;

        // Zero-power clone: assembling it yields the conduction matrix and
        // the pure boundary RHS.
        let mut hollow = design.clone();
        for b in hollow.blocks_mut() {
            b.set_power(vcsel_units::Watts::ZERO);
        }
        let disc = assembly::assemble(&hollow, &mesh)?;

        // Per-group power vectors at reference block powers.
        let mut groups: Vec<String> =
            design.blocks().iter().filter_map(|b| b.group().map(str::to_owned)).collect();
        groups.sort();
        groups.dedup();
        let mut group_power = BTreeMap::new();
        for g in &groups {
            let mut only = design.clone();
            for b in only.blocks_mut() {
                if b.group() != Some(g.as_str()) {
                    b.set_power(vcsel_units::Watts::ZERO);
                }
            }
            group_power.insert(g.clone(), assembly::paint_power(&only, &mesh)?);
        }
        // Static (ungrouped) sources.
        let mut ungrouped = design.clone();
        for b in ungrouped.blocks_mut() {
            if b.group().is_some() {
                b.set_power(vcsel_units::Watts::ZERO);
            }
        }
        let static_power = assembly::paint_power(&ungrouped, &mesh)?;

        let capacity = crate::transient::paint_capacity(design, &mesh);
        let n = mesh.cell_count();
        let mut builder = TripletBuilder::with_capacity(n, n, disc.matrix.nnz() + n);
        let mut capacity_over_dt = Vec::with_capacity(n);
        for (row, cap) in capacity.iter().enumerate() {
            for (col, v) in disc.matrix.row(row) {
                builder.add(row, col, v);
            }
            let c_dt = cap / dt_s;
            builder.add(row, row, c_dt);
            capacity_over_dt.push(c_dt);
        }

        let system = Arc::new(builder.build());
        let ladder = SolveLadder::new(
            &system,
            &escalation_chain(PreconditionerKind::IncompleteCholesky),
            false,
        )
        .map_err(ThermalError::from)?;
        Ok(Self {
            system,
            boundary_rhs: disc.rhs,
            static_power,
            group_power,
            capacity_over_dt,
            boundary_faces: disc.boundary_faces,
            temps: vec![initial.value(); n],
            mesh,
            dt_s,
            steps: 0,
            options: SolveOptions { tolerance: 1e-9, max_iterations: 50_000, relaxation: 1.6 },
            ladder,
            health: SolveHealth::default(),
            rhs: vec![0.0; n],
            ws: CgWorkspace::with_capacity(n),
            warm_start: true,
            last_iterations: 0,
            total_iterations: 0,
        })
    }

    /// Overrides the per-step linear-solver options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Re-factors the per-step preconditioner (builder style). The default
    /// is IC(0); benches use this to reproduce the seed-era Jacobi path on
    /// an otherwise identical stepper.
    ///
    /// Re-factoring replaces the whole preconditioner, including any
    /// apply-knob state — call
    /// [`TransientStepper::with_parallel_apply`] /
    /// [`TransientStepper::with_apply_threads`] *after* this, not before.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures for the requested kind.
    pub fn with_preconditioner(mut self, kind: PreconditionerKind) -> Result<Self, ThermalError> {
        self.ladder = SolveLadder::new(&self.system, &escalation_chain(kind), true)
            .map_err(ThermalError::from)?;
        Ok(self)
    }

    /// Enables/disables warm-starting each step's CG from the current
    /// field (builder style). On by default; disabling reproduces the
    /// seed-era cold-start behaviour for ablation benches.
    #[must_use]
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Enables/disables the level-scheduled parallel triangular solves of
    /// the cached IC(0) factor that every step's CG applies (builder
    /// style; on by default, with the usual size gate). No effect when a
    /// non-IC(0) preconditioner was installed via
    /// [`TransientStepper::with_preconditioner`]. The `false` setting is
    /// the serial A/B baseline for the threaded-apply transient rows in
    /// `BENCH_solvers.json`.
    #[must_use]
    pub fn with_parallel_apply(mut self, on: bool) -> Self {
        self.ladder.set_parallel_apply(on);
        self
    }

    /// Pins the IC(0) wavefront worker count (builder style), forcing the
    /// level-scheduled apply past its size gate — so tests and benches can
    /// exercise the threaded path deterministically on any machine. No
    /// effect on non-IC(0) preconditioners.
    #[must_use]
    pub fn with_apply_threads(mut self, threads: usize) -> Self {
        self.ladder.set_apply_threads(threads);
        self
    }

    /// The controllable group names, sorted.
    pub fn groups(&self) -> Vec<&str> {
        self.group_power.keys().map(String::as_str).collect()
    }

    /// The active per-step preconditioner, for inspection by benches and
    /// tests (e.g. reading the IC(0) level-schedule statistics behind a
    /// cached stepper).
    pub fn preconditioner(&self) -> &AnyPreconditioner {
        self.ladder.active_preconditioner()
    }

    /// Health report of the most recent step's solve: ladder attempts,
    /// escalations, and whether the answer is degraded.
    pub fn health(&self) -> &SolveHealth {
        &self.health
    }

    /// Replaces the stepper's telemetry sink. The [`SolveLadder`] owns the
    /// handle, so rung attempts, escalations and the per-step
    /// `transient_step` spans all record through the same buffer.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.ladder.set_telemetry(sink);
    }

    /// Builder form of [`TransientStepper::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.set_telemetry(sink);
        self
    }

    /// The stepper's telemetry sink (disabled unless tracing is on).
    pub fn telemetry(&self) -> &TelemetrySink {
        self.ladder.telemetry()
    }

    /// Corrupts the active preconditioner's apply until the next ladder
    /// escalation (fault-injection hook; the next step genuinely stalls on
    /// the corrupted rung and recovers on the one below it).
    pub fn inject_solver_fault(&mut self) {
        self.ladder.inject_apply_fault();
    }

    /// Elapsed simulated time, seconds.
    pub fn time(&self) -> f64 {
        self.steps as f64 * self.dt_s
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// CG iterations of the most recent step.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// CG iterations summed over every step so far.
    pub fn total_iterations(&self) -> usize {
        self.total_iterations
    }

    /// Advances one Δt with each named group at `scale ×` its reference
    /// power. Groups not mentioned dissipate **zero** this step; ungrouped
    /// blocks always dissipate their design power.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] for unknown groups or
    /// negative/non-finite scales; propagates solver failures.
    pub fn step(&mut self, scales: &[(&str, f64)]) -> Result<(), ThermalError> {
        for &(name, s) in scales {
            if !self.group_power.contains_key(name) {
                return Err(ThermalError::BadParameter {
                    reason: format!("unknown power group '{name}'"),
                });
            }
            if !s.is_finite() || s < 0.0 {
                return Err(ThermalError::BadParameter {
                    reason: format!("scale for group '{name}' must be non-negative, got {s}"),
                });
            }
        }
        for (i, r) in self.rhs.iter_mut().enumerate() {
            *r = self.boundary_rhs[i]
                + self.static_power[i]
                + self.capacity_over_dt[i] * self.temps[i];
        }
        for &(name, s) in scales {
            if s == 0.0 {
                continue;
            }
            let q = &self.group_power[name];
            for (ri, qi) in self.rhs.iter_mut().zip(q) {
                *ri += s * qi;
            }
        }
        // The RHS above already consumed T_n, so the field buffer is free
        // to become the solver's in/out vector: left as-is it warm-starts
        // from T_n, zeroed it reproduces the cold-start seed behaviour.
        if !self.warm_start {
            self.temps.fill(0.0);
        }
        let sink = self.ladder.telemetry().clone();
        let start_ns = vcsel_telemetry::now_ns();
        let timer = std::time::Instant::now();
        let summary = {
            let mut span = sink.span("thermal", "transient_step");
            span.arg("step", ArgValue::U64(self.steps as u64));
            span.arg("unknowns", ArgValue::U64(self.temps.len() as u64));
            self.ladder.solve(
                &self.system,
                &self.rhs,
                &mut self.temps,
                &self.options,
                &mut self.ws,
            )?
        };
        if sink.is_enabled() {
            let mut sample = self.ladder.telemetry_sample(&summary, &self.ws);
            sample.label = format!("transient_step/{}", self.steps);
            sample.cat = "thermal";
            sample.start_ns = start_ns;
            sample.dur_ns = u64::try_from(timer.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.record_sample(sample);
        }
        self.last_iterations = summary.iterations;
        self.total_iterations += summary.total_iterations;
        self.health = SolveHealth::from_ladder(summary, self.ladder.attempts());
        if !summary.converged {
            // Roll the field back to the pre-solve guess (the previous
            // field under warm starts, the default) and refuse to advance:
            // a failed step must never smuggle a bad iterate into the
            // trajectory.
            self.temps.copy_from_slice(self.ladder.saved_guess());
            return Err(ThermalError::Solver(NumericsError::NoConvergence {
                iterations: summary.iterations,
                residual: summary.residual,
                tolerance: self.options.tolerance,
            }));
        }
        self.steps += 1;
        Ok(())
    }

    /// Replays `schedule` for `steps` steps: before each step the schedule
    /// is sampled at the current simulation time and the resulting group
    /// scales applied — the declarative, event-driven counterpart of
    /// hand-rolled [`TransientStepper::step`] loops.
    ///
    /// # Errors
    ///
    /// Same contract as [`TransientStepper::step`]; the field stops at the
    /// last successful step.
    pub fn run_schedule(
        &mut self,
        schedule: &PowerSchedule,
        steps: usize,
    ) -> Result<(), ThermalError> {
        for _ in 0..steps {
            let scales = schedule.scales_at(self.time());
            let borrowed: Vec<(&str, f64)> = scales.iter().map(|(g, s)| (g.as_str(), *s)).collect();
            self.step(&borrowed)?;
        }
        Ok(())
    }

    /// Temperature of the cell containing `point`, or `None` outside the
    /// domain.
    pub fn temperature_at(&self, point: [Meters; 3]) -> Option<Celsius> {
        self.mesh.locate(point).map(|i| Celsius::new(self.temps[i]))
    }

    /// A [`ThermalMap`] snapshot of the current field (clones the mesh and
    /// field; injected power is reported as 0 since it varies per step).
    pub fn snapshot(&self) -> ThermalMap {
        ThermalMap::new(self.mesh.clone(), self.temps.clone(), self.boundary_faces.clone(), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Block, Boundary, BoundaryCondition, BoxRegion, Material, Simulator, TransientSimulator,
    };
    use vcsel_units::{Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn grouped_slab() -> (Design, MeshSpec) {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(40.0),
            },
        );
        let src =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(3.0), mm(0.2)]).unwrap();
        d.add_block(
            Block::heat_source("s", src, Material::COPPER, Watts::new(0.5)).with_group("src"),
        );
        (d, MeshSpec::uniform(mm(0.5)))
    }

    #[test]
    fn constant_scales_match_the_batch_transient() {
        // Stepping with a constant scale of 1 must reproduce
        // TransientSimulator::simulate on the same design.
        let (design, spec) = grouped_slab();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        let dt = 5e-3;
        let steps = 100;

        let batch = TransientSimulator::new(Celsius::new(40.0))
            .simulate(&design, &spec, dt, steps, &[probe])
            .unwrap();

        let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), dt).unwrap();
        for _ in 0..steps {
            stepper.step(&[("src", 1.0)]).unwrap();
        }
        let got = stepper.temperature_at(probe).unwrap().value();
        let want = batch.final_probe(0).value();
        assert!((got - want).abs() < 1e-6, "stepper {got} vs batch {want}");
        assert_eq!(stepper.steps(), steps);
        assert!((stepper.time() - dt * steps as f64).abs() < 1e-12);
    }

    #[test]
    fn long_run_converges_to_the_steady_solver() {
        let (design, spec) = grouped_slab();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        let steady = Simulator::new().solve(&design, &spec).unwrap();
        let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), 0.05).unwrap();
        for _ in 0..1_000 {
            stepper.step(&[("src", 1.0)]).unwrap();
        }
        let t_steady = steady.temperature_at(probe).unwrap().value();
        let t = stepper.temperature_at(probe).unwrap().value();
        assert!((t - t_steady).abs() < 0.02 * (t_steady - 40.0), "{t} vs {t_steady}");
    }

    #[test]
    fn power_toggling_heats_and_cools() {
        let (design, spec) = grouped_slab();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-2).unwrap();
        for _ in 0..50 {
            stepper.step(&[("src", 2.0)]).unwrap();
        }
        let hot = stepper.temperature_at(probe).unwrap();
        for _ in 0..50 {
            stepper.step(&[("src", 0.0)]).unwrap();
        }
        let cooled = stepper.temperature_at(probe).unwrap();
        assert!(hot.value() > 41.0, "must heat: {hot}");
        assert!(cooled < hot, "must cool once the source stops: {cooled} vs {hot}");
        assert!(cooled.value() >= 40.0 - 1e-9, "never below ambient");
    }

    #[test]
    fn omitted_group_means_off() {
        let (design, spec) = grouped_slab();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        let mut a = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-2).unwrap();
        let mut b = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-2).unwrap();
        for _ in 0..20 {
            a.step(&[]).unwrap();
            b.step(&[("src", 0.0)]).unwrap();
        }
        let ta = a.temperature_at(probe).unwrap().value();
        let tb = b.temperature_at(probe).unwrap().value();
        assert!((ta - tb).abs() < 1e-12);
        assert!((ta - 40.0).abs() < 1e-9, "no sources: stays at ambient");
    }

    #[test]
    fn ungrouped_blocks_stay_on() {
        let (mut design, spec) = grouped_slab();
        // Add an ungrouped source in the opposite corner.
        let extra =
            BoxRegion::new([mm(3.0), mm(3.0), Meters::ZERO], [mm(4.0), mm(4.0), mm(0.2)]).unwrap();
        design.add_block(Block::heat_source("bg", extra, Material::COPPER, Watts::new(0.2)));
        let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-2).unwrap();
        for _ in 0..50 {
            stepper.step(&[]).unwrap(); // grouped source off
        }
        let t = stepper.temperature_at([mm(3.5), mm(3.5), mm(0.1)]).unwrap();
        assert!(t.value() > 40.5, "static source must keep heating: {t}");
    }

    #[test]
    fn snapshot_is_a_queryable_map() {
        let (design, spec) = grouped_slab();
        let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-2).unwrap();
        stepper.step(&[("src", 1.0)]).unwrap();
        let map = stepper.snapshot();
        assert!(map.hottest().1.value() > 40.0);
        assert_eq!(map.mesh().cell_count(), stepper.snapshot().mesh().cell_count());
    }

    #[test]
    fn warm_ic0_engine_beats_cold_jacobi_and_agrees() {
        // The seed-era path (cold-start Jacobi-CG every step) and the new
        // engine (IC(0) factored once + warm starts) must produce the same
        // trajectory while the engine spends far fewer iterations.
        let (design, spec) = grouped_slab();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        let mut seed = TransientStepper::new(&design, &spec, Celsius::new(40.0), 5e-3)
            .unwrap()
            .with_preconditioner(PreconditionerKind::Jacobi)
            .unwrap()
            .with_warm_start(false);
        let mut engine = TransientStepper::new(&design, &spec, Celsius::new(40.0), 5e-3).unwrap();
        for _ in 0..25 {
            seed.step(&[("src", 1.0)]).unwrap();
            engine.step(&[("src", 1.0)]).unwrap();
        }
        let a = seed.temperature_at(probe).unwrap().value();
        let b = engine.temperature_at(probe).unwrap().value();
        assert!((a - b).abs() < 1e-6, "seed {a} vs engine {b}");
        assert!(
            2 * engine.total_iterations() <= seed.total_iterations(),
            "engine {} vs seed {} iterations",
            engine.total_iterations(),
            seed.total_iterations()
        );
        assert!(engine.last_iterations() <= engine.total_iterations());
    }

    #[test]
    fn level_scheduled_apply_reproduces_the_serial_trajectory() {
        // The wavefront IC(0) apply inside every step's CG must not move
        // the integrated trajectory: pin the worker count (forcing the
        // threaded path even on one core) and compare against the serial
        // A/B baseline over a power transient.
        let (design, spec) = grouped_slab();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        let mut serial = TransientStepper::new(&design, &spec, Celsius::new(40.0), 5e-3)
            .unwrap()
            .with_parallel_apply(false);
        let mut wavefront = TransientStepper::new(&design, &spec, Celsius::new(40.0), 5e-3)
            .unwrap()
            .with_apply_threads(3);
        for step in 0..30 {
            let scale = if step < 15 { 1.5 } else { 0.25 };
            serial.step(&[("src", scale)]).unwrap();
            wavefront.step(&[("src", scale)]).unwrap();
        }
        let a = serial.temperature_at(probe).unwrap().value();
        let b = wavefront.temperature_at(probe).unwrap().value();
        assert!((a - b).abs() < 1e-9, "serial {a} vs level-scheduled {b}");
        assert_eq!(
            serial.total_iterations(),
            wavefront.total_iterations(),
            "identical preconditioner arithmetic must give identical CG trajectories"
        );
    }

    #[test]
    fn validation() {
        let (design, spec) = grouped_slab();
        assert!(TransientStepper::new(&design, &spec, Celsius::new(40.0), 0.0).is_err());
        let mut stepper = TransientStepper::new(&design, &spec, Celsius::new(40.0), 1e-2).unwrap();
        assert!(stepper.step(&[("nope", 1.0)]).is_err());
        assert!(stepper.step(&[("src", -1.0)]).is_err());
        assert!(stepper.step(&[("src", f64::NAN)]).is_err());
        assert_eq!(stepper.groups(), vec!["src"]);
    }
}
