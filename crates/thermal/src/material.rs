//! Constitutive materials for the thermal model.
//!
//! A [`Material`] carries the thermal conductivity (all the steady solver
//! needs) and the volumetric heat capacity (consumed by the transient
//! solver, mirroring IcTherm's transient mode).

use std::borrow::Cow;

use serde::{Deserialize, Serialize};
use vcsel_units::WattsPerMeterKelvin;

/// A homogeneous, isotropic material.
///
/// The built-in constants cover every layer of the paper's Figure 7 package
/// stack. Conductivities are standard room-temperature values.
///
/// # Example
///
/// ```
/// use vcsel_thermal::Material;
///
/// assert!(Material::COPPER.conductivity() > Material::SILICON.conductivity());
/// let custom = Material::new("graphite", 150.0);
/// assert_eq!(custom.name(), "graphite");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Material {
    name: Cow<'static, str>,
    /// Thermal conductivity in W/(m·K).
    conductivity_w_per_m_k: f64,
    /// Volumetric heat capacity ρ·c_p in J/(m³·K) (used by the transient
    /// solver; irrelevant at steady state).
    #[serde(default = "default_heat_capacity")]
    volumetric_heat_capacity_j_per_m3_k: f64,
}

fn default_heat_capacity() -> f64 {
    1.6e6
}

impl Material {
    /// Bulk silicon (die, interposer, waveguide layer).
    pub const SILICON: Material = Material::const_new("silicon", 148.0, 1.63e6);
    /// Silicon dioxide (buried oxide, cladding).
    pub const SILICON_DIOXIDE: Material = Material::const_new("silicon dioxide", 1.4, 1.63e6);
    /// Copper (lid, heat-sink base).
    pub const COPPER: Material = Material::const_new("copper", 400.0, 3.45e6);
    /// Thermal interface material between die and lid.
    pub const TIM: Material = Material::const_new("thermal interface material", 4.0, 2.0e6);
    /// Effective back-end-of-line stack (metal + dielectric; the paper
    /// models the BEOL as a thin 10–15 µm layer holding the heat sources).
    pub const BEOL: Material = Material::const_new("BEOL effective", 2.25, 2.2e6);
    /// Organic package substrate (build-up laminate).
    pub const SUBSTRATE: Material = Material::const_new("package substrate", 0.35, 1.8e6);
    /// Underfill / die-attach epoxy.
    pub const EPOXY: Material = Material::const_new("epoxy", 0.9, 1.7e6);
    /// III-V VCSEL stack (InP / InGaAsP effective).
    pub const III_V: Material = Material::const_new("III-V (InP effective)", 68.0, 1.5e6);
    /// Oxide-clad optical layer effective medium (Si devices in SiO2).
    pub const OPTICAL_LAYER: Material =
        Material::const_new("optical layer effective", 10.0, 1.65e6);
    /// Bonding layer between the optical die and the logic die.
    pub const BONDING: Material = Material::const_new("bonding layer", 0.5, 1.7e6);
    /// Copper-tungsten TSV effective fill.
    pub const TSV_FILL: Material = Material::const_new("TSV fill", 230.0, 3.0e6);
    /// Still air (gaps).
    pub const AIR: Material = Material::const_new("air", 0.026, 1.2e3);

    const fn const_new(name: &'static str, k: f64, c: f64) -> Material {
        Material {
            name: Cow::Borrowed(name),
            conductivity_w_per_m_k: k,
            volumetric_heat_capacity_j_per_m3_k: c,
        }
    }

    /// Creates a material with the given name and conductivity in W/(m·K),
    /// using a generic solid heat capacity (1.6 MJ/(m³·K)); override it
    /// with [`Material::with_heat_capacity`] for transient work.
    ///
    /// # Panics
    ///
    /// Panics if `conductivity` is not strictly positive and finite.
    pub fn new(name: impl Into<String>, conductivity: f64) -> Self {
        assert!(
            conductivity.is_finite() && conductivity > 0.0,
            "thermal conductivity must be positive and finite, got {conductivity}"
        );
        Self {
            name: Cow::Owned(name.into()),
            conductivity_w_per_m_k: conductivity,
            volumetric_heat_capacity_j_per_m3_k: default_heat_capacity(),
        }
    }

    /// Replaces the volumetric heat capacity (J/(m³·K)), builder style.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    #[must_use]
    pub fn with_heat_capacity(mut self, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "heat capacity must be positive and finite, got {capacity}"
        );
        self.volumetric_heat_capacity_j_per_m3_k = capacity;
        self
    }

    /// Volumetric heat capacity ρ·c_p in J/(m³·K).
    pub fn volumetric_heat_capacity(&self) -> f64 {
        self.volumetric_heat_capacity_j_per_m3_k
    }

    /// Human-readable material name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thermal conductivity.
    pub fn conductivity(&self) -> WattsPerMeterKelvin {
        WattsPerMeterKelvin::new(self.conductivity_w_per_m_k)
    }
}

impl core::fmt::Display for Material {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} (k = {} W/(m·K))", self.name, self.conductivity_w_per_m_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_constants_are_physical() {
        for m in [
            Material::SILICON,
            Material::SILICON_DIOXIDE,
            Material::COPPER,
            Material::TIM,
            Material::BEOL,
            Material::SUBSTRATE,
            Material::EPOXY,
            Material::III_V,
            Material::OPTICAL_LAYER,
            Material::BONDING,
            Material::TSV_FILL,
            Material::AIR,
        ] {
            assert!(m.conductivity().value() > 0.0, "{m}");
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn conductivity_ordering_sanity() {
        // Copper > TSV fill > silicon > III-V > oxide > air.
        assert!(Material::COPPER.conductivity() > Material::TSV_FILL.conductivity());
        assert!(Material::TSV_FILL.conductivity() > Material::SILICON.conductivity());
        assert!(Material::SILICON.conductivity() > Material::III_V.conductivity());
        assert!(Material::III_V.conductivity() > Material::SILICON_DIOXIDE.conductivity());
        assert!(Material::SILICON_DIOXIDE.conductivity() > Material::AIR.conductivity());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_conductivity_rejected() {
        let _ = Material::new("void", 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let m = Material::new("graphite", 150.0);
        let json = serde_json::to_string(&m).expect("serialize");
        let back: Material = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m);
    }
}
