//! Transient thermal simulation.
//!
//! The paper's thermal engine, IcTherm, is presented in \[23\] as an
//! *efficient transient* simulator for 3D ICs; the DATE 2015 methodology
//! only needs its steady-state mode, but a faithful substrate reproduction
//! includes the transient capability: it is what run-time studies (heating
//! latency of the MR calibration loops, activity migration) build on.
//!
//! Discretization: the same finite-volume conduction operator `A` and
//! source vector `b` as the steady solver, plus a capacity matrix
//! `C = diag(ρ·c_p·V)`, integrated with unconditionally stable backward
//! Euler:
//!
//! ```text
//! (C/Δt + A) · T_{n+1} = (C/Δt) · T_n + b
//! ```
//!
//! The `A + C/Δt` matrix is SPD and *constant across the whole
//! trajectory*, so the integrator factors its IC(0) preconditioner exactly
//! once, keeps one scratch workspace, and warm-starts every step's CG from
//! the previous field — each step is then a handful of iterations instead
//! of a full cold solve.

use vcsel_numerics::solver::{self, CgWorkspace, SolveOptions};
use vcsel_numerics::{PreconditionerKind, TripletBuilder};
use vcsel_units::{Celsius, Meters};

use crate::context::factor_preconditioner;
use crate::{assembly, Design, Mesh, MeshSpec, ThermalError, ThermalMap};

/// A probed transient trace.
#[derive(Debug, Clone)]
pub struct TransientTrace {
    /// Sample times in seconds (one per completed step).
    pub times_s: Vec<f64>,
    /// Probe temperatures per sample: `probes[p][step]` in °C.
    pub probes: Vec<Vec<f64>>,
    /// The temperature field after the final step.
    pub final_map: ThermalMap,
}

impl TransientTrace {
    /// Temperature of probe `p` at the final sample.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn final_probe(&self, p: usize) -> Celsius {
        Celsius::new(*self.probes[p].last().expect("at least one step"))
    }
}

/// Backward-Euler transient solver sharing the steady solver's FVM
/// discretization.
///
/// # Example
///
/// ```no_run
/// use vcsel_thermal::{Design, MeshSpec, TransientSimulator};
/// use vcsel_units::{Celsius, Meters};
/// # fn get(_: ()) -> (Design, MeshSpec) { unimplemented!() }
/// # let (design, spec) = get(());
/// let sim = TransientSimulator::new(Celsius::new(40.0));
/// let trace = sim.simulate(
///     &design,
///     &spec,
///     1e-3,        // 1 ms step
///     200,         // 200 steps
///     &[[Meters::ZERO, Meters::ZERO, Meters::ZERO]],
/// )?;
/// println!("probe after 0.2 s: {}", trace.final_probe(0));
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TransientSimulator {
    options: SolveOptions,
    initial: Celsius,
}

/// Paints the per-cell heat capacity `ρ·c_p·V` in J/K (shared with the
/// stateful [`crate::TransientStepper`]).
pub(crate) fn paint_capacity(design: &Design, mesh: &Mesh) -> Vec<f64> {
    let mut c = vec![design.background().volumetric_heat_capacity(); mesh.cell_count()];
    for block in design.blocks() {
        let cb = block.material().volumetric_heat_capacity();
        for idx in mesh.cells_in(block.region()) {
            c[idx] = cb;
        }
    }
    for (idx, cap) in c.iter_mut().enumerate() {
        *cap *= mesh.cell_volume(idx);
    }
    c
}

impl TransientSimulator {
    /// Transient simulator starting from a uniform initial temperature.
    pub fn new(initial: Celsius) -> Self {
        Self {
            options: SolveOptions { tolerance: 1e-9, max_iterations: 50_000, relaxation: 1.6 },
            initial,
        }
    }

    /// Overrides the per-step linear-solver options (builder style).
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Integrates `steps` backward-Euler steps of size `dt_s` seconds and
    /// records the cell temperatures at each `probes` location.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::BadParameter`] for a non-positive step, zero
    ///   steps, or a probe outside the domain,
    /// * plus every error the steady solver can produce (meshing, no heat
    ///   path, CG failure).
    pub fn simulate(
        &self,
        design: &Design,
        spec: &MeshSpec,
        dt_s: f64,
        steps: usize,
        probes: &[[Meters; 3]],
    ) -> Result<TransientTrace, ThermalError> {
        if !(dt_s > 0.0) || !dt_s.is_finite() {
            return Err(ThermalError::BadParameter {
                reason: format!("time step must be positive, got {dt_s}"),
            });
        }
        if steps == 0 {
            return Err(ThermalError::BadParameter {
                reason: "need at least one time step".into(),
            });
        }

        let mesh = Mesh::build(design, spec)?;
        let disc = assembly::assemble(design, &mesh)?;
        let capacity = paint_capacity(design, &mesh);

        let probe_cells: Vec<usize> = probes
            .iter()
            .map(|&p| {
                mesh.locate(p).ok_or_else(|| ThermalError::BadParameter {
                    reason: "probe lies outside the design domain".into(),
                })
            })
            .collect::<Result<_, _>>()?;

        // System matrix: A + C/dt (adds to the diagonal, stays SPD).
        let n = mesh.cell_count();
        let mut builder = TripletBuilder::with_capacity(n, n, disc.matrix.nnz() + n);
        for (row, cap) in capacity.iter().enumerate() {
            for (col, v) in disc.matrix.row(row) {
                builder.add(row, col, v);
            }
            builder.add(row, row, cap / dt_s);
        }
        let system = builder.build();
        // The matrix never changes: one IC(0) factorization serves every
        // step, and each step warm-starts from the previous field.
        let mut precond = factor_preconditioner(&system, PreconditionerKind::IncompleteCholesky)?;
        let mut ws = CgWorkspace::with_capacity(n);

        let mut temps = vec![self.initial.value(); n];
        let mut rhs = vec![0.0; n];
        let mut times_s = Vec::with_capacity(steps);
        let mut probe_series = vec![Vec::with_capacity(steps); probes.len()];

        for step in 0..steps {
            for i in 0..n {
                rhs[i] = disc.rhs[i] + capacity[i] / dt_s * temps[i];
            }
            solver::preconditioned_cg(
                &system,
                &rhs,
                &mut temps,
                &mut precond,
                &self.options,
                &mut ws,
            )?
            .require_converged(&self.options)?;
            times_s.push(dt_s * (step + 1) as f64);
            for (series, &cell) in probe_series.iter_mut().zip(&probe_cells) {
                series.push(temps[cell]);
            }
        }

        let injected: f64 = disc.cell_power.iter().sum();
        let final_map = ThermalMap::new(mesh, temps, disc.boundary_faces, injected);
        Ok(TransientTrace { times_s, probes: probe_series, final_map })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Boundary, BoundaryCondition, BoxRegion, Material, Simulator};
    use vcsel_units::{Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn heated_slab() -> (Design, MeshSpec) {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(40.0),
            },
        );
        let src =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(3.0), mm(3.0), mm(0.2)]).unwrap();
        d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(0.5)));
        (d, MeshSpec::uniform(mm(0.5)))
    }

    #[test]
    fn transient_approaches_steady_state() {
        let (design, spec) = heated_slab();
        let steady = Simulator::new().solve(&design, &spec).unwrap();
        let probe = [mm(2.0), mm(2.0), mm(0.1)];
        // Long integration: 2000 x 5 ms = 10 s >> the slab's time constant.
        let trace = TransientSimulator::new(Celsius::new(40.0))
            .simulate(&design, &spec, 5e-3, 2_000, &[probe])
            .unwrap();
        let t_steady = steady.temperature_at(probe).unwrap().value();
        let t_final = trace.final_probe(0).value();
        assert!(
            (t_final - t_steady).abs() < 0.02 * (t_steady - 40.0),
            "transient {t_final} must land on steady {t_steady}"
        );
    }

    #[test]
    fn heating_is_monotonic_from_ambient() {
        let (design, spec) = heated_slab();
        let trace = TransientSimulator::new(Celsius::new(40.0))
            .simulate(&design, &spec, 1e-2, 50, &[[mm(2.0), mm(2.0), mm(0.1)]])
            .unwrap();
        for w in trace.probes[0].windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "implicit Euler must heat monotonically");
        }
        assert!(trace.probes[0][0] > 40.0);
    }

    #[test]
    fn lumped_cooling_time_constant() {
        // A copper block (high conductivity -> near-lumped) cooling from a
        // hot start with no power: T(t) - T_amb decays with
        // tau = C_total / (h A_top). Backward Euler at dt = tau/50 should
        // reproduce e^-1 decay at t = tau within a few percent.
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(2.0), mm(2.0), mm(2.0)]).unwrap();
        let mut d = Design::new(domain, Material::COPPER).unwrap();
        let h = 500.0;
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(h),
                ambient: Celsius::new(20.0),
            },
        );
        let volume = 2e-3f64.powi(3);
        let c_total = Material::COPPER.volumetric_heat_capacity() * volume;
        let tau = c_total / (h * 2e-3 * 2e-3);
        let dt = tau / 50.0;
        let trace = TransientSimulator::new(Celsius::new(80.0))
            .simulate(&d, &MeshSpec::uniform(mm(0.5)), dt, 50, &[[mm(1.0), mm(1.0), mm(1.0)]])
            .unwrap();
        let expected = 20.0 + 60.0 * (-1.0f64).exp();
        let got = trace.final_probe(0).value();
        assert!(
            (got - expected).abs() < 2.0,
            "lumped cooling: got {got}, expected ~{expected} (tau = {tau:.2} s)"
        );
    }

    #[test]
    fn validation() {
        let (design, spec) = heated_slab();
        let sim = TransientSimulator::new(Celsius::new(40.0));
        assert!(sim.simulate(&design, &spec, 0.0, 10, &[]).is_err());
        assert!(sim.simulate(&design, &spec, 1e-3, 0, &[]).is_err());
        assert!(sim.simulate(&design, &spec, 1e-3, 1, &[[mm(99.0), mm(0.0), mm(0.0)]]).is_err());
    }
}
