//! Event-driven power schedules for transient co-simulation.
//!
//! The fixed `(group, scale)` argument of
//! [`TransientStepper::step`](crate::TransientStepper::step) is the right
//! primitive for closed-loop controllers that decide every step, but
//! scripted studies — thermal cycling, workload phases, fault timelines —
//! want to declare *edits at timestamps* and let the stepper replay them.
//! A [`PowerSchedule`] is that declaration: an initial set of group scales
//! plus a sorted stream of [`PowerEvent`] edits, each overriding one
//! group's scale from its timestamp onward.

use crate::ThermalError;

/// One scheduled edit: from `at_s` onward, `group` runs at `scale ×` its
/// reference power (until a later event overrides it again).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerEvent {
    /// Simulation time at which the edit takes effect, seconds.
    pub at_s: f64,
    /// The power group the edit applies to.
    pub group: String,
    /// New scale factor relative to the group's reference power.
    pub scale: f64,
}

impl PowerEvent {
    /// Convenience constructor.
    pub fn new(at_s: f64, group: impl Into<String>, scale: f64) -> Self {
        Self { at_s, group: group.into(), scale }
    }
}

/// A deterministic power timeline: initial scales plus timestamped edits.
///
/// # Example
///
/// ```
/// use vcsel_thermal::{PowerEvent, PowerSchedule};
///
/// // Heater on at reference power, dropped to idle after 5 ms, burst at 20 ms.
/// let schedule = PowerSchedule::new(
///     &[("heater", 1.0)],
///     vec![PowerEvent::new(5e-3, "heater", 0.1), PowerEvent::new(20e-3, "heater", 3.0)],
/// )?;
/// assert_eq!(schedule.scales_at(0.0), vec![("heater".to_string(), 1.0)]);
/// assert_eq!(schedule.scales_at(6e-3), vec![("heater".to_string(), 0.1)]);
/// assert_eq!(schedule.scales_at(25e-3), vec![("heater".to_string(), 3.0)]);
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSchedule {
    initial: Vec<(String, f64)>,
    /// Sorted by `at_s` (stable, so same-timestamp events keep insertion
    /// order and the later insertion wins).
    events: Vec<PowerEvent>,
}

impl PowerSchedule {
    /// Builds a schedule from initial `(group, scale)` pairs and a list of
    /// edits (sorted internally by timestamp).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] for a negative or non-finite
    /// scale or timestamp, or a duplicated group in `initial`.
    pub fn new(initial: &[(&str, f64)], mut events: Vec<PowerEvent>) -> Result<Self, ThermalError> {
        let mut seen: Vec<&str> = Vec::with_capacity(initial.len());
        for &(group, scale) in initial {
            if seen.contains(&group) {
                return Err(ThermalError::BadParameter {
                    reason: format!("group '{group}' appears twice in the initial scales"),
                });
            }
            seen.push(group);
            validate_scale(group, scale)?;
        }
        for e in &events {
            validate_scale(&e.group, e.scale)?;
            if !e.at_s.is_finite() || e.at_s < 0.0 {
                return Err(ThermalError::BadParameter {
                    reason: format!(
                        "event timestamp for group '{}' must be non-negative, got {}",
                        e.group, e.at_s
                    ),
                });
            }
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Ok(Self { initial: initial.iter().map(|&(g, s)| (g.to_string(), s)).collect(), events })
    }

    /// The effective `(group, scale)` set at simulation time `t`: initial
    /// scales overridden by every event with `at_s <= t`, later events
    /// winning. Groups first mentioned by an event join the set when the
    /// event fires.
    pub fn scales_at(&self, t: f64) -> Vec<(String, f64)> {
        let mut scales = self.initial.clone();
        for e in self.events.iter().take_while(|e| e.at_s <= t) {
            match scales.iter_mut().find(|(g, _)| *g == e.group) {
                Some((_, s)) => *s = e.scale,
                None => scales.push((e.group.clone(), e.scale)),
            }
        }
        scales
    }

    /// The scheduled events, sorted by timestamp.
    pub fn events(&self) -> &[PowerEvent] {
        &self.events
    }

    /// Timestamp of the last event, or 0 when there are none — a natural
    /// lower bound for how long to run the schedule.
    pub fn horizon_s(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.at_s)
    }
}

fn validate_scale(group: &str, scale: f64) -> Result<(), ThermalError> {
    if !scale.is_finite() || scale < 0.0 {
        return Err(ThermalError::BadParameter {
            reason: format!("scale for group '{group}' must be non-negative, got {scale}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_override_in_timestamp_order() {
        let s = PowerSchedule::new(
            &[("a", 1.0)],
            vec![
                PowerEvent::new(2.0, "a", 0.5),
                PowerEvent::new(1.0, "b", 2.0),
                PowerEvent::new(3.0, "a", 0.0),
            ],
        )
        .unwrap();
        assert_eq!(s.scales_at(0.5), vec![("a".into(), 1.0)]);
        assert_eq!(s.scales_at(1.0), vec![("a".into(), 1.0), ("b".into(), 2.0)]);
        assert_eq!(s.scales_at(2.5), vec![("a".into(), 0.5), ("b".into(), 2.0)]);
        assert_eq!(s.scales_at(10.0), vec![("a".into(), 0.0), ("b".into(), 2.0)]);
        assert!((s.horizon_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(PowerSchedule::new(&[("a", 1.0), ("a", 2.0)], vec![]).is_err());
        assert!(PowerSchedule::new(&[("a", -1.0)], vec![]).is_err());
        assert!(PowerSchedule::new(&[], vec![PowerEvent::new(-1.0, "a", 1.0)]).is_err());
        assert!(PowerSchedule::new(&[], vec![PowerEvent::new(1.0, "a", f64::NAN)]).is_err());
        assert!(PowerSchedule::new(&[], vec![]).unwrap().scales_at(1.0).is_empty());
    }
}
