//! Superposition-based sweep acceleration.
//!
//! Steady-state conduction with temperature-independent conductivities is a
//! linear PDE, so the temperature field responds linearly to every injected
//! power: `T = T_bc + Σ_g s_g · ΔT_g`, where `T_bc` is the field produced by
//! the boundary conditions plus any *ungrouped* block powers, and `ΔT_g` is
//! the rise produced by power group `g` at its reference power.
//!
//! The paper's design-space exploration sweeps P_VCSEL ∈ [0, 6] mW,
//! P_heater ∈ [0, 4] mW and P_chip ∈ {12.5 … 31.25} W. Tagging those block
//! sets as groups turns the entire sweep into a handful of solves plus
//! vector arithmetic — with results identical to re-solving, which the
//! tests verify.

use crate::{Design, MeshSpec, Simulator, SolveContext, ThermalError, ThermalMap};

/// Pre-solved unit responses for the power groups of a design.
///
/// # Example
///
/// ```no_run
/// use vcsel_thermal::{Design, MeshSpec, ResponseBasis, Simulator};
/// # fn get_design() -> Design { unimplemented!() }
/// # fn main() -> Result<(), vcsel_thermal::ThermalError> {
/// let design: Design = get_design(); // blocks tagged "chip", "vcsel", "heater"
/// let spec = MeshSpec::uniform(vcsel_units::Meters::from_micrometers(500.0));
/// let basis = ResponseBasis::build(&Simulator::new(), &design, &spec)?;
/// // P_vcsel x 3, heater at 30 % of that, chip activity unchanged:
/// let map = basis.compose(&[("chip", 1.0), ("vcsel", 3.0), ("heater", 0.9)])?;
/// # let _ = map; Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResponseBasis {
    /// Field from boundary conditions + ungrouped powers (scale-independent).
    baseline: ThermalMap,
    /// Per-group temperature *rise* fields at reference group power,
    /// together with that reference power in watts.
    responses: Vec<(String, f64, Vec<f64>)>,
}

impl ResponseBasis {
    /// Solves the baseline plus one unit response per power group of
    /// `design`.
    ///
    /// Costs `1 + #groups` solves, all served by **one** [`SolveContext`]:
    /// the system is assembled and IC(0)-factored once, every per-group
    /// right-hand side reuses the factorization and warm-starts from the
    /// previous field.
    ///
    /// # Errors
    ///
    /// Propagates any meshing/solving error; additionally rejects designs
    /// without any power group ([`ThermalError::BadParameter`]) since the
    /// basis would be pointless.
    pub fn build(sim: &Simulator, design: &Design, spec: &MeshSpec) -> Result<Self, ThermalError> {
        let mut ctx = SolveContext::new(design, spec)?.with_options(*sim.options());
        Self::build_on(&mut ctx)
    }

    /// Like [`ResponseBasis::build`], but on an **existing** engine —
    /// sweeps that already hold a [`SolveContext`] (or re-target one with
    /// [`SolveContext::adopt_design`]) rebuild their basis without paying
    /// assembly or factorization again, and each solve warm-starts from
    /// the context's current field.
    ///
    /// # Errors
    ///
    /// Same contract as [`ResponseBasis::build`], minus the construction
    /// errors.
    pub fn build_on(ctx: &mut SolveContext) -> Result<Self, ThermalError> {
        let groups: Vec<String> = ctx.groups().into_iter().map(str::to_string).collect();
        if groups.is_empty() {
            return Err(ThermalError::BadParameter {
                reason: "design has no power groups; tag blocks with `with_group`".into(),
            });
        }

        // Baseline: all groups at zero, ungrouped powers untouched.
        let baseline = ctx.solve_scaled(&[])?;

        // Each group's rise is its solo field minus the baseline — the
        // static-power contribution cancels in the subtraction, so no
        // separate pure-BC solve is needed.
        let mut responses = Vec::with_capacity(groups.len());
        for g in &groups {
            let solved = ctx.solve_scaled(&[(g.as_str(), 1.0)])?;
            let rise: Vec<f64> = solved
                .temperatures()
                .iter()
                .zip(baseline.temperatures())
                .map(|(t, t0)| t - t0)
                .collect();
            let reference = ctx.group_reference_power(g).unwrap_or(0.0);
            responses.push((g.clone(), reference, rise));
        }

        Ok(Self { baseline, responses })
    }

    /// Like [`ResponseBasis::build_on`], but all `1 + #groups` basis
    /// fields solve in **one** [`SolveContext::solve_batch`] call: the
    /// baseline painting and every solo-group painting share each operator
    /// sweep instead of streaming the matrix once per solve. Identical
    /// fields, fewer memory passes — the batched design-space campaigns
    /// build their bases this way.
    ///
    /// # Errors
    ///
    /// Same contract as [`ResponseBasis::build_on`]; a per-column solver
    /// failure surfaces as that painting's error.
    pub fn build_on_batched(ctx: &mut SolveContext) -> Result<Self, ThermalError> {
        let groups: Vec<String> = ctx.groups().into_iter().map(str::to_string).collect();
        if groups.is_empty() {
            return Err(ThermalError::BadParameter {
                reason: "design has no power groups; tag blocks with `with_group`".into(),
            });
        }

        // Painting 0 is the baseline (all groups off); painting 1 + i is
        // group i alone at reference power.
        let mut paintings: Vec<Vec<(&str, f64)>> = vec![Vec::new()];
        paintings.extend(groups.iter().map(|g| vec![(g.as_str(), 1.0)]));
        let refs: Vec<&[(&str, f64)]> = paintings.iter().map(Vec::as_slice).collect();
        let mut maps = ctx.solve_batch(&refs)?.into_iter();

        let baseline = match maps.next() {
            Some(map) => map?,
            None => {
                return Err(ThermalError::BadParameter {
                    reason: "batched basis solve returned no baseline".into(),
                })
            }
        };
        let mut responses = Vec::with_capacity(groups.len());
        for (g, map) in groups.iter().zip(maps) {
            let solved = map?;
            let rise: Vec<f64> = solved
                .temperatures()
                .iter()
                .zip(baseline.temperatures())
                .map(|(t, t0)| t - t0)
                .collect();
            let reference = ctx.group_reference_power(g).unwrap_or(0.0);
            responses.push((g.clone(), reference, rise));
        }

        Ok(Self { baseline, responses })
    }

    /// Names of the groups the basis can scale.
    pub fn groups(&self) -> Vec<&str> {
        self.responses.iter().map(|(g, _, _)| g.as_str()).collect()
    }

    /// The zero-scale baseline field.
    pub fn baseline(&self) -> &ThermalMap {
        &self.baseline
    }

    /// Composes a thermal map with each group's reference power multiplied
    /// by the given scale. Groups omitted from `scales` default to zero.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnknownGroup`] for a scale entry whose group
    /// does not exist.
    pub fn compose(&self, scales: &[(&str, f64)]) -> Result<ThermalMap, ThermalError> {
        for (g, _) in scales {
            if !self.responses.iter().any(|(name, _, _)| name == g) {
                return Err(ThermalError::UnknownGroup { group: (*g).to_string() });
            }
        }
        let (mesh, base_temps, faces, base_power) = self.baseline.parts();
        let mut temps = base_temps.to_vec();
        let mut power = base_power;
        for (g, reference_power, rise) in &self.responses {
            let scale = scales.iter().find(|(name, _)| name == g).map(|(_, s)| *s).unwrap_or(0.0);
            if scale != 0.0 {
                for (t, r) in temps.iter_mut().zip(rise) {
                    *t += scale * r;
                }
                power += scale * reference_power;
            }
        }
        Ok(ThermalMap::new(mesh.clone(), temps, faces.to_vec(), power))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, Boundary, BoundaryCondition, BoxRegion, Material};
    use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn grouped_design() -> Design {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(40.0),
            },
        );
        let chip = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(0.1)]).unwrap();
        d.add_block(
            Block::heat_source("chip", chip, Material::SILICON, Watts::new(1.0)).with_group("chip"),
        );
        let vcsel =
            BoxRegion::new([mm(1.0), mm(1.0), mm(0.5)], [mm(1.2), mm(1.2), mm(0.6)]).unwrap();
        d.add_block(
            Block::heat_source("vcsel", vcsel, Material::III_V, Watts::from_milliwatts(2.0))
                .with_group("vcsel"),
        );
        d
    }

    #[test]
    fn compose_matches_direct_solve() {
        let design = grouped_design();
        let spec = MeshSpec::uniform(mm(0.2));
        let sim = Simulator::new();
        let basis = ResponseBasis::build(&sim, &design, &spec).unwrap();

        // Direct solve at chip x 1.5, vcsel x 2.5.
        let mut scaled = design.clone();
        scaled.scale_group_power("chip", 1.5);
        scaled.scale_group_power("vcsel", 2.5);
        let direct = sim.solve(&scaled, &spec).unwrap();

        let composed = basis.compose(&[("chip", 1.5), ("vcsel", 2.5)]).unwrap();
        for (a, b) in direct.temperatures().iter().zip(composed.temperatures()) {
            assert!((a - b).abs() < 1e-5, "direct {a} vs composed {b}");
        }
    }

    #[test]
    fn omitted_group_defaults_to_zero() {
        let design = grouped_design();
        let spec = MeshSpec::uniform(mm(0.4));
        let sim = Simulator::new();
        let basis = ResponseBasis::build(&sim, &design, &spec).unwrap();
        let composed = basis.compose(&[("chip", 1.0)]).unwrap();

        let mut no_vcsel = design.clone();
        no_vcsel.scale_group_power("vcsel", 0.0);
        let direct = sim.solve(&no_vcsel, &spec).unwrap();
        for (a, b) in direct.temperatures().iter().zip(composed.temperatures()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn batched_basis_matches_sequential_basis() {
        let design = grouped_design();
        let spec = MeshSpec::uniform(mm(0.3));
        let sim = Simulator::new();
        let mut seq_ctx = SolveContext::new(&design, &spec).unwrap().with_options(*sim.options());
        let sequential = ResponseBasis::build_on(&mut seq_ctx).unwrap();
        let mut batch_ctx = SolveContext::new(&design, &spec).unwrap().with_options(*sim.options());
        let batched = ResponseBasis::build_on_batched(&mut batch_ctx).unwrap();

        assert_eq!(sequential.groups(), batched.groups());
        let a = sequential.compose(&[("chip", 1.3), ("vcsel", 2.0)]).unwrap();
        let b = batched.compose(&[("chip", 1.3), ("vcsel", 2.0)]).unwrap();
        let scale = a.temperatures().iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (p, q) in a.temperatures().iter().zip(b.temperatures()) {
            assert!((p - q).abs() / scale < 1e-10, "sequential {p} vs batched {q}");
        }
        assert!((a.injected_power().value() - b.injected_power().value()).abs() < 1e-12);
    }

    #[test]
    fn unknown_group_rejected() {
        let design = grouped_design();
        let spec = MeshSpec::uniform(mm(0.4));
        let basis = ResponseBasis::build(&Simulator::new(), &design, &spec).unwrap();
        assert!(matches!(
            basis.compose(&[("nonexistent", 1.0)]),
            Err(ThermalError::UnknownGroup { .. })
        ));
    }

    #[test]
    fn ungrouped_design_rejected() {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(1.0), mm(1.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(100.0),
                ambient: Celsius::new(25.0),
            },
        );
        let spec = MeshSpec::uniform(mm(0.5));
        assert!(matches!(
            ResponseBasis::build(&Simulator::new(), &d, &spec),
            Err(ThermalError::BadParameter { .. })
        ));
    }

    #[test]
    fn groups_listed() {
        let design = grouped_design();
        let spec = MeshSpec::uniform(mm(0.4));
        let basis = ResponseBasis::build(&Simulator::new(), &design, &spec).unwrap();
        assert_eq!(basis.groups(), vec!["chip", "vcsel"]);
    }
}
