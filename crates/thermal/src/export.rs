//! Thermal-map export: CSV / JSON slices and ASCII heat rendering.
//!
//! The paper's Figure 4 shows IcTherm's output as a colored 3D temperature
//! map. This module provides the equivalent inspection surface for
//! [`ThermalMap`]: extract a horizontal slice at a given height, dump it as
//! CSV or JSON for plotting, or render it directly in the terminal as an
//! ASCII heat map (useful in examples and for debugging mesh/placement
//! issues without leaving the console).

use serde::{Deserialize, Serialize};
use vcsel_units::Meters;

use crate::{ThermalError, ThermalMap};

/// A horizontal (constant-z) slice of a thermal map.
///
/// Produced by [`ThermalMap::slice_at`]; cell-centered values on the mesh's
/// x/y grid at the z-layer containing the requested height.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapSlice {
    /// Height the slice was taken at, m.
    pub z: f64,
    /// x cell-center coordinates, m.
    pub xs: Vec<f64>,
    /// y cell-center coordinates, m.
    pub ys: Vec<f64>,
    /// Temperatures in °C, row-major: `values[j][i]` at `(xs[i], ys[j])`.
    pub values: Vec<Vec<f64>>,
}

impl MapSlice {
    /// Minimum temperature on the slice.
    pub fn min(&self) -> f64 {
        self.values.iter().flatten().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum temperature on the slice.
    pub fn max(&self) -> f64 {
        self.values.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Serializes the slice as CSV: a header row of x coordinates (meters),
    /// then one row per y with the y coordinate in the first column.
    pub fn to_csv(&self) -> String {
        use core::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "y\\x");
        for x in &self.xs {
            let _ = write!(s, ",{x:.6e}");
        }
        let _ = writeln!(s);
        for (j, y) in self.ys.iter().enumerate() {
            let _ = write!(s, "{y:.6e}");
            for v in &self.values[j] {
                let _ = write!(s, ",{v:.4}");
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Renders the slice as an ASCII heat map, at most `max_cols` characters
    /// wide (the grid is decimated, never interpolated). The ramp runs
    /// ` .:-=+*#%@` from the slice minimum to the slice maximum.
    pub fn to_ascii(&self, max_cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let (lo, hi) = (self.min(), self.max());
        let span = (hi - lo).max(1e-12);
        let nx = self.xs.len();
        let ny = self.ys.len();
        let step_x = nx.div_ceil(max_cols.max(1));
        // Terminal cells are ~2x taller than wide; decimate y twice as hard.
        let step_y = (2 * step_x).max(1);
        let mut s = String::new();
        s.push_str(&format!("{lo:.2} °C (' ') … {hi:.2} °C ('@')\n"));
        // Row 0 is the bottom of the die: print top-down.
        for j in (0..ny).step_by(step_y).collect::<Vec<_>>().into_iter().rev() {
            for i in (0..nx).step_by(step_x) {
                let t = self.values[j][i];
                let idx = (((t - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
                s.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            s.push('\n');
        }
        s
    }
}

impl ThermalMap {
    /// Extracts the constant-z slice through the cell layer containing
    /// height `z`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadParameter`] when `z` lies outside the
    /// domain.
    pub fn slice_at(&self, z: Meters) -> Result<MapSlice, ThermalError> {
        let mesh = self.mesh();
        let k = mesh.z().locate(z.value()).ok_or_else(|| ThermalError::BadParameter {
            reason: format!("slice height {z} outside the meshed domain"),
        })?;
        let (nx, ny, _) = mesh.shape();
        let xs: Vec<f64> = (0..nx).map(|i| mesh.x().center(i)).collect();
        let ys: Vec<f64> = (0..ny).map(|j| mesh.y().center(j)).collect();
        let temps = self.temperatures();
        let values: Vec<Vec<f64>> =
            (0..ny).map(|j| (0..nx).map(|i| temps[mesh.index(i, j, k)]).collect()).collect();
        Ok(MapSlice { z: mesh.z().center(k), xs, ys, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Block, Boundary, BoundaryCondition, BoxRegion, Design, Material, MeshSpec, Simulator,
    };
    use vcsel_units::{Celsius, Watts, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn solved_map() -> ThermalMap {
        let domain = BoxRegion::new([Meters::ZERO; 3], [mm(4.0), mm(4.0), mm(1.0)]).unwrap();
        let mut d = Design::new(domain, Material::SILICON).unwrap();
        d.set_boundary(
            Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(2_000.0),
                ambient: Celsius::new(40.0),
            },
        );
        // Off-center heat source so the slice is asymmetric.
        let src =
            BoxRegion::new([mm(0.5), mm(0.5), Meters::ZERO], [mm(1.5), mm(1.5), mm(0.2)]).unwrap();
        d.add_block(Block::heat_source("s", src, Material::COPPER, Watts::new(0.5)));
        Simulator::new().solve(&d, &MeshSpec::uniform(mm(0.25))).unwrap()
    }

    #[test]
    fn slice_has_grid_shape_and_physical_values() {
        let map = solved_map();
        let slice = map.slice_at(mm(0.1)).unwrap();
        assert_eq!(slice.xs.len(), 16);
        assert_eq!(slice.ys.len(), 16);
        assert_eq!(slice.values.len(), 16);
        assert!(slice.values.iter().all(|row| row.len() == 16));
        assert!(slice.min() >= 40.0, "nothing below ambient: {}", slice.min());
        assert!(slice.max() > slice.min());
    }

    #[test]
    fn hot_spot_is_where_the_source_is() {
        let map = solved_map();
        let slice = map.slice_at(mm(0.1)).unwrap();
        // Source is centered on (1, 1) mm -> grid index ~4 of 16.
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for (j, row) in slice.values.iter().enumerate() {
            for (i, &v) in row.iter().enumerate() {
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        assert!(best.0 < 8 && best.1 < 8, "hottest cell at ({}, {})", best.0, best.1);
    }

    #[test]
    fn csv_round_trips_dimensions() {
        let map = solved_map();
        let slice = map.slice_at(mm(0.5)).unwrap();
        let csv = slice.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 16);
        assert_eq!(lines[0].split(',').count(), 1 + 16);
        // JSON round trip too (serde_json's default float parsing is 1-ulp
        // lossy, so compare with a tolerance rather than bitwise).
        let json = serde_json::to_string(&slice).unwrap();
        let back: MapSlice = serde_json::from_str(&json).unwrap();
        assert_eq!(slice.values.len(), back.values.len());
        for (a, b) in slice.values.iter().flatten().zip(back.values.iter().flatten()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ascii_rendering_is_bounded_and_ramped() {
        let map = solved_map();
        let slice = map.slice_at(mm(0.1)).unwrap();
        let art = slice.to_ascii(8);
        let body: Vec<&str> = art.lines().skip(1).collect();
        assert!(!body.is_empty());
        assert!(body.iter().all(|l| l.len() <= 8), "rows wider than requested");
        // The render must use more than one ramp level (there IS a hotspot).
        let distinct: std::collections::HashSet<char> =
            body.iter().flat_map(|l| l.chars()).collect();
        assert!(distinct.len() > 1, "flat rendering: {art}");
    }

    #[test]
    fn out_of_domain_slice_rejected() {
        let map = solved_map();
        assert!(map.slice_at(mm(5.0)).is_err());
        assert!(map.slice_at(mm(-0.1)).is_err());
    }
}
