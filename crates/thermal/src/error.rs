//! Error type for the thermal simulator.

use core::fmt;
use vcsel_numerics::NumericsError;

/// Errors produced while building or solving a thermal model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A geometric region is degenerate (zero/negative extent) or
    /// non-finite.
    BadRegion {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// A block lies (partly) outside the design's domain.
    BlockOutsideDomain {
        /// Name of the offending block.
        block: String,
    },
    /// Every boundary face is adiabatic, so the steady-state problem has no
    /// heat-escape path and is singular.
    NoHeatPath,
    /// A physical parameter is invalid (non-positive conductivity, negative
    /// heater power, …).
    BadParameter {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// The mesh specification would produce more cells than `limit`.
    MeshTooLarge {
        /// Number of cells the specification asks for.
        cells: usize,
        /// The configured cell-count limit.
        limit: usize,
    },
    /// The linear solver failed.
    Solver(NumericsError),
    /// A superposition query referenced an unknown power group.
    UnknownGroup {
        /// Name of the missing group.
        group: String,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadRegion { reason } => write!(f, "bad region: {reason}"),
            Self::BlockOutsideDomain { block } => {
                write!(f, "block '{block}' lies outside the design domain")
            }
            Self::NoHeatPath => write!(
                f,
                "all boundaries are adiabatic; steady state requires at least \
                 one convective or isothermal face"
            ),
            Self::BadParameter { reason } => write!(f, "bad parameter: {reason}"),
            Self::MeshTooLarge { cells, limit } => {
                write!(f, "mesh would contain {cells} cells, exceeding the limit of {limit}")
            }
            Self::Solver(e) => write!(f, "linear solver failed: {e}"),
            Self::UnknownGroup { group } => write!(f, "unknown power group '{group}'"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for ThermalError {
    fn from(e: NumericsError) -> Self {
        Self::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ThermalError::NoHeatPath.to_string().contains("adiabatic"));
        let e = ThermalError::MeshTooLarge { cells: 100, limit: 10 };
        assert!(e.to_string().contains("100"));
        let e = ThermalError::UnknownGroup { group: "vcsel".into() };
        assert!(e.to_string().contains("vcsel"));
    }

    #[test]
    fn solver_error_chains() {
        use std::error::Error;
        let e = ThermalError::from(NumericsError::BadInput { reason: "x".into() });
        assert!(e.source().is_some());
    }
}
