//! The blueprint layer: engine construction as an explicit, cacheable
//! **build → artifact → restore** pipeline.
//!
//! [`SolveContext`] construction used to interleave meshing, FVM assembly,
//! power painting and preconditioner factorization inside one private
//! constructor. [`EngineBlueprint`] splits that into phases with a stable
//! identity in the middle:
//!
//! 1. **Key** — the blueprint captures everything that determines the
//!    operator: the mesh, the painted conductivity field and the boundary
//!    set, folded into a [`content hash`](EngineBlueprint::content_hash)
//!    (bitwise over IEEE values — see
//!    [`ContentHasher`](vcsel_numerics::ContentHasher)).
//! 2. **Build** — [`EngineBlueprint::build`] runs the classic fresh path:
//!    assembly, painting, one ladder factorization.
//! 3. **Artifact** — [`EngineBlueprint::engine_artifact`] serializes the
//!    built engine's operator-derived state (operator + factor, or the
//!    whole multigrid hierarchy) into one checksummed envelope.
//! 4. **Restore** — [`EngineBlueprint::restore`] rebuilds a full engine
//!    from those bytes with **zero factorizations**: the deserialized
//!    preconditioner goes straight onto the ladder's first rung via
//!    [`SolveLadder::with_prebuilt`], while powers are re-painted from the
//!    design (they are not part of the operator key).
//!
//! Restore never panics on hostile bytes: every failure — truncation,
//! checksum mismatch, version skew, a key collision caught by the content
//! hash, shape drift — surfaces as a typed [`RestoreError`] so the caller
//! (the `vcsel_core` engine cache) can fall back to [`EngineBlueprint::build`].

use std::sync::Arc;

use vcsel_numerics::artifact::KIND_DOWNSTREAM_BASE;
use vcsel_numerics::{
    AnyPreconditioner, ArtifactError, ArtifactReader, ArtifactWriter, ContentHasher, CsrMatrix,
    IncompleteCholesky, Multigrid, MultigridHierarchy, NumericsError, Preconditioner,
    PreconditionerKind, SolveLadder,
};

use crate::assembly::{self, BoundaryFace};
use crate::context::{escalation_chain, paint_design, EngineParts};
use crate::{
    Boundary, BoundaryCondition, BoundarySet, Design, Mesh, MeshSpec, SolveContext, ThermalError,
};

/// Artifact-envelope kind byte of a serialized thermal engine (the first
/// value in the downstream range `vcsel_numerics` reserves for composed
/// envelopes).
pub const ENGINE_ARTIFACT_KIND: u8 = KIND_DOWNSTREAM_BASE;

/// Why an engine restore was rejected. Every variant is a
/// fall-back-to-fresh-build signal, never a panic; the engine cache logs
/// the value in its probe attempt log.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum RestoreError {
    /// The envelope or a nested section failed decoding or revalidation
    /// (truncation, checksum mismatch, version skew, structural damage).
    Artifact(ArtifactError),
    /// The artifact's stored content hash disagrees with the blueprint's —
    /// a cache-key collision or stale entry for a different conductivity
    /// field / boundary set.
    ContentMismatch {
        /// Hash stored in the artifact.
        stored: u64,
        /// Hash this blueprint computed from its design and mesh.
        expected: u64,
    },
    /// Decoded state is internally consistent but does not fit this
    /// blueprint's mesh (cell counts, vector lengths, face indices).
    Shape {
        /// First violated expectation.
        reason: String,
    },
    /// A fresh-construction step that restore shares with the build path
    /// (power painting, ladder adoption) failed.
    Build(ThermalError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Artifact(e) => write!(f, "engine artifact rejected: {e}"),
            Self::ContentMismatch { stored, expected } => write!(
                f,
                "engine artifact content mismatch: stored {stored:#018x}, expected {expected:#018x}"
            ),
            Self::Shape { reason } => write!(f, "engine artifact shape mismatch: {reason}"),
            Self::Build(e) => write!(f, "engine restore fell over in a shared build step: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Artifact(e) => Some(e),
            Self::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for RestoreError {
    fn from(e: ArtifactError) -> Self {
        Self::Artifact(e)
    }
}

impl From<NumericsError> for RestoreError {
    fn from(e: NumericsError) -> Self {
        Self::Artifact(ArtifactError::from(e))
    }
}

impl From<ThermalError> for RestoreError {
    fn from(e: ThermalError) -> Self {
        Self::Build(e)
    }
}

fn shape(reason: String) -> RestoreError {
    RestoreError::Shape { reason }
}

/// The display name the engine's first ladder rung will carry for `kind`
/// (matches [`vcsel_numerics::Preconditioner::name`]).
fn kind_name(kind: PreconditionerKind) -> &'static str {
    match kind {
        PreconditionerKind::Jacobi => "jacobi",
        PreconditionerKind::IncompleteCholesky => "ic0",
        PreconditionerKind::Ssor { .. } => "ssor",
        PreconditionerKind::Multigrid { .. } => "multigrid",
    }
}

/// A serializable description of how to construct one solve engine — the
/// `(design, mesh, preconditioner kind)` triple plus the content hash that
/// names the resulting operator. See the module-level docs above for the
/// build → artifact → restore pipeline.
#[derive(Debug, Clone)]
pub struct EngineBlueprint {
    design: Design,
    mesh: Mesh,
    kind: PreconditionerKind,
    /// Whether a rung-0 construction failure propagates (explicit kind)
    /// instead of degrading to a weaker rung (engine default).
    strict: bool,
    /// Painted per-cell conductivity — computed once here, shared by the
    /// content hash and the built engine's adopt-design fingerprint.
    conductivity: Vec<f64>,
    boundaries: BoundarySet,
    content_hash: u64,
}

impl EngineBlueprint {
    /// Meshes `design` per `spec` and captures the blueprint with the
    /// size-based default preconditioner
    /// ([`SolveContext::default_steady_kind`]).
    ///
    /// # Errors
    ///
    /// Propagates meshing failures ([`ThermalError::MeshTooLarge`],
    /// [`ThermalError::BadParameter`]).
    pub fn new(design: &Design, spec: &MeshSpec) -> Result<Self, ThermalError> {
        let mesh = Mesh::build(design, spec)?;
        Ok(Self::on_mesh(design, mesh))
    }

    /// Captures a blueprint on an already-built mesh (sweeps share one).
    pub fn on_mesh(design: &Design, mesh: Mesh) -> Self {
        let kind = SolveContext::default_steady_kind(mesh.cell_count());
        let conductivity = assembly::paint_conductivity(design, &mesh);
        let boundaries = *design.boundaries();
        let content_hash = fingerprint(&mesh, &conductivity, &boundaries);
        Self {
            design: design.clone(),
            mesh,
            kind,
            strict: false,
            conductivity,
            boundaries,
            content_hash,
        }
    }

    /// Overrides the preconditioner kind (builder style). An explicit kind
    /// is *strict*: its construction failure propagates instead of
    /// degrading to a weaker rung, matching
    /// [`SolveContext::new_preconditioned`].
    #[must_use]
    pub fn with_kind(mut self, kind: PreconditionerKind) -> Self {
        self.kind = kind;
        self.strict = true;
        self
    }

    /// The operator content hash: mesh shape, the painted per-cell
    /// conductivity (bitwise IEEE), and the boundary set. Two blueprints
    /// share a hash iff they assemble the identical operator and boundary
    /// RHS — the invalidation contract the engine cache keys on.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// The preconditioner kind engines from this blueprint lead with.
    pub fn kind(&self) -> PreconditionerKind {
        self.kind
    }

    /// The blueprint's mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The classic fresh path: FVM assembly, power painting, one ladder
    /// factorization. Exactly what [`SolveContext::on_mesh`] /
    /// [`SolveContext::on_mesh_with`] do — they now delegate here.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures ([`ThermalError::NoHeatPath`],
    /// [`ThermalError::BadParameter`]) and, for strict blueprints, the
    /// requested preconditioner's construction error.
    pub fn build(&self) -> Result<SolveContext, ThermalError> {
        // Assembling a zero-power clone yields the conduction matrix and the
        // pure boundary RHS; power only ever moves the right-hand side.
        let mut hollow = self.design.clone();
        for b in hollow.blocks_mut() {
            b.set_power(vcsel_units::Watts::ZERO);
        }
        let disc = assembly::assemble(&hollow, &self.mesh)?;
        let (static_power, group_power) = paint_design(&self.design, &self.mesh)?;
        let matrix = Arc::new(disc.matrix);
        // Default engines (non-strict) may open on a weaker rung if the
        // preferred kind cannot build; explicit choices propagate the exact
        // kind's construction error instead.
        let ladder = SolveLadder::new(&matrix, &escalation_chain(self.kind), self.strict)
            .map_err(ThermalError::from)?;
        Ok(SolveContext::from_parts(EngineParts {
            mesh: self.mesh.clone(),
            matrix,
            boundary_rhs: disc.rhs,
            boundary_faces: disc.boundary_faces,
            static_power,
            group_power,
            conductivity: self.conductivity.clone(),
            boundaries: self.boundaries,
            ladder,
        }))
    }

    /// Serializes `ctx`'s operator-derived state — keyed by this
    /// blueprint's content hash — into one artifact envelope: the
    /// multigrid hierarchy (which embeds the operator as its finest
    /// level), or the operator plus its IC(0) factor.
    ///
    /// Returns `None` when the engine is not in a cacheable state: its
    /// active preconditioner is not the blueprint's lead kind (the ladder
    /// escalated, or a non-cacheable kind like Jacobi/SSOR leads), or the
    /// preconditioner does not alias the engine's operator.
    pub fn engine_artifact(&self, ctx: &SolveContext) -> Option<Vec<u8>> {
        let n = self.mesh.cell_count();
        if ctx.shared_operator().rows() != n {
            return None;
        }
        if ctx.preconditioner().name() != kind_name(self.kind) {
            return None;
        }
        let mut w = ArtifactWriter::new(ENGINE_ARTIFACT_KIND);
        w.put_u64(self.content_hash);
        w.put_u64(n as u64);
        match ctx.preconditioner() {
            AnyPreconditioner::Multigrid(m) => {
                if !Arc::ptr_eq(m.hierarchy().fine_operator(), ctx.shared_operator()) {
                    return None;
                }
                w.put_u8(0);
                // The hierarchy artifact embeds the operator as its finest
                // level, so the ~paper-scale matrix is stored exactly once.
                w.put_bytes(&m.to_artifact());
            }
            AnyPreconditioner::IncompleteCholesky(ic) => {
                w.put_u8(1);
                w.put_bytes(&ctx.shared_operator().to_artifact());
                w.put_bytes(&ic.to_artifact());
            }
            _ => return None,
        }
        w.put_f64_slice(ctx.boundary_rhs_ref());
        let faces = ctx.boundary_faces_ref();
        w.put_u64(faces.len() as u64);
        for f in faces {
            w.put_u64(f.cell as u64);
            w.put_f64(f.conductance);
            w.put_f64(f.reference);
        }
        Some(w.finish())
    }

    /// Rebuilds a full engine from [`EngineBlueprint::engine_artifact`]
    /// bytes with **zero factorizations**: the operator and preconditioner
    /// deserialize (with full structural revalidation) onto the ladder's
    /// first rung, and only the cheap power painting runs fresh. The first
    /// solve of the restored engine is bitwise identical to a fresh
    /// build's.
    ///
    /// # Errors
    ///
    /// A typed [`RestoreError`] for every rejection: envelope or payload
    /// damage, a content-hash mismatch (key collision / stale entry),
    /// shape drift against this blueprint's mesh, or a failure in the
    /// shared fresh-construction steps.
    pub fn restore(&self, bytes: &[u8]) -> Result<SolveContext, RestoreError> {
        let mut r = ArtifactReader::open(bytes, ENGINE_ARTIFACT_KIND)?;
        let stored = r.get_u64()?;
        if stored != self.content_hash {
            return Err(RestoreError::ContentMismatch { stored, expected: self.content_hash });
        }
        let n = r.get_usize()?;
        if n != self.mesh.cell_count() {
            return Err(shape(format!(
                "artifact engine has {n} cells, blueprint mesh has {}",
                self.mesh.cell_count()
            )));
        }
        let (matrix, precond) = match r.get_u8()? {
            0 => {
                let h = MultigridHierarchy::from_artifact(r.get_bytes()?)?;
                let matrix = Arc::clone(h.fine_operator());
                let mg = Multigrid::from_hierarchy(h)?;
                (matrix, AnyPreconditioner::Multigrid(Box::new(mg)))
            }
            1 => {
                let m = CsrMatrix::from_artifact(r.get_bytes()?)?;
                m.validate_symmetric()?;
                let ic = IncompleteCholesky::from_artifact(r.get_bytes()?)?;
                (Arc::new(m), AnyPreconditioner::IncompleteCholesky(ic))
            }
            t => {
                return Err(RestoreError::Artifact(ArtifactError::BadStructure {
                    reason: format!("unknown engine preconditioner tag {t}"),
                }))
            }
        };
        if matrix.rows() != n {
            return Err(shape(format!(
                "restored operator has {} rows for a {n}-cell engine",
                matrix.rows()
            )));
        }
        let boundary_rhs = r.get_f64_slice()?;
        if boundary_rhs.len() != n {
            return Err(shape(format!(
                "restored boundary RHS has {} entries for {n} cells",
                boundary_rhs.len()
            )));
        }
        let face_count = r.get_usize()?;
        let mut boundary_faces = Vec::with_capacity(face_count.min(bytes.len() / 24));
        for _ in 0..face_count {
            let cell = r.get_usize()?;
            let conductance = r.get_f64()?;
            let reference = r.get_f64()?;
            if cell >= n || !conductance.is_finite() || !reference.is_finite() {
                return Err(shape(format!(
                    "restored boundary face is out of range (cell {cell}, g {conductance})"
                )));
            }
            boundary_faces.push(BoundaryFace { cell, conductance, reference });
        }
        r.expect_end()?;

        // Powers are not part of the operator key: re-paint them from the
        // design, exactly as the fresh path would.
        let (static_power, group_power) = paint_design(&self.design, &self.mesh)?;
        // Zero factorizations: the deserialized preconditioner *is* rung 0.
        let ladder = SolveLadder::with_prebuilt(precond, &escalation_chain(self.kind))?;
        Ok(SolveContext::from_parts(EngineParts {
            mesh: self.mesh.clone(),
            matrix,
            boundary_rhs,
            boundary_faces,
            static_power,
            group_power,
            conductivity: self.conductivity.clone(),
            boundaries: self.boundaries,
            ladder,
        }))
    }
}

/// The operator content hash: mesh shape and cell count, the painted
/// conductivity field (IEEE-bitwise), and the boundary set.
fn fingerprint(mesh: &Mesh, conductivity: &[f64], boundaries: &BoundarySet) -> u64 {
    let mut h = ContentHasher::new();
    let (nx, ny, nz) = mesh.shape();
    h.push_u64(nx as u64);
    h.push_u64(ny as u64);
    h.push_u64(nz as u64);
    h.push_u64(mesh.cell_count() as u64);
    for &k in conductivity {
        h.push_f64(k);
    }
    for face in Boundary::all() {
        match boundaries.get(face) {
            BoundaryCondition::Adiabatic => h.push_u8(0),
            BoundaryCondition::Convective { h: hc, ambient } => {
                h.push_u8(1);
                h.push_f64(hc.value());
                h.push_f64(ambient.value());
            }
            BoundaryCondition::Isothermal { temperature } => {
                h.push_u8(2);
                h.push_f64(temperature.value());
            }
        }
    }
    h.finish()
}
