//! Rectangular-block geometry: the system-specification layer of the
//! methodology (paper Section IV-B).
//!
//! "The different components of the system (i.e. package, die, heat sources,
//! and optical devices) are represented as rectangular blocks, defined by
//! their dimension, their position, and a constitutive material. The blocks
//! can be assigned to power values, which allow modeling the heat sources."

use serde::{Deserialize, Serialize};
use vcsel_units::{Meters, Watts};

use crate::boundary::{BoundaryCondition, BoundarySet};
use crate::{Material, ThermalError};

/// An axis-aligned box `[min, max)` in meters.
///
/// # Example
///
/// ```
/// use vcsel_thermal::BoxRegion;
/// use vcsel_units::Meters;
///
/// let r = BoxRegion::new(
///     [Meters::ZERO; 3],
///     [Meters::from_micrometers(15.0), Meters::from_micrometers(30.0),
///      Meters::from_micrometers(4.0)],
/// )?;
/// assert!((r.size(0).as_micrometers() - 15.0).abs() < 1e-9);
/// # Ok::<(), vcsel_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxRegion {
    min: [f64; 3],
    max: [f64; 3],
}

impl BoxRegion {
    /// Creates a box from its minimum corner and maximum corner.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadRegion`] if any extent is non-positive or
    /// non-finite.
    pub fn new(min: [Meters; 3], max: [Meters; 3]) -> Result<Self, ThermalError> {
        let min = [min[0].value(), min[1].value(), min[2].value()];
        let max = [max[0].value(), max[1].value(), max[2].value()];
        for a in 0..3 {
            if !min[a].is_finite() || !max[a].is_finite() {
                return Err(ThermalError::BadRegion { reason: "non-finite coordinate".into() });
            }
            if max[a] <= min[a] {
                return Err(ThermalError::BadRegion {
                    reason: format!("axis {a}: max ({}) must exceed min ({})", max[a], min[a]),
                });
            }
        }
        Ok(Self { min, max })
    }

    /// Creates a box from its minimum corner and size.
    ///
    /// # Errors
    ///
    /// Same contract as [`BoxRegion::new`].
    pub fn with_size(origin: [Meters; 3], size: [Meters; 3]) -> Result<Self, ThermalError> {
        Self::new(origin, [origin[0] + size[0], origin[1] + size[1], origin[2] + size[2]])
    }

    /// Minimum corner coordinate on `axis` (0 = x, 1 = y, 2 = z).
    pub fn min(&self, axis: usize) -> Meters {
        Meters::new(self.min[axis])
    }

    /// Maximum corner coordinate on `axis`.
    pub fn max(&self, axis: usize) -> Meters {
        Meters::new(self.max[axis])
    }

    /// Extent along `axis`.
    pub fn size(&self, axis: usize) -> Meters {
        Meters::new(self.max[axis] - self.min[axis])
    }

    /// Geometric center.
    pub fn center(&self) -> [Meters; 3] {
        [
            Meters::new(0.5 * (self.min[0] + self.max[0])),
            Meters::new(0.5 * (self.min[1] + self.max[1])),
            Meters::new(0.5 * (self.min[2] + self.max[2])),
        ]
    }

    /// Volume of the box.
    pub fn volume(&self) -> vcsel_units::CubicMeters {
        vcsel_units::CubicMeters::new(
            (self.max[0] - self.min[0]) * (self.max[1] - self.min[1]) * (self.max[2] - self.min[2]),
        )
    }

    /// Whether the point (in raw meters) lies inside `[min, max)`.
    pub(crate) fn contains_raw(&self, p: [f64; 3]) -> bool {
        (0..3).all(|a| p[a] >= self.min[a] && p[a] < self.max[a])
    }

    /// Whether `point` lies inside `[min, max)`.
    pub fn contains(&self, point: [Meters; 3]) -> bool {
        self.contains_raw([point[0].value(), point[1].value(), point[2].value()])
    }

    /// Whether `other` lies entirely within `self` (touching faces allowed).
    pub fn encloses(&self, other: &BoxRegion) -> bool {
        (0..3).all(|a| other.min[a] >= self.min[a] - 1e-12 && other.max[a] <= self.max[a] + 1e-12)
    }

    /// Returns a copy translated by the given offsets.
    pub fn translated(&self, dx: Meters, dy: Meters, dz: Meters) -> BoxRegion {
        let d = [dx.value(), dy.value(), dz.value()];
        BoxRegion {
            min: [self.min[0] + d[0], self.min[1] + d[1], self.min[2] + d[2]],
            max: [self.max[0] + d[0], self.max[1] + d[1], self.max[2] + d[2]],
        }
    }
}

/// A named rectangular block with a material and (optionally) a dissipated
/// power.
///
/// Blocks later in the design's list take precedence where they overlap
/// earlier ones, which is how small devices (TSVs, VCSELs) are embedded in
/// larger layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    name: String,
    region: BoxRegion,
    material: Material,
    power: Watts,
    group: Option<String>,
}

impl Block {
    /// Creates a passive (non-dissipating) block.
    pub fn passive(name: impl Into<String>, region: BoxRegion, material: Material) -> Self {
        Self { name: name.into(), region, material, power: Watts::ZERO, group: None }
    }

    /// Creates a block dissipating `power`, spread uniformly over its volume.
    pub fn heat_source(
        name: impl Into<String>,
        region: BoxRegion,
        material: Material,
        power: Watts,
    ) -> Self {
        Self { name: name.into(), region, material, power, group: None }
    }

    /// Tags the block with a named power *group* for superposition-based
    /// sweeps (see [`crate::ResponseBasis`]). Returns `self` builder-style.
    pub fn with_group(mut self, group: impl Into<String>) -> Self {
        self.group = Some(group.into());
        self
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Occupied region.
    pub fn region(&self) -> &BoxRegion {
        &self.region
    }

    /// Constitutive material.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Dissipated power.
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Sets the dissipated power (used by sweeps).
    pub fn set_power(&mut self, power: Watts) {
        self.power = power;
    }

    /// Power-group tag, if any.
    pub fn group(&self) -> Option<&str> {
        self.group.as_deref()
    }
}

/// A complete thermal design: domain, background material, blocks and
/// boundary conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    domain: BoxRegion,
    background: Material,
    blocks: Vec<Block>,
    boundaries: BoundarySet,
}

impl Design {
    /// Creates an empty design over `domain` filled with `background`
    /// material and fully adiabatic boundaries (add at least one convective
    /// or isothermal face before solving).
    ///
    /// # Errors
    ///
    /// Currently infallible but returns `Result` for future validation
    /// (e.g. domain size limits); returns the design on success.
    pub fn new(domain: BoxRegion, background: Material) -> Result<Self, ThermalError> {
        Ok(Self { domain, background, blocks: Vec::new(), boundaries: BoundarySet::adiabatic() })
    }

    /// The simulation domain.
    pub fn domain(&self) -> &BoxRegion {
        &self.domain
    }

    /// Background (fill) material.
    pub fn background(&self) -> &Material {
        &self.background
    }

    /// All blocks, in insertion (= precedence) order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mutable access to the blocks (for power sweeps).
    pub fn blocks_mut(&mut self) -> &mut [Block] {
        &mut self.blocks
    }

    /// Boundary conditions.
    pub fn boundaries(&self) -> &BoundarySet {
        &self.boundaries
    }

    /// Sets the condition on one boundary face.
    pub fn set_boundary(&mut self, face: crate::Boundary, condition: BoundaryCondition) {
        self.boundaries.set(face, condition);
    }

    /// Adds a block. Later blocks take material precedence where they
    /// overlap earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if the block is not fully inside the domain; use
    /// [`Design::try_add_block`] for a fallible version.
    pub fn add_block(&mut self, block: Block) {
        self.try_add_block(block).expect("block must lie inside the design domain");
    }

    /// Adds a block, failing if it lies (partly) outside the domain.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BlockOutsideDomain`].
    pub fn try_add_block(&mut self, block: Block) -> Result<(), ThermalError> {
        if !self.domain.encloses(block.region()) {
            return Err(ThermalError::BlockOutsideDomain { block: block.name().to_string() });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Total dissipated power over all blocks.
    pub fn total_power(&self) -> Watts {
        self.blocks.iter().map(Block::power).sum()
    }

    /// Names of all distinct power groups, in first-appearance order.
    pub fn group_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for b in &self.blocks {
            if let Some(g) = b.group() {
                if !names.contains(&g) {
                    names.push(g);
                }
            }
        }
        names
    }

    /// Sum of reference powers of the blocks in `group`.
    pub fn group_power(&self, group: &str) -> Watts {
        self.blocks.iter().filter(|b| b.group() == Some(group)).map(Block::power).sum()
    }

    /// Multiplies the power of every block in `group` by `scale`.
    pub fn scale_group_power(&mut self, group: &str, scale: f64) {
        for b in &mut self.blocks {
            if b.group() == Some(group) {
                let p = b.power();
                b.set_power(p * scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcsel_units::{Celsius, WattsPerSquareMeterKelvin};

    fn mm(v: f64) -> Meters {
        Meters::from_millimeters(v)
    }

    fn unit_domain() -> BoxRegion {
        BoxRegion::new([Meters::ZERO; 3], [mm(10.0), mm(10.0), mm(1.0)]).unwrap()
    }

    #[test]
    fn region_accessors() {
        let r = unit_domain();
        assert_eq!(r.min(0).value(), 0.0);
        assert!((r.size(2).as_millimeters() - 1.0).abs() < 1e-12);
        assert!((r.center()[0].as_millimeters() - 5.0).abs() < 1e-12);
        assert!((r.volume().value() - 1e-7).abs() < 1e-19);
    }

    #[test]
    fn region_rejects_degenerate() {
        assert!(BoxRegion::new([Meters::ZERO; 3], [Meters::ZERO, mm(1.0), mm(1.0)]).is_err());
        assert!(BoxRegion::new([mm(2.0), Meters::ZERO, Meters::ZERO], [mm(1.0), mm(1.0), mm(1.0)])
            .is_err());
        assert!(BoxRegion::new(
            [Meters::new(f64::NAN), Meters::ZERO, Meters::ZERO],
            [mm(1.0), mm(1.0), mm(1.0)]
        )
        .is_err());
    }

    #[test]
    fn contains_and_encloses() {
        let r = unit_domain();
        assert!(r.contains([mm(5.0), mm(5.0), mm(0.5)]));
        assert!(!r.contains([mm(11.0), mm(5.0), mm(0.5)]));
        // max edge is exclusive
        assert!(!r.contains([mm(10.0), mm(5.0), mm(0.5)]));
        let inner =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(2.0), mm(2.0), mm(1.0)]).unwrap();
        assert!(r.encloses(&inner));
        assert!(!inner.encloses(&r));
    }

    #[test]
    fn translation() {
        let r = BoxRegion::with_size([Meters::ZERO; 3], [mm(1.0), mm(1.0), mm(1.0)]).unwrap();
        let t = r.translated(mm(3.0), mm(4.0), Meters::ZERO);
        assert!((t.min(0).as_millimeters() - 3.0).abs() < 1e-12);
        assert!((t.max(1).as_millimeters() - 5.0).abs() < 1e-12);
        assert!((t.size(2).as_millimeters() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn design_rejects_out_of_domain_block() {
        let mut d = Design::new(unit_domain(), Material::SILICON).unwrap();
        let outside =
            BoxRegion::new([mm(9.0), mm(9.0), Meters::ZERO], [mm(12.0), mm(10.0), mm(1.0)])
                .unwrap();
        let err = d.try_add_block(Block::passive("oops", outside, Material::COPPER)).unwrap_err();
        assert!(matches!(err, ThermalError::BlockOutsideDomain { .. }));
    }

    #[test]
    fn power_groups() {
        let mut d = Design::new(unit_domain(), Material::SILICON).unwrap();
        let r =
            BoxRegion::new([mm(1.0), mm(1.0), Meters::ZERO], [mm(2.0), mm(2.0), mm(0.1)]).unwrap();
        d.add_block(
            Block::heat_source("v0", r, Material::III_V, Watts::from_milliwatts(2.0))
                .with_group("vcsel"),
        );
        d.add_block(
            Block::heat_source(
                "v1",
                r.translated(mm(3.0), Meters::ZERO, Meters::ZERO),
                Material::III_V,
                Watts::from_milliwatts(2.0),
            )
            .with_group("vcsel"),
        );
        d.add_block(
            Block::heat_source(
                "h0",
                r.translated(Meters::ZERO, mm(3.0), Meters::ZERO),
                Material::SILICON,
                Watts::from_milliwatts(1.0),
            )
            .with_group("heater"),
        );
        assert_eq!(d.group_names(), vec!["vcsel", "heater"]);
        assert!((d.group_power("vcsel").as_milliwatts() - 4.0).abs() < 1e-12);
        assert!((d.total_power().as_milliwatts() - 5.0).abs() < 1e-12);
        d.scale_group_power("vcsel", 0.5);
        assert!((d.group_power("vcsel").as_milliwatts() - 2.0).abs() < 1e-12);
        assert!((d.group_power("heater").as_milliwatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_setting() {
        let mut d = Design::new(unit_domain(), Material::SILICON).unwrap();
        d.set_boundary(
            crate::Boundary::top(),
            BoundaryCondition::Convective {
                h: WattsPerSquareMeterKelvin::new(1e4),
                ambient: Celsius::new(40.0),
            },
        );
        assert!(d.boundaries().has_heat_path());
    }
}
