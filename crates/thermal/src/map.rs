//! The solved temperature field and its query API.
//!
//! "IcTherm computes the heat transfers between the cells and outputs the
//! temperature value of each cell. This thermal map allows computing the
//! gradient temperature between any points of the system" (paper Figure 4).

use vcsel_numerics::Summary;
use vcsel_units::{Celsius, Meters, TemperatureDelta, Watts};

use crate::assembly::BoundaryFace;
use crate::{BoxRegion, Mesh};

/// A cell-centered steady-state temperature field.
///
/// Produced by [`crate::Simulator::solve`] (or composed from a
/// [`crate::ResponseBasis`]). All queries are in the design's coordinate
/// frame.
#[derive(Debug, Clone)]
pub struct ThermalMap {
    mesh: Mesh,
    temperatures: Vec<f64>,
    boundary_faces: Vec<BoundaryFace>,
    injected_power: f64,
}

impl ThermalMap {
    pub(crate) fn new(
        mesh: Mesh,
        temperatures: Vec<f64>,
        boundary_faces: Vec<BoundaryFace>,
        injected_power: f64,
    ) -> Self {
        debug_assert_eq!(mesh.cell_count(), temperatures.len());
        Self { mesh, temperatures, boundary_faces, injected_power }
    }

    /// The mesh the field lives on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Raw per-cell temperatures in °C, indexed by [`Mesh::index`].
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Temperature of the cell containing `point`, or `None` outside the
    /// domain.
    pub fn temperature_at(&self, point: [Meters; 3]) -> Option<Celsius> {
        self.mesh.locate(point).map(|i| Celsius::new(self.temperatures[i]))
    }

    /// Statistics (min / max / mean / σ) over the cells whose centers lie in
    /// `region`; `None` if the region covers no cell.
    ///
    /// The paper's two headline metrics map onto this:
    /// *average temperature* = `summary.mean`, *gradient temperature* =
    /// `summary.range()`.
    pub fn summary_in(&self, region: &BoxRegion) -> Option<Summary> {
        let cells = self.mesh.cells_in(region);
        Summary::from_iter(cells.into_iter().map(|c| self.temperatures[c]))
    }

    /// Average temperature over `region` (volume-weighted).
    pub fn average_in(&self, region: &BoxRegion) -> Option<Celsius> {
        let cells = self.mesh.cells_in(region);
        if cells.is_empty() {
            return None;
        }
        let mut sum = 0.0;
        let mut vol = 0.0;
        for c in cells {
            let v = self.mesh.cell_volume(c);
            sum += self.temperatures[c] * v;
            vol += v;
        }
        Some(Celsius::new(sum / vol))
    }

    /// Max − min temperature over `region` — the paper's "gradient
    /// temperature".
    pub fn gradient_in(&self, region: &BoxRegion) -> Option<TemperatureDelta> {
        self.summary_in(region).map(|s| TemperatureDelta::new(s.range()))
    }

    /// Temperature difference between the cells containing two points.
    pub fn gradient_between(&self, a: [Meters; 3], b: [Meters; 3]) -> Option<TemperatureDelta> {
        let ta = self.temperature_at(a)?;
        let tb = self.temperature_at(b)?;
        Some(ta.delta_from(tb))
    }

    /// Location and temperature of the hottest cell.
    ///
    /// # Panics
    ///
    /// Never panics: a map always contains at least one cell.
    pub fn hottest(&self) -> ([Meters; 3], Celsius) {
        let (idx, &t) = self
            .temperatures
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite temperatures"))
            .expect("non-empty map");
        (self.mesh.cell_center(idx), Celsius::new(t))
    }

    /// Location and temperature of the coldest cell.
    pub fn coldest(&self) -> ([Meters; 3], Celsius) {
        let (idx, &t) = self
            .temperatures
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite temperatures"))
            .expect("non-empty map");
        (self.mesh.cell_center(idx), Celsius::new(t))
    }

    /// Volume-weighted average over the whole domain.
    pub fn average(&self) -> Celsius {
        let mut sum = 0.0;
        let mut vol = 0.0;
        for c in 0..self.mesh.cell_count() {
            let v = self.mesh.cell_volume(c);
            sum += self.temperatures[c] * v;
            vol += v;
        }
        Celsius::new(sum / vol)
    }

    /// Total heat flowing out through the non-adiabatic boundary faces
    /// (positive = leaving the domain). At steady state this equals the
    /// injected power; the difference is the discretization's energy-balance
    /// defect, exercised by the property tests.
    pub fn boundary_outflow(&self) -> Watts {
        let sum: f64 = self
            .boundary_faces
            .iter()
            .map(|f| f.conductance * (self.temperatures[f.cell] - f.reference))
            .sum();
        Watts::new(sum)
    }

    /// Total power injected into the solve that produced this map.
    pub fn injected_power(&self) -> Watts {
        Watts::new(self.injected_power)
    }

    /// Relative energy-balance defect `|out - in| / max(in, ε)`.
    pub fn energy_balance_defect(&self) -> f64 {
        let inflow = self.injected_power;
        let outflow = self.boundary_outflow().value();
        (outflow - inflow).abs() / inflow.abs().max(1e-12)
    }

    pub(crate) fn parts(&self) -> (&Mesh, &[f64], &[BoundaryFace], f64) {
        (&self.mesh, &self.temperatures, &self.boundary_faces, self.injected_power)
    }
}
