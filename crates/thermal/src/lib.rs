//! 3D steady-state finite-volume thermal simulator for stacked
//! MPSoC + photonic-layer designs.
//!
//! This crate is the reproduction of **IcTherm** — the (closed-source)
//! simulator the paper uses for its thermal maps. Like IcTherm it:
//!
//! * represents the system as rectangular [`Block`]s (package, dies, BEOL,
//!   TSVs, VCSELs, microrings, drivers…), each with a constitutive
//!   [`Material`] and an optional dissipated power,
//! * discretizes the steady-state heat equation ∇·(k∇T) + q = 0 with the
//!   **Finite Volume Method** on a non-uniform rectilinear mesh
//!   ([`Mesh`], [`MeshSpec`]) whose resolution follows the structure:
//!   ~5 µm cells over the optical network interfaces, ~100 µm over the die,
//!   ~500 µm over the package,
//! * solves the resulting sparse SPD system with preconditioned conjugate
//!   gradient and returns a full-chip [`ThermalMap`] from which gradient and
//!   average temperatures of any region can be extracted (paper Figure 4).
//!
//! The crate's center of gravity is the cached solve engine: every
//! workload follows the mesh → assembly → [`SolveContext`] →
//! preconditioner-selection pipeline, where the context assembles the SPD
//! operator once, holds it behind a shared handle (the multigrid
//! hierarchy and SSOR splitting alias it rather than clone it), picks
//! IC(0) below [`SolveContext::MULTIGRID_CELL_THRESHOLD`] unknowns and
//! the smoothed-aggregation multigrid hierarchy above it, and serves any
//! number of warm-started right-hand sides. Engine construction itself is
//! an explicit [`EngineBlueprint`] pipeline — build → artifact → restore —
//! so a process can serialize a factored engine and a later process can
//! restore it with zero factorizations (the persistent engine cache in
//! `vcsel_core` rides on this).
//!
//! Because steady-state conduction with temperature-independent
//! conductivities is *linear* in the injected powers, the crate also offers
//! [`ResponseBasis`]: solve once per power *group* and recombine scalar
//! multiples, which turns the paper's P_VCSEL × P_heater × P_chip design
//! sweeps into trivial vector arithmetic with *identical* results.
//!
//! # Quickstart
//!
//! ```
//! use vcsel_thermal::{
//!     Block, BoxRegion, Boundary, Design, Material, MeshSpec, Simulator,
//! };
//! use vcsel_units::{Celsius, Meters, Watts, WattsPerSquareMeterKelvin};
//!
//! // A 10 x 10 x 1 mm silicon slab dissipating 1 W, cooled from the top.
//! let region = BoxRegion::new(
//!     [Meters::ZERO, Meters::ZERO, Meters::ZERO],
//!     [Meters::from_millimeters(10.0), Meters::from_millimeters(10.0),
//!      Meters::from_millimeters(1.0)],
//! )?;
//! let mut design = Design::new(region, Material::SILICON)?;
//! design.set_boundary(
//!     Boundary::top(),
//!     vcsel_thermal::BoundaryCondition::Convective {
//!         h: WattsPerSquareMeterKelvin::new(1000.0),
//!         ambient: Celsius::new(40.0),
//!     },
//! );
//! let heater = BoxRegion::new(
//!     [Meters::from_millimeters(4.0), Meters::from_millimeters(4.0), Meters::ZERO],
//!     [Meters::from_millimeters(6.0), Meters::from_millimeters(6.0),
//!      Meters::from_millimeters(0.2)],
//! )?;
//! design.add_block(Block::heat_source("core", heater, Material::SILICON, Watts::new(1.0)));
//!
//! let map = Simulator::new().solve(&design, &MeshSpec::uniform(Meters::from_millimeters(0.5)))?;
//! assert!(map.hottest().1.value() > 40.0);
//! # Ok::<(), vcsel_thermal::ThermalError>(())
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

mod assembly;
mod blueprint;
mod boundary;
mod compact;
mod context;
mod convergence;
mod error;
mod export;
mod geometry;
mod health;
mod map;
mod material;
mod mesh;
mod schedule;
mod simulator;
mod stepper;
mod superposition;
mod transient;

pub use blueprint::{EngineBlueprint, RestoreError, ENGINE_ARTIFACT_KIND};
pub use boundary::{Boundary, BoundaryCondition, BoundarySet};
pub use compact::{ResistanceStack, StackLayer};
pub use context::SolveContext;
pub use convergence::{ConvergenceLevel, ConvergenceStudy};
pub use error::ThermalError;
pub use export::MapSlice;
pub use geometry::{Block, BoxRegion, Design};
pub use health::SolveHealth;
pub use map::ThermalMap;
pub use material::Material;
pub use mesh::{Axis, Mesh, MeshSpec, RefineRegion};
pub use schedule::{PowerEvent, PowerSchedule};
pub use simulator::Simulator;
pub use stepper::TransientStepper;
pub use superposition::ResponseBasis;
pub use transient::{TransientSimulator, TransientTrace};
/// Re-exported so downstream crates can pick a solve-engine preconditioner
/// (including the multigrid hierarchy and its tuning knobs) without
/// depending on `vcsel_numerics` directly.
pub use vcsel_numerics::{CycleKind, MultigridConfig, PreconditionerKind, SmootherKind};
/// Re-exported so downstream crates can read the per-rung story inside a
/// [`SolveHealth`] report without depending on `vcsel_numerics` directly.
pub use vcsel_numerics::{RungAttempt, RungOutcome};
