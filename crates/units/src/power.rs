//! Power quantities: absolute watts, logarithmic dBm, and the volumetric /
//! convective densities used by the thermal solver.

use crate::optics::Decibels;

quantity!(
    /// Power in watts.
    ///
    /// Used for electrical dissipation (chip activity 12.5–31.25 W, VCSEL
    /// dissipation 0–6 mW, heater power) and for optical signal power.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_units::Watts;
    ///
    /// let p_vcsel = Watts::from_milliwatts(3.6);
    /// let p_heater = p_vcsel * 0.3; // the paper's optimal heater ratio
    /// assert!((p_heater.as_milliwatts() - 1.08).abs() < 1e-12);
    /// ```
    Watts,
    "W"
);

quantity!(
    /// Optical or electrical power on the logarithmic dBm scale
    /// (0 dBm = 1 mW).
    Dbm,
    "dBm"
);

quantity!(
    /// Volumetric heat generation density in W/m³ (what the finite-volume
    /// discretization consumes for each heat-source cell).
    WattsPerCubicMeter,
    "W/m^3"
);

quantity!(
    /// Convective heat-transfer coefficient in W/(m²·K), used for the
    /// heat-sink boundary condition.
    WattsPerSquareMeterKelvin,
    "W/(m^2·K)"
);

impl Watts {
    /// Creates a power from milliwatts.
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[inline]
    pub const fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-6)
    }

    /// Power expressed in milliwatts.
    #[inline]
    pub fn as_milliwatts(self) -> f64 {
        self.value() * 1e3
    }

    /// Power expressed in microwatts.
    #[inline]
    pub fn as_microwatts(self) -> f64 {
        self.value() * 1e6
    }

    /// Converts to the logarithmic dBm scale.
    ///
    /// Returns negative infinity (as a `Dbm`) for zero power; callers that
    /// need a finite floor should clamp first.
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        Dbm::new(10.0 * (self.as_milliwatts()).log10())
    }

    /// Attenuates this power by a (positive) loss in decibels.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_units::{Watts, Decibels};
    ///
    /// // 0.5 dB/cm over 2 cm = 1 dB of propagation loss.
    /// let out = Watts::from_milliwatts(1.0).attenuate(Decibels::new(1.0));
    /// assert!((out.as_milliwatts() - 0.794_328_2).abs() < 1e-6);
    /// ```
    #[inline]
    pub fn attenuate(self, loss: Decibels) -> Watts {
        Watts::new(self.value() * 10f64.powf(-loss.value() / 10.0))
    }
}

impl Dbm {
    /// Converts to linear watts.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts::from_milliwatts(10f64.powf(self.value() / 10.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milliwatt_round_trip() {
        let p = Watts::from_milliwatts(6.0);
        assert!((p.value() - 6e-3).abs() < 1e-15);
        assert!((p.as_milliwatts() - 6.0).abs() < 1e-12);
        assert!((Watts::from_microwatts(190.0).as_microwatts() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_anchors() {
        // 1 mW = 0 dBm, 0.01 mW = -20 dBm (paper's receiver sensitivity).
        assert!((Watts::from_milliwatts(1.0).to_dbm().value()).abs() < 1e-12);
        assert!((Watts::from_milliwatts(0.01).to_dbm().value() + 20.0).abs() < 1e-9);
        assert!((Dbm::new(0.0).to_watts().as_milliwatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attenuation_is_multiplicative() {
        let p = Watts::from_milliwatts(2.0);
        let half = p.attenuate(Decibels::new(3.010_299_956_639_812));
        assert!((half.as_milliwatts() - 1.0).abs() < 1e-9);
        // attenuating twice by x == attenuating once by 2x
        let a = p.attenuate(Decibels::new(0.7)).attenuate(Decibels::new(0.7));
        let b = p.attenuate(Decibels::new(1.4));
        assert!((a.value() - b.value()).abs() < 1e-18);
    }

    #[test]
    fn zero_power_to_dbm_is_neg_infinity() {
        assert_eq!(Watts::ZERO.to_dbm().value(), f64::NEG_INFINITY);
    }
}
