//! Length, area and volume quantities.

quantity!(
    /// Length in meters.
    ///
    /// Chip geometry spans six orders of magnitude in this toolchain — from
    /// 5 µm TSVs to 2 mm copper lids — so all APIs take [`Meters`] and expose
    /// named constructors for the sub-units actually used by the paper.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_units::Meters;
    ///
    /// let tsv = Meters::from_micrometers(5.0);
    /// let lid = Meters::from_millimeters(2.0);
    /// assert!(tsv < lid);
    /// assert!((lid.as_millimeters() - 2.0).abs() < 1e-12);
    /// ```
    Meters,
    "m"
);

quantity!(
    /// Area in square meters.
    SquareMeters,
    "m^2"
);

quantity!(
    /// Volume in cubic meters.
    CubicMeters,
    "m^3"
);

impl Meters {
    /// Creates a length from millimeters.
    #[inline]
    pub const fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length from micrometers.
    #[inline]
    pub const fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Creates a length from nanometers.
    #[inline]
    pub const fn from_nanometers(nm: f64) -> Self {
        Self::new(nm * 1e-9)
    }

    /// Creates a length from centimeters.
    #[inline]
    pub const fn from_centimeters(cm: f64) -> Self {
        Self::new(cm * 1e-2)
    }

    /// Length expressed in millimeters.
    #[inline]
    pub fn as_millimeters(self) -> f64 {
        self.value() * 1e3
    }

    /// Length expressed in micrometers.
    #[inline]
    pub fn as_micrometers(self) -> f64 {
        self.value() * 1e6
    }

    /// Length expressed in centimeters.
    #[inline]
    pub fn as_centimeters(self) -> f64 {
        self.value() * 1e2
    }

    /// Multiplies two lengths into an area.
    #[inline]
    pub fn area(self, other: Meters) -> SquareMeters {
        SquareMeters::new(self.value() * other.value())
    }
}

impl SquareMeters {
    /// Area expressed in square micrometers.
    #[inline]
    pub fn as_square_micrometers(self) -> f64 {
        self.value() * 1e12
    }

    /// Multiplies an area by a length into a volume.
    #[inline]
    pub fn volume(self, depth: Meters) -> CubicMeters {
        CubicMeters::new(self.value() * depth.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_are_consistent() {
        assert!((Meters::from_millimeters(1.0).value() - 1e-3).abs() < 1e-18);
        assert!((Meters::from_micrometers(1.0).value() - 1e-6).abs() < 1e-18);
        assert!((Meters::from_nanometers(1.0).value() - 1e-9).abs() < 1e-21);
        assert!((Meters::from_centimeters(1.0).value() - 1e-2).abs() < 1e-15);
    }

    #[test]
    fn round_trips() {
        let l = Meters::from_micrometers(15.0);
        assert!((l.as_micrometers() - 15.0).abs() < 1e-9);
        let l = Meters::from_millimeters(26.5);
        assert!((l.as_millimeters() - 26.5).abs() < 1e-9);
        assert!((Meters::from_centimeters(4.68).as_centimeters() - 4.68).abs() < 1e-12);
    }

    #[test]
    fn area_and_volume_compose() {
        // VCSEL footprint from the paper: 15 µm x 30 µm.
        let a = Meters::from_micrometers(15.0).area(Meters::from_micrometers(30.0));
        assert!((a.as_square_micrometers() - 450.0).abs() < 1e-6);
        let v = a.volume(Meters::from_micrometers(4.0));
        assert!((v.value() - 450.0e-12 * 4.0e-6).abs() < 1e-24);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Meters::new(2.0);
        let b = Meters::new(0.5);
        assert_eq!((a + b).value(), 2.5);
        assert_eq!((a - b).value(), 1.5);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!((a / 2.0).value(), 1.0);
        assert_eq!(a / b, 4.0);
        assert_eq!((-a).value(), -2.0);
        let total: Meters = [a, b, b].into_iter().sum();
        assert_eq!(total.value(), 3.0);
    }

    #[test]
    fn display_has_unit_suffix() {
        assert_eq!(Meters::new(1.5).to_string(), "1.5 m");
        assert_eq!(SquareMeters::new(2.0).to_string(), "2 m^2");
    }
}
