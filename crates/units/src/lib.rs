//! Physical-quantity newtypes shared by every crate of the `vcsel-onoc` toolchain.
//!
//! Thermal/optical co-simulation mixes many scalar quantities that are all `f64`
//! underneath: temperatures, powers, currents, wavelengths, lengths, losses.
//! Mixing them up (e.g. passing a power in milliwatts where watts are expected,
//! or a wavelength where a temperature is expected) is the classic source of
//! silent modelling bugs. Following the newtype guideline (C-NEWTYPE), this
//! crate wraps each quantity in a dedicated type with explicit, named unit
//! conversions.
//!
//! # Example
//!
//! ```
//! use vcsel_units::{Celsius, TemperatureDelta, Watts, Nanometers};
//!
//! let ambient = Celsius::new(40.0);
//! let rise = TemperatureDelta::new(11.0);
//! let hot = ambient + rise;
//! assert!((hot.value() - 51.0).abs() < 1e-12);
//!
//! let p = Watts::from_milliwatts(3.6);
//! assert!((p.as_milliwatts() - 3.6).abs() < 1e-12);
//!
//! // Silicon photonics thermo-optic drift: 0.1 nm/°C.
//! let drift = Nanometers::new(0.1) * rise.value();
//! assert!((drift.value() - 1.1).abs() < 1e-12);
//! ```

// Lint levels (forbid(unsafe_code), warn(missing_docs), the clippy set)
// come from [workspace.lints] in the root Cargo.toml.

#[macro_use]
mod macros;

mod electrical;
mod error;
mod geometry;
mod optics;
mod power;
mod temperature;

pub use electrical::{Amperes, Volts};
pub use error::{NonFiniteError, OutOfRangeError};
pub use geometry::{CubicMeters, Meters, SquareMeters};
pub use optics::{Decibels, DecibelsPerMeter, Nanometers};
pub use power::{Dbm, Watts, WattsPerCubicMeter, WattsPerSquareMeterKelvin};
pub use temperature::{Celsius, KelvinPerWatt, TemperatureDelta, WattsPerMeterKelvin};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Celsius>();
        assert_send_sync::<Watts>();
        assert_send_sync::<Meters>();
        assert_send_sync::<Nanometers>();
        assert_send_sync::<Decibels>();
        assert_send_sync::<Amperes>();
    }

    #[test]
    fn cross_quantity_round_trip() {
        // dBm <-> W round trip at a value used by the paper (photodetector
        // sensitivity of -20 dBm = 0.01 mW, Table 1).
        let sensitivity = Dbm::new(-20.0);
        let w = sensitivity.to_watts();
        assert!((w.as_milliwatts() - 0.01).abs() < 1e-12);
        assert!((w.to_dbm().value() - -20.0).abs() < 1e-9);
    }
}
