//! Temperature, temperature-difference and thermal-transport quantities.

quantity!(
    /// Absolute temperature in degrees Celsius.
    ///
    /// The paper's operating window is roughly 40–70 °C; VCSEL efficiency
    /// drops from 15 % at 40 °C to 4 % at 60 °C, so a fraction of a degree
    /// matters. Differences of two [`Celsius`] values produce a
    /// [`TemperatureDelta`], which is the quantity the microring drift model
    /// consumes.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_units::{Celsius, TemperatureDelta};
    ///
    /// let vcsel = Celsius::new(58.3);
    /// let mr = Celsius::new(52.5);
    /// let gradient: TemperatureDelta = vcsel.delta_from(mr);
    /// assert!((gradient.value() - 5.8).abs() < 1e-12);
    /// ```
    Celsius,
    "°C"
);

quantity!(
    /// A temperature *difference* in kelvin (equivalently °C of difference).
    ///
    /// Kept distinct from [`Celsius`] so that "58 °C" and "a 5.8 °C gradient"
    /// cannot be confused.
    TemperatureDelta,
    "K"
);

quantity!(
    /// Thermal conductivity in W/(m·K).
    WattsPerMeterKelvin,
    "W/(m·K)"
);

quantity!(
    /// Thermal resistance in K/W.
    KelvinPerWatt,
    "K/W"
);

impl Celsius {
    /// Difference `self - other` as a [`TemperatureDelta`].
    #[inline]
    pub fn delta_from(self, other: Celsius) -> TemperatureDelta {
        TemperatureDelta::new(self.value() - other.value())
    }

    /// Converts to kelvin (absolute scale).
    #[inline]
    pub fn as_kelvin(self) -> f64 {
        self.value() + 273.15
    }

    /// Creates a Celsius temperature from a kelvin reading.
    #[inline]
    pub fn from_kelvin(k: f64) -> Self {
        Self::new(k - 273.15)
    }
}

impl core::ops::Add<TemperatureDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn add(self, rhs: TemperatureDelta) -> Celsius {
        Celsius::new(self.value() + rhs.value())
    }
}

impl core::ops::Sub<TemperatureDelta> for Celsius {
    type Output = Celsius;
    #[inline]
    fn sub(self, rhs: TemperatureDelta) -> Celsius {
        Celsius::new(self.value() - rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_round_trip() {
        let t = Celsius::new(40.0);
        assert!((t.as_kelvin() - 313.15).abs() < 1e-12);
        assert!((Celsius::from_kelvin(t.as_kelvin()).value() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn delta_arithmetic() {
        let base = Celsius::new(40.0);
        let hot = base + TemperatureDelta::new(20.0);
        assert_eq!(hot.value(), 60.0);
        assert_eq!(hot.delta_from(base).value(), 20.0);
        assert_eq!((hot - TemperatureDelta::new(5.0)).value(), 55.0);
    }

    #[test]
    fn ordering() {
        assert!(Celsius::new(40.0) < Celsius::new(60.0));
        assert!(TemperatureDelta::new(0.3) < TemperatureDelta::new(1.0));
    }

    #[test]
    fn display() {
        assert_eq!(Celsius::new(40.0).to_string(), "40 °C");
        assert_eq!(WattsPerMeterKelvin::new(148.0).to_string(), "148 W/(m·K)");
    }
}
