//! Optical quantities: wavelength, logarithmic loss and loss density.

quantity!(
    /// Wavelength (or wavelength difference) in nanometers.
    ///
    /// The toolchain operates around 1550 nm; microring 3-dB bandwidth is
    /// 1.55 nm and the thermo-optic drift is 0.1 nm/°C, so sub-picometer
    /// precision of `f64` is ample.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_units::Nanometers;
    ///
    /// let channel = Nanometers::new(1550.0);
    /// let drift = Nanometers::new(0.1) * 7.7; // 7.7 °C of heating
    /// assert!(((channel + drift).value() - 1550.77).abs() < 1e-9);
    /// ```
    Nanometers,
    "nm"
);

quantity!(
    /// Loss or gain ratio on the decibel scale.
    Decibels,
    "dB"
);

quantity!(
    /// Distributed loss in dB per meter (the paper quotes 0.5 dB/cm
    /// waveguide propagation loss).
    DecibelsPerMeter,
    "dB/m"
);

impl Decibels {
    /// Builds a decibel value from a linear power ratio.
    ///
    /// # Example
    ///
    /// ```
    /// use vcsel_units::Decibels;
    ///
    /// let db = Decibels::from_linear(0.5);
    /// assert!((db.value() + 3.0103).abs() < 1e-3);
    /// ```
    #[inline]
    pub fn from_linear(ratio: f64) -> Self {
        Self::new(10.0 * ratio.log10())
    }

    /// Converts to a linear power ratio.
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.value() / 10.0)
    }
}

impl DecibelsPerMeter {
    /// Creates a distributed loss from a dB/cm figure (the unit used in the
    /// photonics literature and in the paper's Table 1).
    #[inline]
    pub const fn from_db_per_cm(db_per_cm: f64) -> Self {
        Self::new(db_per_cm * 100.0)
    }

    /// Distributed loss expressed in dB/cm.
    #[inline]
    pub fn as_db_per_cm(self) -> f64 {
        self.value() / 100.0
    }

    /// Total loss accumulated over a path of the given length.
    #[inline]
    pub fn over(self, length: crate::Meters) -> Decibels {
        Decibels::new(self.value() * length.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Meters;

    #[test]
    fn linear_round_trip() {
        for ratio in [1.0, 0.5, 0.1, 2.0] {
            let db = Decibels::from_linear(ratio);
            assert!((db.to_linear() - ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn db_per_cm_conversion() {
        let loss = DecibelsPerMeter::from_db_per_cm(0.5);
        assert!((loss.value() - 50.0).abs() < 1e-12);
        assert!((loss.as_db_per_cm() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_waveguide_lengths() {
        // Table 1: 0.5 dB/cm. The three case-study rings are 18 / 32.4 /
        // 46.8 mm long.
        let loss = DecibelsPerMeter::from_db_per_cm(0.5);
        let l1 = loss.over(Meters::from_millimeters(18.0));
        let l3 = loss.over(Meters::from_millimeters(46.8));
        assert!((l1.value() - 0.9).abs() < 1e-12);
        assert!((l3.value() - 2.34).abs() < 1e-12);
    }

    #[test]
    fn wavelength_arithmetic() {
        let base = Nanometers::new(1550.0);
        let shifted = base + Nanometers::new(0.77);
        assert!(((shifted - base).value() - 0.77).abs() < 1e-12);
    }
}
